//! # GraphM — an efficient storage system for high throughput of
//! # concurrent graph processing
//!
//! A full Rust reproduction of *GraphM* (Zhao et al., SC '19): a storage
//! runtime that plugs into existing graph engines and lets concurrent
//! iterative jobs share one copy of the graph structure in memory and in
//! the LLC, traversing it in a common, chunk-synchronized order.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the GraphM storage system itself (chunking, sharing,
//!   synchronization, snapshots, scheduling);
//! * [`graph`] — graph formats, generators, and the dataset registry;
//! * [`store`] — the disk-resident, mmap-backed partition store
//!   (`Convert()` preprocessing + `DiskGridSource` / `DiskShardSource`);
//! * [`cachesim`] — the simulated memory hierarchy behind the figures;
//! * [`gridgraph`] / [`graphchi`] / [`distributed`] — the host engines;
//! * [`algos`] — PageRank, WCC, BFS, SSSP and variants as GraphM jobs;
//! * [`workloads`] — job mixes, arrival processes, traces, the workbench;
//! * [`server`] — the multi-tenant daemon serving a disk store over
//!   unix-socket/TCP, plus its client library and wire protocol.
//!
//! ## Quickstart (in memory)
//!
//! ```
//! use graphm::prelude::*;
//!
//! // A small synthetic graph, grid-partitioned like GridGraph.
//! let graph = graphm::graph::generators::rmat(
//!     1000, 8000, graphm::graph::generators::RmatParams::GRAPH500, 42);
//! let wb = Workbench::from_graph(graph, 4, MemoryProfile::TEST);
//!
//! // Four concurrent jobs from the paper's mix...
//! let specs = wb.paper_mix(4, 7);
//! // ...under plain concurrency and under GraphM sharing.
//! let (_, concurrent, shared) = wb.run_all_schemes(&specs);
//! assert!(shared.metrics.get(keys::DISK_READ_BYTES)
//!     <= concurrent.metrics.get(keys::DISK_READ_BYTES));
//! ```
//!
//! ## Quickstart (disk-resident store)
//!
//! GraphM is a *storage system*: the graph lives in secondary storage and
//! is converted once into the engine's partition format. The disk path
//! makes that real — `Convert` writes per-partition segment files plus a
//! manifest, and the workbench streams them through an `mmap`-backed
//! source with identical results to the in-memory path:
//!
//! ```
//! use graphm::prelude::*;
//!
//! let graph = graphm::graph::generators::rmat(
//!     1000, 8000, graphm::graph::generators::RmatParams::GRAPH500, 42);
//! let dir = std::env::temp_dir().join(format!("graphm-doc-{}", std::process::id()));
//!
//! // Convert(): grid-partition and persist (segments + manifest.bin).
//! Convert::grid(4).write(&graph, &dir).unwrap();
//!
//! // The structure now stays on disk; jobs stream mmap'd partitions.
//! let wb = Workbench::from_disk(&dir, MemoryProfile::TEST).unwrap();
//! let specs = wb.paper_mix(4, 7);
//! let (_, concurrent, shared) = wb.run_all_schemes(&specs);
//! assert!(shared.metrics.get(keys::DISK_READ_BYTES)
//!     <= concurrent.metrics.get(keys::DISK_READ_BYTES));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub use graphm_algos as algos;
pub use graphm_cachesim as cachesim;
pub use graphm_core as core;
pub use graphm_distributed as distributed;
pub use graphm_graph as graph;
pub use graphm_graphchi as graphchi;
pub use graphm_gridgraph as gridgraph;
pub use graphm_server as server;
pub use graphm_store as store;
pub use graphm_workloads as workloads;

/// The names most programs need.
pub mod prelude {
    pub use graphm_cachesim::{keys, Metrics};
    pub use graphm_core::{
        GraphJob, GraphM, GraphMConfig, PartitionSource, RunReport, RunnerConfig, SchedulingPolicy,
        Scheme, SharingRuntime, SharingService, Submission,
    };
    pub use graphm_graph::{DatasetId, EdgeList, MemoryProfile};
    pub use graphm_gridgraph::GridGraphEngine;
    pub use graphm_server::{Client, Server, ServerConfig};
    pub use graphm_store::{Convert, DiskGridSource, DiskShardSource};
    pub use graphm_workloads::{AlgoKind, JobSpec, MixConfig, Workbench};
}
