//! The out-of-core workload the paper targets: convert a graph to the
//! disk-resident store once, then serve concurrent job mixes from the
//! mmap-backed source without ever materializing the edge list.
//!
//! Run with `cargo run --release --example disk_store`.

use graphm::prelude::*;

fn main() {
    // A social-network-shaped graph, preprocessed to disk.
    let graph = graphm::graph::generators::rmat(
        20_000,
        160_000,
        graphm::graph::generators::RmatParams::SOCIAL,
        7,
    );
    let dir = std::env::temp_dir().join(format!("graphm-example-store-{}", std::process::id()));
    let manifest = Convert::grid(8).write(&graph, &dir).expect("convert");
    println!(
        "converted: {} partitions, {:.1} MiB of segments under {}",
        manifest.partitions.len(),
        manifest.graph_bytes() as f64 / (1 << 20) as f64,
        dir.display()
    );
    drop(graph); // the structure now lives on disk only

    // Reopen from disk and serve the paper's concurrent mix.
    let wb = Workbench::from_disk(&dir, MemoryProfile::TEST).expect("open store");
    let specs = wb.paper_mix(8, 42);
    let (seq, conc, shared) = wb.run_all_schemes(&specs);
    println!(
        "makespans: S {:.3}s  C {:.3}s  M {:.3}s (virtual)",
        seq.makespan_ns / 1e9,
        conc.makespan_ns / 1e9,
        shared.makespan_ns / 1e9
    );
    println!(
        "disk reads: C {:.1} MiB vs M {:.1} MiB — one shared stream",
        conc.metrics.get(keys::DISK_READ_BYTES) / (1 << 20) as f64,
        shared.metrics.get(keys::DISK_READ_BYTES) / (1 << 20) as f64
    );
    std::fs::remove_dir_all(&dir).ok();
}
