//! Evolving graphs, in memory and on disk.
//!
//! Part 1 — the paper's §3.3.2 snapshot story (Figure 7): a long-running
//! job keeps computing on the graph as it was when the job was submitted,
//! while updates arrive for future jobs and another job tries private
//! what-if mutations — all against one shared in-memory store.
//!
//! Part 2 — the same evolution served **disk-resident**: `Convert()` the
//! graph once, mutate it through a `DeltaWriter` (append-only delta
//! segments + an atomically published generation manifest), re-open at
//! the new generation, and get results bit-identical to an in-memory run
//! over the mutated edge list; then compact the chain away and check
//! nothing changed.
//!
//! ```sh
//! cargo run --release --example evolving_graph
//! ```

use graphm::core::{Scheme, SnapshotStore};
use graphm::graph::delta::apply_delta_to_edge_list;
use graphm::graph::{generators, DeltaRecord, Edge, MemoryProfile};
use graphm::store::{CompactionPolicy, Convert, DeltaWriter, DiskGridSource};
use graphm::workloads::{immediate_arrivals, Workbench};

fn main() {
    // ------------------------------------------------------------------
    // Part 1: in-memory copy-on-write snapshots (§3.3.2, Figure 7).
    // ------------------------------------------------------------------

    // A tiny road network: 0-1-2-3 chain with a shortcut under study.
    let base = vec![
        Edge::weighted(0, 1, 1.0),
        Edge::weighted(1, 2, 1.0),
        Edge::weighted(2, 3, 1.0),
        Edge::weighted(3, 0, 5.0),
    ];
    let mut store = SnapshotStore::from_partitions(&[base], 2);

    // Job 1 (long-running route planner) is submitted first.
    store.register_job(1);
    println!("job 1 submitted; sees {} edges in chunk 0", store.chunk_view(1, 0, 0).len());

    // The city closes a road: a shared *update*, visible only to jobs
    // submitted afterwards.
    store.update(0, 0, |edges| edges.retain(|e| !(e.src == 0 && e.dst == 1)));
    store.register_job(2);
    println!(
        "after road closure: job 1 still sees {} edges, job 2 sees {}",
        store.chunk_view(1, 0, 0).len(),
        store.chunk_view(2, 0, 0).len()
    );
    assert_eq!(store.chunk_view(1, 0, 0).len(), 2, "job 1 reads its submission snapshot");
    assert_eq!(store.chunk_view(2, 0, 0).len(), 1, "job 2 reads the updated graph");

    // Job 2 runs a what-if *mutation*: a proposed new expressway, private
    // to this job only.
    store.mutate(2, 0, 1, |edges| edges.push(Edge::weighted(0, 3, 0.5)));
    assert_eq!(store.chunk_view(2, 0, 1).len(), 3);
    assert_eq!(store.chunk_view(1, 0, 1).len(), 2);

    // When the old job finishes, its pre-update copies are released.
    store.finish_job(1);
    store.finish_job(2);
    assert_eq!(store.retained_mutations(), 0);
    println!("snapshot isolation held for every in-memory reader ✓\n");

    // ------------------------------------------------------------------
    // Part 2: the same story disk-resident, via the delta store.
    // ------------------------------------------------------------------

    let graph = generators::rmat(2000, 16000, generators::RmatParams::GRAPH500, 7);
    let dir = std::env::temp_dir().join(format!("graphm-evolving-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Convert once: segments + manifest, generation 0.
    Convert::grid(4).write(&graph, &dir).unwrap();
    println!("converted {} edges into {}", graph.edges.len(), dir.display());

    // The platform updates the graph: a DeltaWriter batches mutations and
    // publishes them as generation 1 (append-only files + atomic CURRENT
    // flip — live readers are never disturbed, they rotate between
    // sweeps).
    let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
    let mut records = Vec::new();
    for e in graph.edges.iter().step_by(401).take(12) {
        writer.delete(e.src, e.dst).unwrap();
        records.push(DeltaRecord::delete(e.src, e.dst));
    }
    for i in 0..30u32 {
        let (src, dst) = ((i * 67) % 2000, (i * 131 + 3) % 2000);
        writer.insert(src, dst, 1.0).unwrap();
        records.push(DeltaRecord::insert(src, dst, 1.0));
    }
    let generation = writer.publish().unwrap();
    println!(
        "published {} mutations as generation {generation} ({} delta bytes on disk)",
        records.len(),
        writer.delta_bytes()
    );

    // Reference: the same mutations applied to the edge list, in memory.
    let mut mutated = graph.clone();
    apply_delta_to_edge_list(&mut mutated, &records);

    // A disk-resident run over the rotated store is bit-identical to the
    // in-memory run over the mutated graph — merged reads, byte
    // accounting, out-degrees and all.
    let wb_disk = Workbench::from_disk(&dir, MemoryProfile::DEFAULT).unwrap();
    let wb_mem = Workbench::from_graph(mutated, 4, MemoryProfile::DEFAULT);
    let specs = wb_mem.paper_mix(4, 3);
    let arrivals = immediate_arrivals(specs.len());
    let disk = wb_disk.run(Scheme::Shared, &specs, &arrivals);
    let mem = wb_mem.run(Scheme::Shared, &specs, &arrivals);
    for (a, b) in mem.jobs.iter().zip(&disk.jobs) {
        assert_eq!(a.iterations, b.iterations);
        assert!(
            a.values.iter().zip(&b.values).all(|(x, y)| x.to_bits() == y.to_bits()),
            "{}: disk-resident merged view must match the in-memory mutated graph",
            a.name
        );
    }
    println!("disk-resident generation {generation} matches the in-memory mutated run ✓");

    // Compaction folds the chain into fresh base segments: zero delta
    // bytes, identical results, old files retirable.
    let generation = writer.compact().unwrap();
    let removed = writer.retire_older_generations().unwrap();
    let compacted = DiskGridSource::open(&dir).unwrap();
    assert_eq!(compacted.generation(), generation);
    assert_eq!(compacted.delta_stats().delta_bytes, 0);
    println!(
        "compacted into generation {generation} ({} compactions, {removed} stale files retired) ✓",
        compacted.delta_stats().compactions
    );
    println!("\nevolving graph served disk-resident, end to end ✓");
    std::fs::remove_dir_all(&dir).ok();
}
