//! Evolving graphs with consistent snapshots (§3.3.2, Figure 7).
//!
//! A long-running job keeps computing on the graph as it was when the job
//! was submitted, while updates arrive for future jobs and another job
//! tries private what-if mutations — all against one shared store.
//!
//! ```sh
//! cargo run --release --example evolving_graph
//! ```

use graphm::core::SnapshotStore;
use graphm::graph::Edge;

fn main() {
    // A tiny road network: 0-1-2-3 chain with a shortcut under study.
    let base = vec![
        Edge::weighted(0, 1, 1.0),
        Edge::weighted(1, 2, 1.0),
        Edge::weighted(2, 3, 1.0),
        Edge::weighted(3, 0, 5.0),
    ];
    let mut store = SnapshotStore::from_partitions(&[base], 2);

    // Job 1 (long-running route planner) is submitted first.
    store.register_job(1);
    println!("job 1 submitted; sees {} edges in chunk 0", store.chunk_view(1, 0, 0).len());

    // The city closes a road: a shared *update*, visible only to jobs
    // submitted afterwards.
    store.update(0, 0, |edges| edges.retain(|e| !(e.src == 0 && e.dst == 1)));
    store.register_job(2);
    println!(
        "after road closure: job 1 still sees {} edges, job 2 sees {}",
        store.chunk_view(1, 0, 0).len(),
        store.chunk_view(2, 0, 0).len()
    );
    assert_eq!(store.chunk_view(1, 0, 0).len(), 2, "job 1 reads its submission snapshot");
    assert_eq!(store.chunk_view(2, 0, 0).len(), 1, "job 2 reads the updated graph");

    // Job 2 runs a what-if *mutation*: a proposed new expressway, private
    // to this job only.
    store.mutate(2, 0, 1, |edges| edges.push(Edge::weighted(0, 3, 0.5)));
    println!(
        "what-if: job 2 sees {} edges in chunk 1, job 1 sees {}",
        store.chunk_view(2, 0, 1).len(),
        store.chunk_view(1, 0, 1).len()
    );
    assert_eq!(store.chunk_view(2, 0, 1).len(), 3);
    assert_eq!(store.chunk_view(1, 0, 1).len(), 2);

    // When the old job finishes, its pre-update copies are released.
    let before = store.retained_updates();
    store.finish_job(1);
    println!("job 1 finished; retained update records: {} -> {}", before, store.retained_updates());
    store.finish_job(2);
    println!("job 2 finished; retained mutations: {}", store.retained_mutations());
    assert_eq!(store.retained_mutations(), 0);
    println!("\nsnapshot isolation held for every reader ✓");
}
