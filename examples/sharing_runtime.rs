//! The threaded Sharing() runtime (Algorithm 2) with real OS threads:
//! three jobs co-traverse one shared graph, loads happen once per sweep,
//! and the chunk pacer keeps their traversals aligned.
//!
//! ```sh
//! cargo run --release --example sharing_runtime
//! ```

use graphm::algos::{Bfs, PageRank, Wcc};
use graphm::core::GraphJob;
use graphm::gridgraph::{wall, GridGraphEngine};

fn main() {
    let graph = graphm::graph::generators::rmat(
        20_000,
        240_000,
        graphm::graph::generators::RmatParams::GRAPH500,
        5,
    );
    let (engine, prep) = GridGraphEngine::convert(&graph, 4);
    println!(
        "grid-converted {} edges into {} blocks in {:.1} ms",
        graph.num_edges(),
        engine.grid().num_blocks(),
        prep.as_secs_f64() * 1e3
    );

    let jobs: Vec<Box<dyn GraphJob>> = vec![
        Box::new(PageRank::new(graph.num_vertices, engine.out_degrees(), 0.85, 5)),
        Box::new(Wcc::new(graph.num_vertices)),
        Box::new(Bfs::new(graph.num_vertices, 0)),
    ];
    let report = wall::run_shared(jobs, &engine, 100);
    println!(
        "\n3 jobs finished in {:.1} ms wall-clock with {} shared partition loads",
        report.total_ms, report.loads
    );
    for (i, iters) in report.iterations.iter().enumerate() {
        println!("  job {i}: {iters} iterations");
    }

    // Versus: each job streaming privately.
    let jobs: Vec<Box<dyn GraphJob>> = vec![
        Box::new(PageRank::new(graph.num_vertices, engine.out_degrees(), 0.85, 5)),
        Box::new(Wcc::new(graph.num_vertices)),
        Box::new(Bfs::new(graph.num_vertices, 0)),
    ];
    let solo = wall::run_concurrent(jobs, &engine, 100);
    println!("private streaming: {:.1} ms with {} per-job block loads", solo.total_ms, solo.loads);
    assert!(report.loads < solo.loads, "sharing must amortize loads");
}
