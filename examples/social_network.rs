//! Social-network analytics service: the paper's motivating scenario.
//!
//! A platform continuously receives analytics jobs over the same social
//! graph (friend recommendations via PageRank variants, community labels,
//! reachability probes). Jobs arrive as a Poisson process; GraphM serves
//! them from one shared copy of the graph.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use graphm::prelude::*;
use graphm::workloads::{poisson_arrivals, HOUR_NS};

fn main() {
    let wb = Workbench::dataset(DatasetId::LiveJ, 16, 4);
    println!(
        "social graph (livej-sim @ 1/16): {} vertices, {} edges",
        wb.num_vertices(),
        wb.graph().num_edges()
    );

    // A stream of 12 jobs arriving at λ = 16 per (scaled) hour — the
    // paper's default submission process.
    let specs = wb.paper_mix(12, 99);
    let arrivals = poisson_arrivals(12, 16.0, HOUR_NS / 16.0, 3);

    let concurrent = wb.run(Scheme::Concurrent, &specs, &arrivals);
    let shared = wb.run(Scheme::Shared, &specs, &arrivals);

    println!("\n{:>6} {:>10} {:>16} {:>16}", "job", "algo", "C latency (ms)", "M latency (ms)");
    for (jc, jm) in concurrent.jobs.iter().zip(&shared.jobs) {
        println!(
            "{:>6} {:>10} {:>16.3} {:>16.3}",
            jc.id,
            jc.name,
            jc.turnaround_ns() / 1e6,
            jm.turnaround_ns() / 1e6
        );
    }
    println!(
        "\nmean latency: C {:.3} ms vs M {:.3} ms ({:.2}x)",
        concurrent.avg_job_turnaround_ns() / 1e6,
        shared.avg_job_turnaround_ns() / 1e6,
        concurrent.avg_job_turnaround_ns() / shared.avg_job_turnaround_ns()
    );
    println!(
        "LLC miss rate: C {:.1}% vs M {:.1}%",
        concurrent.metrics.get(keys::LLC_MISSES)
            / concurrent.metrics.get(keys::LLC_ACCESSES).max(1.0)
            * 100.0,
        shared.metrics.get(keys::LLC_MISSES) / shared.metrics.get(keys::LLC_ACCESSES).max(1.0)
            * 100.0,
    );
}
