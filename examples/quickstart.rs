//! Quickstart: run four concurrent analytics jobs over one shared graph
//! and compare the three execution schemes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphm::prelude::*;

fn main() {
    // 1. A graph. Real deployments read an edge list from disk
    //    (graphm::graph::storage); here we generate a power-law graph the
    //    size of a small social network.
    let graph = graphm::graph::generators::rmat(
        10_000,
        120_000,
        graphm::graph::generators::RmatParams::SOCIAL,
        42,
    );
    println!(
        "graph: {} vertices, {} edges ({:.1} MB)",
        graph.num_vertices,
        graph.num_edges(),
        graph.size_bytes() as f64 / (1 << 20) as f64
    );

    // 2. A workbench: converts to GridGraph's grid format and pins the
    //    simulated memory hierarchy the schemes are measured against.
    let wb = Workbench::from_graph(graph, 4, MemoryProfile::DEFAULT);

    // 3. Four concurrent jobs, parameters randomized as in the paper:
    //    WCC, PageRank, SSSP, BFS.
    let specs = wb.paper_mix(4, 7);
    for s in &specs {
        println!("submitting {:?}", s);
    }

    // 4. Run sequentially (S), concurrently with private access (C), and
    //    concurrently over GraphM's shared storage (M).
    let (s, c, m) = wb.run_all_schemes(&specs);
    println!("\n{:>24} {:>12} {:>12} {:>12}", "", "S", "C", "M");
    println!(
        "{:>24} {:>12.3} {:>12.3} {:>12.3}",
        "makespan (virtual s)",
        s.makespan_ns / 1e9,
        c.makespan_ns / 1e9,
        m.makespan_ns / 1e9
    );
    println!(
        "{:>24} {:>12.0} {:>12.0} {:>12.0}",
        "LLC misses",
        s.metrics.get(keys::LLC_MISSES),
        c.metrics.get(keys::LLC_MISSES),
        m.metrics.get(keys::LLC_MISSES)
    );
    println!(
        "{:>24} {:>12.1} {:>12.1} {:>12.1}",
        "disk read (KB)",
        s.metrics.get(keys::DISK_READ_BYTES) / 1024.0,
        c.metrics.get(keys::DISK_READ_BYTES) / 1024.0,
        m.metrics.get(keys::DISK_READ_BYTES) / 1024.0
    );

    // 5. Results are identical whichever scheme ran them.
    for (js, jm) in s.jobs.iter().zip(&m.jobs) {
        let close = js
            .values
            .iter()
            .zip(&jm.values)
            .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-9);
        assert!(close, "{} results must not depend on the scheme", js.name);
    }
    println!("\nall jobs converged to identical results under every scheme ✓");
    println!(
        "GraphM speedup: {:.2}x vs sequential, {:.2}x vs concurrent",
        s.makespan_ns / m.makespan_ns,
        c.makespan_ns / m.makespan_ns
    );
}
