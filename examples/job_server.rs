//! A multi-tenant graph-job daemon, end to end in one process:
//! convert a graph to a disk store, start `graphm-server` on a unix
//! socket, submit a concurrent mix from several client connections, and
//! show the storage sharing across those socket-submitted jobs.
//!
//! Run with: `cargo run --release --example job_server`

use graphm::prelude::*;
use graphm::server::ServerConfig;
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn main() {
    // 1. A graph, converted once into a disk-resident grid store (in real
    //    deployments: `graphm-convert --input graph.bin --grid 8 --out DIR`).
    let graph = graphm::graph::generators::rmat(
        2_000,
        16_000,
        graphm::graph::generators::RmatParams::GRAPH500,
        42,
    );
    let dir = std::env::temp_dir().join(format!("graphm-example-server-{}", std::process::id()));
    Convert::grid(4).write(&graph, &dir).expect("convert");
    println!("store: {}", dir.display());

    // 2. The daemon: one mmap'd store, one SharingService, many tenants.
    //    The batch window lets a concurrent burst share from sweep one.
    let mut config = ServerConfig::new(&dir);
    config.socket_path = Some(dir.join("graphm.sock"));
    config.profile = MemoryProfile::TEST;
    config.batch_window = Duration::from_millis(300);
    let server = Server::start(config).expect("server starts");
    let socket = server.socket_path().unwrap().to_path_buf();
    println!("daemon: listening on {}", socket.display());

    // 3. Four independent "tenants", each on its own connection,
    //    submitting different algorithms at the same time.
    let specs = [
        JobSpec { kind: AlgoKind::PageRank, damping: 0.85, root: 0, max_iters: 10 },
        JobSpec { kind: AlgoKind::Wcc, damping: 0.85, root: 0, max_iters: 10 },
        JobSpec { kind: AlgoKind::Bfs, damping: 0.85, root: 17, max_iters: 50 },
        JobSpec { kind: AlgoKind::Sssp, damping: 0.85, root: 23, max_iters: 50 },
    ];
    let barrier = Arc::new(Barrier::new(specs.len()));
    let handles: Vec<_> = specs
        .into_iter()
        .map(|spec| {
            let socket = socket.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect_unix(&socket).expect("connect");
                barrier.wait();
                let id = client.submit(&spec).expect("submit");
                let report = client.wait(id).expect("wait");
                (id, report)
            })
        })
        .collect();

    println!("\n  id  algorithm  iterations  edges_processed");
    let mut total_iterations = 0u64;
    for h in handles {
        let (id, r) = h.join().expect("tenant");
        println!("  {id:>2}  {:<9}  {:>10}  {:>15}", r.name, r.iterations, r.edges_processed);
        total_iterations += r.iterations as u64;
    }

    // 4. The sharing evidence: loads counted once per (sweep, partition),
    //    not once per (job, iteration) — the gap is the paper's whole
    //    point, now across real client connections.
    let stats = server.stats();
    println!(
        "\npartition loads: {} shared (unshared per-job loading would be up to {} = \
         {total_iterations} job-iterations x {} partitions)",
        stats.partition_loads,
        total_iterations * stats.num_partitions,
        stats.num_partitions
    );
    println!("rounds: {}  virtual time: {:.2} ms", stats.rounds, stats.virtual_ns / 1e6);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
