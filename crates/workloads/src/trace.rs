//! The social-network job trace (Figures 2, 4, 15).
//!
//! The paper traces one week of concurrent graph jobs on a real Chinese
//! social network: peak > 30 concurrent jobs, average ≈ 16, with strong
//! diurnal swings. The trace itself is proprietary, so this module
//! generates a statistically similar one: a diurnal base curve plus noise,
//! and per-hour job mixes whose active sets yield the Figure-4 similarity
//! statistics (> 82% of the graph shared by multiple jobs; partitions
//! re-accessed ≈ 7× per hour).

use crate::jobmix::{generate_mix, JobSpec, MixConfig};
use graphm_graph::VertexId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hours in the traced week.
pub const TRACE_HOURS: usize = 168;

/// The concurrency curve: jobs running during each hour of the week.
pub fn weekly_concurrency(seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..TRACE_HOURS)
        .map(|h| {
            let hour_of_day = (h % 24) as f64;
            // Diurnal wave peaking mid-day, trough at night.
            let wave = (std::f64::consts::TAU * (hour_of_day - 14.0) / 24.0).cos();
            let weekend = if (h / 24) % 7 >= 5 { -2.0 } else { 0.0 };
            let noise: f64 = rng.random::<f64>() * 6.0 - 3.0;
            let n = 16.0 + 13.0 * wave + weekend + noise;
            n.round().clamp(1.0, 40.0) as usize
        })
        .collect()
}

/// A trace: per-hour job batches over the common graph.
pub struct Trace {
    /// Jobs active in each hour.
    pub hourly_jobs: Vec<Vec<JobSpec>>,
}

impl Trace {
    /// Generates the weekly trace for a graph with `num_vertices`.
    pub fn generate(num_vertices: VertexId, seed: u64) -> Trace {
        let curve = weekly_concurrency(seed);
        let hourly_jobs = curve
            .iter()
            .enumerate()
            .map(|(h, &n)| generate_mix(num_vertices, &MixConfig::paper(n, seed ^ (h as u64) << 8)))
            .collect();
        Trace { hourly_jobs }
    }

    /// Mean concurrency over the week.
    pub fn mean_concurrency(&self) -> f64 {
        self.hourly_jobs.iter().map(Vec::len).sum::<usize>() as f64
            / self.hourly_jobs.len().max(1) as f64
    }

    /// Peak concurrency.
    pub fn peak_concurrency(&self) -> usize {
        self.hourly_jobs.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Figure-4 statistics for one hour of concurrent jobs: given each job's
/// partition access counts over the hour, returns
/// `(shared_fraction(>k jobs) for k in ks, mean accesses per touched
/// partition)`.
pub fn similarity_stats(
    per_job_partitions: &[Vec<usize>],
    num_partitions: usize,
    ks: &[usize],
) -> (Vec<f64>, f64) {
    let mut touch_counts = vec![0usize; num_partitions];
    let mut access_counts = vec![0usize; num_partitions];
    for parts in per_job_partitions {
        let mut seen = vec![false; num_partitions];
        for &p in parts {
            access_counts[p] += 1;
            if !seen[p] {
                seen[p] = true;
                touch_counts[p] += 1;
            }
        }
    }
    let touched: Vec<usize> = touch_counts.iter().copied().filter(|&c| c > 0).collect();
    let fractions = ks
        .iter()
        .map(|&k| {
            if touched.is_empty() {
                0.0
            } else {
                touched.iter().filter(|&&c| c > k).count() as f64 / touched.len() as f64
            }
        })
        .collect();
    let total_accesses: usize = access_counts.iter().sum();
    let mean_accesses = if touched.is_empty() {
        0.0
    } else {
        total_accesses as f64 / access_counts.iter().filter(|&&c| c > 0).count() as f64
    };
    (fractions, mean_accesses)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_matches_paper_shape() {
        let curve = weekly_concurrency(1);
        assert_eq!(curve.len(), TRACE_HOURS);
        let peak = *curve.iter().max().unwrap();
        let mean = curve.iter().sum::<usize>() as f64 / curve.len() as f64;
        assert!(peak > 30, "paper: >30 jobs at peak, got {peak}");
        assert!((12.0..20.0).contains(&mean), "paper: mean ~16, got {mean}");
        assert!(*curve.iter().min().unwrap() >= 1);
    }

    #[test]
    fn trace_generates_hourly_mixes() {
        let t = Trace::generate(1000, 2);
        assert_eq!(t.hourly_jobs.len(), TRACE_HOURS);
        assert!(t.peak_concurrency() > 30);
        assert!((12.0..20.0).contains(&t.mean_concurrency()));
    }

    #[test]
    fn similarity_stats_basic() {
        // 3 jobs over 4 partitions; partition 0 touched by all, 1 by two,
        // 2 by one, 3 by none.
        let per_job = vec![vec![0, 1, 2, 0], vec![0, 1], vec![0]];
        let (fracs, mean) = similarity_stats(&per_job, 4, &[1, 2]);
        // Touched partitions: 0 (3 jobs), 1 (2 jobs), 2 (1 job).
        assert!((fracs[0] - 2.0 / 3.0).abs() < 1e-12, ">1 job: {}", fracs[0]);
        assert!((fracs[1] - 1.0 / 3.0).abs() < 1e-12);
        // Accesses: p0 = 4 (two from job 0), p1 = 2, p2 = 1 → mean 7/3.
        assert!((mean - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_stats_empty() {
        let (fracs, mean) = similarity_stats(&[], 4, &[1]);
        assert_eq!(fracs, vec![0.0]);
        assert_eq!(mean, 0.0);
    }
}
