//! Job-arrival processes.
//!
//! §5.1: "For the concurrent manner, the time interval between successive
//! two submissions follows the poisson distribution with λ = 16 by
//! default" — i.e. arrivals form a Poisson process with rate λ per time
//! unit; inter-arrival gaps are exponential with mean `1/λ`. Figure 16
//! sweeps λ from 2 to 10 to show GraphM's advantage grows with submission
//! frequency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One virtual "hour" in virtual nanoseconds. The absolute value only
/// fixes the unit in which λ is expressed; experiments scale it so that
/// λ=16 produces heavy overlap on the scaled datasets, like the paper's
/// testbed.
pub const HOUR_NS: f64 = 50.0e9;

/// Draws an exponential variate with rate `lambda` (inverse-CDF).
fn exp_variate(rng: &mut StdRng, lambda: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    -u.ln() / lambda
}

/// Generates `count` Poisson arrival timestamps (virtual ns) with rate
/// `lambda` jobs per `unit_ns`.
pub fn poisson_arrivals(count: usize, lambda: f64, unit_ns: f64, seed: u64) -> Vec<f64> {
    assert!(lambda > 0.0, "rate must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0;
    (0..count)
        .map(|_| {
            t += exp_variate(&mut rng, lambda) * unit_ns;
            t
        })
        .collect()
}

/// All-at-once submissions (time zero), the default of most figures.
pub fn immediate_arrivals(count: usize) -> Vec<f64> {
    vec![0.0; count]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_sorted_and_positive() {
        let a = poisson_arrivals(50, 16.0, HOUR_NS, 3);
        assert_eq!(a.len(), 50);
        assert!(a[0] > 0.0);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn mean_interarrival_matches_rate() {
        let lambda = 8.0;
        let a = poisson_arrivals(4000, lambda, 1.0, 9);
        let mean_gap = a.last().unwrap() / 4000.0;
        let expect = 1.0 / lambda;
        assert!(
            (mean_gap - expect).abs() < expect * 0.1,
            "mean gap {mean_gap} vs expected {expect}"
        );
    }

    #[test]
    fn higher_lambda_packs_tighter() {
        let sparse = poisson_arrivals(100, 2.0, 1.0, 5);
        let dense = poisson_arrivals(100, 10.0, 1.0, 5);
        assert!(dense.last().unwrap() < sparse.last().unwrap());
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(poisson_arrivals(10, 4.0, 1.0, 7), poisson_arrivals(10, 4.0, 1.0, 7));
        assert_ne!(poisson_arrivals(10, 4.0, 1.0, 7), poisson_arrivals(10, 4.0, 1.0, 8));
    }

    #[test]
    fn immediate_is_zero() {
        assert!(immediate_arrivals(3).iter().all(|&t| t == 0.0));
    }
}
