//! The experiment workbench: dataset → engine → job mix → scheme run.
//!
//! Every figure binary builds a [`Workbench`] once per dataset and then
//! runs the same submissions under each scheme, so S/C/M comparisons see
//! identical graphs, identical job parameters, and identical arrival
//! times.

use crate::arrivals;
use crate::jobmix::{generate_mix, JobSpec, MixConfig};
use graphm_core::{
    run_scheme, GraphJob, PartitionSource, RunReport, RunnerConfig, SchedulingPolicy, Scheme,
    Submission, WallClockConfig, WallClockExecutor, WallRunReport,
};
use graphm_graph::{DatasetId, EdgeList, MemoryProfile};
use graphm_gridgraph::{run_gridgraph, DiskGridSource, GridGraphEngine, GridSource};
use graphm_store::{PrefetchTarget, Prefetcher};
use std::path::Path;
use std::sync::Arc;

/// Scales a memory profile down by `divisor`, used when datasets are
/// generated at reduced scale so the in-memory/out-of-core regime split is
/// preserved (see DESIGN.md §3).
pub fn scaled_profile(base: MemoryProfile, divisor: usize) -> MemoryProfile {
    if divisor <= 1 {
        return base;
    }
    MemoryProfile {
        memory_bytes: (base.memory_bytes / divisor).max(64 << 10),
        llc_bytes: (base.llc_bytes / divisor).max(8 << 10),
        llc_ways: base.llc_ways,
        line_bytes: base.line_bytes,
        cores: base.cores,
        llc_reserved: (base.llc_reserved / divisor).max(256),
    }
}

/// Where a workbench's partitions come from.
pub enum WorkbenchBackend {
    /// The in-memory GridGraph host engine (the original path).
    InMemory(GridGraphEngine),
    /// A disk-resident grid store; partitions stream from mmap'd segments.
    Disk(Arc<DiskGridSource>),
}

/// A prepared experiment environment over one graph.
pub struct Workbench {
    /// The raw graph; `None` for disk-backed workbenches, where the
    /// structure stays on disk (that being the point). Access through
    /// [`Workbench::graph`] / [`Workbench::num_vertices`].
    graph: Option<EdgeList>,
    /// Total vertex count (valid in both modes).
    num_vertices: graphm_graph::VertexId,
    /// The partition backend experiments stream from.
    pub backend: WorkbenchBackend,
    /// Out-degrees (for PageRank-family jobs).
    pub out_degrees: Arc<Vec<u32>>,
    /// The memory profile experiments run under.
    pub profile: MemoryProfile,
    /// Which dataset this is, when registry-built.
    pub dataset: Option<DatasetId>,
    /// Scale divisor the dataset was generated at.
    pub scale: usize,
    /// Total structure bytes (`S_G`); for disk workbenches this comes from
    /// the store manifest rather than the (unpopulated) edge list.
    pub structure_bytes: usize,
}

impl Workbench {
    /// Builds a workbench for a registered dataset at `1/scale` size with
    /// a `p × p` grid.
    pub fn dataset(id: DatasetId, scale: usize, p: usize) -> Workbench {
        let graph = id.generate_scaled(scale.max(1));
        let profile = scaled_profile(MemoryProfile::DEFAULT, scale.max(1));
        Workbench::build(graph, p, profile, Some(id), scale.max(1))
    }

    /// Builds a workbench over an arbitrary graph.
    pub fn from_graph(graph: EdgeList, p: usize, profile: MemoryProfile) -> Workbench {
        Workbench::build(graph, p, profile, None, 1)
    }

    /// Builds a workbench over a disk-resident grid store written by
    /// `graphm_store::Convert::grid` (or `GridGraphEngine::convert_to_disk`).
    /// The graph structure stays on disk behind the mmap; only vertex
    /// metadata (out-degrees for PageRank-family jobs) is materialized.
    ///
    /// Opens through [`DiskGridSource::open_shared`], so any number of
    /// workbenches (or a co-resident `graphm-server` daemon) over the
    /// same store directory share one mapping instead of one each.
    pub fn from_disk(dir: &Path, profile: MemoryProfile) -> graphm_graph::Result<Workbench> {
        let source = DiskGridSource::open_shared(dir)?;
        let out_degrees = Arc::new(source.out_degrees());
        let num_vertices = graphm_core::PartitionSource::num_vertices(source.as_ref());
        let structure_bytes = graphm_core::PartitionSource::graph_bytes(source.as_ref());
        Ok(Workbench {
            graph: None,
            num_vertices,
            backend: WorkbenchBackend::Disk(source),
            out_degrees,
            profile,
            dataset: None,
            scale: 1,
            structure_bytes,
        })
    }

    fn build(
        graph: EdgeList,
        p: usize,
        profile: MemoryProfile,
        dataset: Option<DatasetId>,
        scale: usize,
    ) -> Workbench {
        let (engine, _) = GridGraphEngine::convert(&graph, p);
        let out_degrees = engine.out_degrees();
        let structure_bytes = graph.size_bytes();
        let num_vertices = graph.num_vertices;
        Workbench {
            graph: Some(graph),
            num_vertices,
            backend: WorkbenchBackend::InMemory(engine),
            out_degrees,
            profile,
            dataset,
            scale,
            structure_bytes,
        }
    }

    /// Total vertex count (valid for both in-memory and disk-backed
    /// workbenches).
    pub fn num_vertices(&self) -> graphm_graph::VertexId {
        self.num_vertices
    }

    /// The raw edge list. Panics for disk-backed workbenches — the
    /// structure never leaves disk there; use [`Workbench::num_vertices`],
    /// [`Workbench::out_degrees`][Self], or [`Workbench::disk_source`]
    /// instead.
    pub fn graph(&self) -> &EdgeList {
        self.graph.as_ref().unwrap_or_else(|| {
            panic!("workbench is disk-backed; the edge list is not materialized")
        })
    }

    /// The raw edge list, when this workbench holds one in memory.
    pub fn graph_opt(&self) -> Option<&EdgeList> {
        self.graph.as_ref()
    }

    /// The in-memory host engine. Panics for disk-backed workbenches —
    /// callers that need raw blocks should use [`Workbench::disk_source`]
    /// or match on [`Workbench::backend`] instead.
    pub fn engine(&self) -> &GridGraphEngine {
        match &self.backend {
            WorkbenchBackend::InMemory(engine) => engine,
            WorkbenchBackend::Disk(src) => panic!(
                "workbench is disk-backed ({}); it has no in-memory engine",
                src.dir().display()
            ),
        }
    }

    /// The disk source, when this workbench is disk-backed.
    pub fn disk_source(&self) -> Option<&Arc<DiskGridSource>> {
        match &self.backend {
            WorkbenchBackend::Disk(src) => Some(src),
            WorkbenchBackend::InMemory(_) => None,
        }
    }

    /// Whether the graph exceeds the simulated memory budget.
    pub fn out_of_core(&self) -> bool {
        self.structure_bytes > self.profile.memory_bytes
    }

    /// Default runner configuration for this workbench.
    pub fn runner_config(&self) -> RunnerConfig {
        let mut cfg = RunnerConfig::new(self.profile);
        cfg.out_of_core = self.out_of_core();
        cfg
    }

    /// The paper's §5.1 mix of `count` jobs.
    pub fn paper_mix(&self, count: usize, seed: u64) -> Vec<JobSpec> {
        generate_mix(self.num_vertices, &MixConfig::paper(count, seed))
    }

    /// Turns specs + arrival times into submissions.
    pub fn submissions(&self, specs: &[JobSpec], arrivals: &[f64]) -> Vec<Submission> {
        assert_eq!(specs.len(), arrivals.len());
        specs
            .iter()
            .zip(arrivals)
            .map(|(s, &t)| Submission::at(s.instantiate(self.num_vertices, &self.out_degrees), t))
            .collect()
    }

    /// Runs `specs` under `scheme` with the given arrivals and the default
    /// runner configuration.
    pub fn run(&self, scheme: Scheme, specs: &[JobSpec], arrivals: &[f64]) -> RunReport {
        self.run_with(scheme, specs, arrivals, &self.runner_config())
    }

    /// Runs with an explicit runner configuration (core-count sweeps,
    /// scheduling-policy ablations, chunk-size ablations).
    pub fn run_with(
        &self,
        scheme: Scheme,
        specs: &[JobSpec],
        arrivals: &[f64],
        cfg: &RunnerConfig,
    ) -> RunReport {
        let subs = self.submissions(specs, arrivals);
        match &self.backend {
            WorkbenchBackend::InMemory(engine) => run_gridgraph(scheme, subs, engine, cfg),
            WorkbenchBackend::Disk(source) => run_scheme(scheme, subs, source.as_ref(), cfg),
        }
    }

    /// Default wall-clock execution config for this workbench (the same
    /// profile sizes the Formula-1 chunks).
    pub fn wallclock_config(&self) -> WallClockConfig {
        WallClockConfig::new(self.profile)
    }

    /// Runs `specs` on the **wall-clock** shared path — one OS thread per
    /// job over the threaded `SharingRuntime` — alongside the
    /// deterministic [`Workbench::run`]. Disk-backed workbenches get a
    /// partition [`Prefetcher`] wired to the runtime's loading order
    /// (read its counters from
    /// [`disk_source()`](Workbench::disk_source)`.prefetch_stats()`);
    /// in-memory workbenches have nothing to read ahead.
    pub fn run_shared_wallclock(&self, specs: &[JobSpec]) -> WallRunReport {
        self.run_shared_wallclock_with(specs, &self.wallclock_config())
    }

    /// [`Workbench::run_shared_wallclock`] with an explicit config.
    pub fn run_shared_wallclock_with(
        &self,
        specs: &[JobSpec],
        cfg: &WallClockConfig,
    ) -> WallRunReport {
        let jobs: Vec<Box<dyn GraphJob>> =
            specs.iter().map(|s| s.instantiate(self.num_vertices, &self.out_degrees)).collect();
        let (source, prefetcher): (Arc<dyn PartitionSource>, Option<Prefetcher>) = match &self
            .backend
        {
            WorkbenchBackend::InMemory(engine) => (Arc::new(GridSource::new(engine.grid())), None),
            WorkbenchBackend::Disk(src) => (
                Arc::clone(src) as Arc<dyn PartitionSource>,
                Some(Prefetcher::spawn(Arc::clone(src) as Arc<dyn PrefetchTarget>)),
            ),
        };
        let hook = prefetcher.as_ref().map(Prefetcher::hook);
        let exec = WallClockExecutor::new(source, cfg.clone(), hook);
        exec.run_batch(jobs)
        // `prefetcher` drops here, stopping and joining its thread.
    }

    /// Convenience: run all three schemes on the same workload, immediate
    /// arrivals. Returns `(S, C, M)`.
    pub fn run_all_schemes(&self, specs: &[JobSpec]) -> (RunReport, RunReport, RunReport) {
        let arr = arrivals::immediate_arrivals(specs.len());
        (
            self.run(Scheme::Sequential, specs, &arr),
            self.run(Scheme::Concurrent, specs, &arr),
            self.run(Scheme::Shared, specs, &arr),
        )
    }

    /// Runner config with the §4 scheduler disabled (Figure 18's
    /// `GridGraph-M-without`).
    pub fn runner_config_without_scheduling(&self) -> RunnerConfig {
        let mut cfg = self.runner_config();
        cfg.policy = SchedulingPolicy::Default;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_cachesim::keys;

    fn bench() -> Workbench {
        // LiveJ at 1/16 scale: small enough for unit tests while keeping
        // the graph-to-LLC ratio (~16x) in the paper's regime.
        Workbench::dataset(DatasetId::LiveJ, 16, 4)
    }

    #[test]
    fn regimes_follow_scaling() {
        let wb = bench();
        assert_eq!(wb.scale, 16);
        // LiveJ fits in (scaled) memory.
        assert!(!wb.out_of_core());
        let big = Workbench::dataset(DatasetId::Clueweb, 64, 3);
        assert!(big.out_of_core(), "clueweb-sim stays out-of-core at matched scale");
    }

    #[test]
    fn end_to_end_16_jobs_shape() {
        let wb = bench();
        let specs = wb.paper_mix(8, 1);
        let (s, c, m) = wb.run_all_schemes(&specs);
        assert_eq!(m.jobs.len(), 8);
        // The headline claim: M beats both S and C for concurrent jobs.
        assert!(m.makespan_ns < s.makespan_ns, "M {} vs S {}", m.makespan_ns, s.makespan_ns);
        assert!(m.makespan_ns < c.makespan_ns, "M {} vs C {}", m.makespan_ns, c.makespan_ns);
        // And reads no more from disk.
        assert!(m.metrics.get(keys::DISK_READ_BYTES) <= c.metrics.get(keys::DISK_READ_BYTES));
        // Same jobs converge to the same results across schemes (exact for
        // min-propagation jobs; PageRank agrees within fp tolerance).
        for (js, jm) in s.jobs.iter().zip(&m.jobs) {
            assert_eq!(js.name, jm.name);
            for (a, b) in js.values.iter().zip(&jm.values) {
                let both_unreached = a.is_infinite() && b.is_infinite();
                assert!(both_unreached || (a - b).abs() < 1e-9, "{}: {a} vs {b}", js.name);
            }
        }
    }

    #[test]
    fn wallclock_path_matches_deterministic_results() {
        let wb = bench();
        let specs = wb.paper_mix(4, 5);
        let arr = crate::arrivals::immediate_arrivals(specs.len());
        let det = wb.run(Scheme::Shared, &specs, &arr);
        let wall = wb.run_shared_wallclock(&specs);
        assert_eq!(wall.jobs.len(), det.jobs.len());
        for (w, d) in wall.jobs.iter().zip(&det.jobs) {
            assert_eq!(w.name, d.name);
            assert_eq!(w.iterations, d.iterations, "{}", w.name);
            assert_eq!(w.edges_processed, d.edges_processed, "{}", w.name);
            for (a, b) in w.values.iter().zip(&d.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "{}", w.name);
            }
        }
        // Shared loads: strictly below per-job accounting.
        let per_job: u64 = det
            .jobs
            .iter()
            .map(|j| j.iterations as u64 * wb.engine().grid().num_blocks() as u64)
            .sum();
        assert!(wall.partition_loads < per_job, "{} vs {per_job}", wall.partition_loads);
    }

    #[test]
    fn poisson_submissions_run() {
        let wb = bench();
        let specs = wb.paper_mix(6, 2);
        let arr = crate::arrivals::poisson_arrivals(6, 16.0, 1e6, 3);
        let r = wb.run(Scheme::Shared, &specs, &arr);
        assert_eq!(r.jobs.len(), 6);
        for (j, &t) in r.jobs.iter().zip(&arr) {
            assert!(j.finish_ns >= t, "job finishes after submission");
        }
    }

    #[test]
    fn scaled_profile_floors() {
        let p = scaled_profile(MemoryProfile::DEFAULT, 1_000_000);
        assert!(p.llc_bytes >= 8 << 10);
        assert!(p.memory_bytes >= 64 << 10);
        let same = scaled_profile(MemoryProfile::DEFAULT, 1);
        assert_eq!(same.memory_bytes, MemoryProfile::DEFAULT.memory_bytes);
    }
}
