//! # graphm-workloads — concurrent-job workloads and the experiment harness
//!
//! Everything §5.1 describes about *how* the paper runs its experiments:
//!
//! * [`jobmix`] — the WCC/PageRank/SSSP/BFS rotation with randomized
//!   parameters (damping, roots, iteration caps);
//! * [`arrivals`] — Poisson(λ) submission processes (default λ = 16);
//! * [`trace`] — the weekly social-network trace (Figures 2/4/15) and its
//!   similarity statistics;
//! * [`harness`] — the [`Workbench`] that pins one graph + engine and runs
//!   identical submissions under the S/C/M schemes.

pub mod arrivals;
pub mod harness;
pub mod jobmix;
pub mod trace;

pub use arrivals::{immediate_arrivals, poisson_arrivals, HOUR_NS};
pub use harness::{scaled_profile, Workbench, WorkbenchBackend};
pub use jobmix::{generate_mix, roots_within_hops, AlgoKind, JobSpec, MixConfig};
pub use trace::{similarity_stats, weekly_concurrency, Trace, TRACE_HOURS};
