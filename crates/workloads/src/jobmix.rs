//! The §5.1 job-mix generator.
//!
//! "We submit WCC, PageRank, SSSP, and BFS in turn in a sequential or
//! concurrent manner until the specific number of jobs are generated,
//! where the parameters are randomly set for different jobs":
//!
//! * PageRank — damping uniform in `[0.1, 0.85]`;
//! * BFS / SSSP — uniformly random root vertices;
//! * WCC — iteration cap uniform in `[1, max]`.

use graphm_algos::{Bfs, LabelPropagation, PageRank, PersonalizedPageRank, Sssp, Wcc};
use graphm_core::GraphJob;
use graphm_graph::{Csr, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Algorithm families available to the mix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgoKind {
    /// Weakly connected components.
    Wcc,
    /// PageRank.
    PageRank,
    /// Single-source shortest paths.
    Sssp,
    /// Breadth-first search.
    Bfs,
    /// Personalized PageRank (extension workload).
    Ppr,
    /// Min-hash label propagation (extension workload).
    LabelProp,
}

impl AlgoKind {
    /// The paper's §5.1 rotation: WCC, PageRank, SSSP, BFS, in turn.
    pub const PAPER_MIX: [AlgoKind; 4] =
        [AlgoKind::Wcc, AlgoKind::PageRank, AlgoKind::Sssp, AlgoKind::Bfs];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            AlgoKind::Wcc => "WCC",
            AlgoKind::PageRank => "PageRank",
            AlgoKind::Sssp => "SSSP",
            AlgoKind::Bfs => "BFS",
            AlgoKind::Ppr => "PPR",
            AlgoKind::LabelProp => "LabelProp",
        }
    }
}

/// A fully parameterized job waiting to be instantiated.
#[derive(Clone, Copy, Debug)]
pub struct JobSpec {
    /// Algorithm family.
    pub kind: AlgoKind,
    /// Damping factor (PageRank/PPR).
    pub damping: f64,
    /// Root/seed vertex (BFS/SSSP/PPR) or salt (LabelProp).
    pub root: VertexId,
    /// Iteration cap (WCC's random cap; PageRank's max iterations).
    pub max_iters: usize,
}

impl JobSpec {
    /// Instantiates the runnable job for a graph with `num_vertices`
    /// vertices and the given out-degrees.
    pub fn instantiate(
        &self,
        num_vertices: VertexId,
        out_degrees: &Arc<Vec<u32>>,
    ) -> Box<dyn GraphJob> {
        match self.kind {
            AlgoKind::Wcc => Box::new(Wcc::new(num_vertices).with_max_iters(self.max_iters)),
            AlgoKind::PageRank => Box::new(PageRank::new(
                num_vertices,
                Arc::clone(out_degrees),
                self.damping,
                self.max_iters,
            )),
            AlgoKind::Sssp => Box::new(Sssp::new(num_vertices, self.root)),
            AlgoKind::Bfs => Box::new(Bfs::new(num_vertices, self.root)),
            AlgoKind::Ppr => Box::new(PersonalizedPageRank::new(
                num_vertices,
                Arc::clone(out_degrees),
                self.root,
                self.damping,
                self.max_iters,
            )),
            AlgoKind::LabelProp => {
                Box::new(LabelPropagation::new(num_vertices, self.root as u64, self.max_iters))
            }
        }
    }
}

/// Configuration of a generated mix.
#[derive(Clone, Debug)]
pub struct MixConfig {
    /// How many jobs.
    pub count: usize,
    /// Families rotated through ("in turn").
    pub kinds: Vec<AlgoKind>,
    /// RNG seed.
    pub seed: u64,
    /// Iteration cap for PageRank-family jobs.
    pub pr_max_iters: usize,
    /// Upper bound of the random WCC iteration cap.
    pub wcc_max_iters: usize,
}

impl MixConfig {
    /// The paper's default mix of `count` jobs. Iteration budgets follow
    /// the paper's convergence-driven runs: PageRank iterates until its
    /// tolerance (up to 30 rounds), WCC caps are drawn from `[1, 15]`.
    pub fn paper(count: usize, seed: u64) -> MixConfig {
        MixConfig {
            count,
            kinds: AlgoKind::PAPER_MIX.to_vec(),
            seed,
            pr_max_iters: 30,
            wcc_max_iters: 15,
        }
    }

    /// A mix of a single family (Figures 17 and 19).
    pub fn uniform(kind: AlgoKind, count: usize, seed: u64) -> MixConfig {
        MixConfig { count, kinds: vec![kind], seed, pr_max_iters: 10, wcc_max_iters: 10 }
    }
}

/// Generates the specs for a mix over a graph with `num_vertices`.
pub fn generate_mix(num_vertices: VertexId, cfg: &MixConfig) -> Vec<JobSpec> {
    assert!(!cfg.kinds.is_empty());
    assert!(num_vertices > 0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.count)
        .map(|i| {
            let kind = cfg.kinds[i % cfg.kinds.len()];
            JobSpec {
                kind,
                damping: 0.1 + rng.random::<f64>() * 0.75,
                root: rng.random_range(0..num_vertices),
                max_iters: match kind {
                    AlgoKind::Wcc => 1 + rng.random_range(0..cfg.wcc_max_iters),
                    _ => cfg.pr_max_iters,
                },
            }
        })
        .collect()
}

/// Samples `count` roots within `hops` hops of `base` (Figure 17's
/// "root vertices within the range of different number of hops").
pub fn roots_within_hops(
    graph: &EdgeList,
    base: VertexId,
    hops: usize,
    count: usize,
    seed: u64,
) -> Vec<VertexId> {
    let csr = Csr::from_edge_list(graph);
    let mut reachable = vec![base];
    let mut frontier = vec![base];
    let mut seen = vec![false; graph.num_vertices as usize];
    seen[base as usize] = true;
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &t in csr.neighbors(v) {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    next.push(t);
                    reachable.push(t);
                }
            }
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| reachable[rng.random_range(0..reachable.len())]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    #[test]
    fn mix_rotates_kinds_and_randomizes_params() {
        let specs = generate_mix(1000, &MixConfig::paper(8, 7));
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].kind, AlgoKind::Wcc);
        assert_eq!(specs[1].kind, AlgoKind::PageRank);
        assert_eq!(specs[4].kind, AlgoKind::Wcc);
        // Damping in [0.1, 0.85].
        for s in &specs {
            assert!(s.damping >= 0.1 && s.damping <= 0.85);
            assert!(s.root < 1000);
        }
        // Two PageRank jobs should differ in damping.
        assert_ne!(specs[1].damping, specs[5].damping);
        // WCC caps within [1, 15].
        assert!(specs[0].max_iters >= 1 && specs[0].max_iters <= 15);
    }

    #[test]
    fn mix_is_deterministic() {
        let a = generate_mix(100, &MixConfig::paper(6, 42));
        let b = generate_mix(100, &MixConfig::paper(6, 42));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.root, y.root);
            assert_eq!(x.damping, y.damping);
        }
    }

    #[test]
    fn instantiate_all_kinds() {
        let g = generators::rmat(64, 300, generators::RmatParams::GRAPH500, 2);
        let deg = Arc::new(g.out_degrees());
        for kind in [
            AlgoKind::Wcc,
            AlgoKind::PageRank,
            AlgoKind::Sssp,
            AlgoKind::Bfs,
            AlgoKind::Ppr,
            AlgoKind::LabelProp,
        ] {
            let spec = JobSpec { kind, damping: 0.5, root: 3, max_iters: 4 };
            let job = spec.instantiate(64, &deg);
            assert_eq!(job.name(), kind.name());
        }
    }

    #[test]
    fn hop_bounded_roots_are_close() {
        let g = generators::path(50);
        let roots = roots_within_hops(&g, 10, 3, 20, 1);
        for r in roots {
            assert!((10..=13).contains(&r), "root {r} outside 3 hops of 10");
        }
    }

    #[test]
    fn zero_hops_returns_base() {
        let g = generators::path(10);
        let roots = roots_within_hops(&g, 4, 0, 5, 1);
        assert!(roots.iter().all(|&r| r == 4));
    }
}
