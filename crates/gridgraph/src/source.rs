//! `PartitionSource` adapter: GraphM over the grid format.
//!
//! One grid block = one GraphM partition. The native traversal order is
//! GridGraph's column-major streaming order; block activity is decided by
//! the block's source-vertex row range against the job's bitmap — exactly
//! the information GridGraph's `should_access_shard` array carries.

use graphm_core::PartitionSource;
use graphm_graph::{AtomicBitmap, Edge, Grid, VertexId, EDGE_BYTES};
use std::sync::Arc;

/// An in-memory grid exposed to GraphM.
pub struct GridSource {
    blocks: Vec<Arc<Vec<Edge>>>,
    /// Source-vertex bounds (row range) per block, row-major.
    row_bounds: Vec<(VertexId, VertexId)>,
    order: Vec<usize>,
    num_vertices: VertexId,
}

impl GridSource {
    /// Wraps a converted grid.
    pub fn new(grid: &Grid) -> GridSource {
        let p = grid.p();
        let mut blocks = Vec::with_capacity(p * p);
        let mut row_bounds = Vec::with_capacity(p * p);
        for idx in 0..grid.num_blocks() {
            let (row, _) = grid.block_coords(idx);
            blocks.push(Arc::new(grid.block_by_index(idx).to_vec()));
            row_bounds.push(grid.ranges().bounds(row));
        }
        GridSource {
            blocks,
            row_bounds,
            order: grid.streaming_order(),
            num_vertices: grid.ranges().num_vertices(),
        }
    }

    /// Grid dimension implied by the block count.
    pub fn p(&self) -> usize {
        (self.blocks.len() as f64).sqrt() as usize
    }
}

impl PartitionSource for GridSource {
    fn num_partitions(&self) -> usize {
        self.blocks.len()
    }

    fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        Arc::clone(&self.blocks[pid])
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.blocks[pid].len() * EDGE_BYTES
    }

    fn graph_bytes(&self) -> usize {
        self.blocks.iter().map(|b| b.len() * EDGE_BYTES).sum()
    }

    fn order(&self) -> Vec<usize> {
        self.order.clone()
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        if self.blocks[pid].is_empty() {
            return false;
        }
        let (lo, hi) = self.row_bounds[pid];
        lo < hi && active.any_in_range(lo as usize, hi as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    #[test]
    fn adapter_roundtrip() {
        let g = generators::rmat(100, 800, generators::RmatParams::GRAPH500, 7);
        let grid = Grid::convert(&g, 3);
        let s = GridSource::new(&grid);
        assert_eq!(s.num_partitions(), 9);
        assert_eq!(s.p(), 3);
        assert_eq!(s.num_vertices(), 100);
        let total: usize = (0..9).map(|i| s.load(i).len()).sum();
        assert_eq!(total, 800);
        assert_eq!(s.graph_bytes(), 800 * EDGE_BYTES);
        assert_eq!(s.order(), grid.streaming_order());
    }

    #[test]
    fn activity_follows_rows() {
        let g = generators::ring(9);
        let grid = Grid::convert(&g, 3); // rows of 3 vertices
        let s = GridSource::new(&grid);
        let active = AtomicBitmap::new(9);
        active.set(4); // row 1
        for pid in 0..9 {
            let (row, _) = grid.block_coords(pid);
            let expect = row == 1 && !grid.block_by_index(pid).is_empty();
            assert_eq!(s.partition_active(pid, &active), expect, "block {pid}");
        }
    }
}
