//! # graphm-gridgraph — GridGraph-style engine with GraphM integration
//!
//! GridGraph [Zhu et al., ATC '15] is the out-of-core engine the paper
//! integrates first (Figure 6 shows the four-line patch). This crate
//! reproduces the engine — 2-level grid partitioning, column-major
//! streaming-apply, selective scheduling — and its three execution schemes:
//!
//! * `GridGraph-S`: sequential jobs ([`run_gridgraph`] with
//!   [`graphm_core::Scheme::Sequential`]);
//! * `GridGraph-C`: concurrent jobs with private graph copies;
//! * `GridGraph-M`: concurrent jobs over GraphM's shared storage.
//!
//! [`schemes::wall`] adds real-thread wall-clock counterparts used by the
//! Criterion benches.

pub mod engine;
pub mod schemes;
pub mod source;

pub use engine::GridGraphEngine;
pub use graphm_store::DiskGridSource;
pub use schemes::{graphm_preprocess_wall, run_gridgraph, run_gridgraph_disk, wall};
pub use source::GridSource;
