//! The GridGraph-style host engine.
//!
//! GridGraph [Zhu et al., ATC '15] is the paper's primary integration
//! target: a single-machine out-of-core engine with 2-level grid
//! partitioning and a streaming-apply execution model. This module is the
//! engine proper — `Convert()` preprocessing, the per-job `StreamEdges`
//! loop with selective scheduling — independent of any execution scheme.

use graphm_core::GraphJob;
use graphm_graph::{EdgeList, Grid, Manifest};
use graphm_store::{Convert, DiskGridSource};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A preprocessed GridGraph instance.
pub struct GridGraphEngine {
    grid: Arc<Grid>,
    out_degrees: Arc<Vec<u32>>,
}

impl GridGraphEngine {
    /// `Convert()` — preprocesses an edge list into the grid format,
    /// returning the engine and the wall-clock preprocessing time
    /// (Table 3's GridGraph column).
    pub fn convert(graph: &EdgeList, p: usize) -> (GridGraphEngine, Duration) {
        let start = Instant::now();
        let grid = Grid::convert(graph, p);
        let out_degrees = graph.out_degrees();
        let elapsed = start.elapsed();
        (GridGraphEngine { grid: Arc::new(grid), out_degrees: Arc::new(out_degrees) }, elapsed)
    }

    /// `Convert()` with durable output: grid-partitions `graph` and writes
    /// it as a disk-resident store (segments + manifest) under `dir`,
    /// returning the manifest and the wall-clock preprocessing time.
    pub fn convert_to_disk(
        graph: &EdgeList,
        p: usize,
        dir: &Path,
    ) -> graphm_graph::Result<(Manifest, Duration)> {
        let start = Instant::now();
        let manifest = Convert::grid(p).write(graph, dir)?;
        Ok((manifest, start.elapsed()))
    }

    /// Opens a disk-resident grid store as a GraphM partition source. The
    /// returned source drops into every place a `GridSource` fits.
    pub fn open_disk(dir: &Path) -> graphm_graph::Result<DiskGridSource> {
        DiskGridSource::open(dir)
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Arc<Grid> {
        &self.grid
    }

    /// Out-degrees of the converted graph (PageRank-family jobs need them).
    pub fn out_degrees(&self) -> Arc<Vec<u32>> {
        Arc::clone(&self.out_degrees)
    }

    /// GridGraph's `StreamEdges` for one job and one iteration: walks
    /// active blocks in streaming order, skipping blocks whose source rows
    /// hold no active vertex (`should_access_shard`). Returns the number
    /// of edges streamed.
    pub fn stream_edges_once(&self, job: &mut dyn GraphJob) -> u64 {
        let mut streamed = 0u64;
        for idx in self.grid.streaming_order() {
            let (row, _) = self.grid.block_coords(idx);
            let (lo, hi) = self.grid.ranges().bounds(row);
            if job.skips_inactive()
                && !(lo < hi && job.active().any_in_range(lo as usize, hi as usize))
            {
                continue;
            }
            for e in self.grid.block_by_index(idx) {
                streamed += 1;
                if !job.skips_inactive() || job.active().get(e.src as usize) {
                    job.process_edge(e);
                }
            }
        }
        streamed
    }

    /// Runs one job to convergence (or `max_iters`), returning the number
    /// of iterations executed. This is the plain single-job GridGraph the
    /// paper starts from.
    pub fn run_job(&self, job: &mut dyn GraphJob, max_iters: usize) -> usize {
        for i in 0..max_iters {
            self.stream_edges_once(job);
            if job.end_iteration() {
                return i + 1;
            }
        }
        max_iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_algos::reference;
    use graphm_algos::{Bfs, PageRank, Sssp, Wcc};
    use graphm_graph::generators;

    fn graph() -> EdgeList {
        generators::rmat(300, 2500, generators::RmatParams::GRAPH500, 77)
    }

    #[test]
    fn pagerank_on_grid_matches_reference() {
        let g = graph();
        let (engine, prep) = GridGraphEngine::convert(&g, 4);
        assert!(prep.as_nanos() > 0);
        let mut pr =
            PageRank::new(g.num_vertices, engine.out_degrees(), 0.85, 8).with_tolerance(0.0);
        let iters = engine.run_job(&mut pr, 100);
        assert_eq!(iters, 8);
        let oracle = reference::pagerank_ref(&g, 0.85, 8, 0.0);
        for (a, b) in pr.ranks().iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn wcc_on_grid_matches_reference() {
        let g = generators::symmetrize(&graph());
        let (engine, _) = GridGraphEngine::convert(&g, 4);
        let mut wcc = Wcc::new(g.num_vertices);
        engine.run_job(&mut wcc, 1000);
        assert_eq!(wcc.labels(), reference::wcc_ref(&g).as_slice());
    }

    #[test]
    fn bfs_on_grid_matches_reference() {
        let g = graph();
        let (engine, _) = GridGraphEngine::convert(&g, 4);
        let mut bfs = Bfs::new(g.num_vertices, 5);
        engine.run_job(&mut bfs, 1000);
        assert_eq!(
            bfs.vertex_values(),
            reference::bfs_ref(&g, 5).iter().map(|&l| l as f64).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sssp_on_grid_matches_reference() {
        let g = graph();
        let (engine, _) = GridGraphEngine::convert(&g, 4);
        let mut sssp = Sssp::new(g.num_vertices, 5);
        engine.run_job(&mut sssp, 1000);
        let oracle = reference::sssp_ref(&g, 5);
        for (a, b) in sssp.distances().iter().zip(&oracle) {
            assert!((a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn selective_scheduling_skips_blocks() {
        // A BFS frontier confined to one row must stream fewer edges than
        // a full sweep.
        let g = graph();
        let (engine, _) = GridGraphEngine::convert(&g, 4);
        let mut bfs = Bfs::new(g.num_vertices, 0);
        let first_sweep = engine.stream_edges_once(&mut bfs);
        let total_edges = g.num_edges() as u64;
        assert!(
            first_sweep < total_edges,
            "frontier of 1 vertex must not stream all {total_edges} edges"
        );
    }
}
