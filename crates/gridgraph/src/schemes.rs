//! GridGraph-S / GridGraph-C / GridGraph-M.
//!
//! Two execution paths per scheme:
//!
//! * **Deterministic** ([`run_gridgraph`]) — replays through the simulated
//!   memory hierarchy (`graphm_core::runner`), producing the virtual-time
//!   figures of §5.
//! * **Wall-clock** ([`wall`]) — real OS threads, real caches: `-S` runs
//!   jobs back-to-back, `-C` gives each thread a *private clone* of every
//!   block it streams, `-M` routes loads through the threaded
//!   [`graphm_core::SharingRuntime`] with chunk pacing. Used by the Criterion benches.

use crate::engine::GridGraphEngine;
use crate::source::GridSource;
use graphm_core::{
    run_scheme, GraphJob, GraphM, GraphMConfig, PartitionSource, RunReport, RunnerConfig, Scheme,
    Submission,
};
use graphm_graph::EDGE_BYTES;
use std::sync::Arc;
use std::time::Instant;

/// Runs a job mix on GridGraph under the given scheme, deterministically.
pub fn run_gridgraph(
    scheme: Scheme,
    subs: Vec<Submission>,
    engine: &GridGraphEngine,
    cfg: &RunnerConfig,
) -> RunReport {
    let source = GridSource::new(engine.grid());
    run_scheme(scheme, subs, &source, cfg)
}

/// Runs a job mix on a *disk-resident* grid store under the given scheme.
/// Same runtime as [`run_gridgraph`]; partitions stream from the mmap'd
/// segments and per-partition byte counts come from the store manifest.
pub fn run_gridgraph_disk(
    scheme: Scheme,
    subs: Vec<Submission>,
    source: &graphm_store::DiskGridSource,
    cfg: &RunnerConfig,
) -> RunReport {
    run_scheme(scheme, subs, source, cfg)
}

/// Table-3 helper: wall-clock time of GraphM's extra preprocessing
/// (Formula-1 sizing + Algorithm-1 labelling) on top of the grid convert.
pub fn graphm_preprocess_wall(
    engine: &GridGraphEngine,
    cfg: GraphMConfig,
) -> (GraphM, std::time::Duration) {
    let source = GridSource::new(engine.grid());
    let start = Instant::now();
    let gm = GraphM::init(&source, 8, cfg);
    (gm, start.elapsed())
}

/// Wall-clock runners (real threads, real memory).
pub mod wall {
    use super::*;

    /// Per-run wall-clock outcome.
    pub struct WallReport {
        /// Total elapsed milliseconds.
        pub total_ms: f64,
        /// Per-job results (vertex values).
        pub results: Vec<Vec<f64>>,
        /// Per-job iteration counts.
        pub iterations: Vec<usize>,
        /// Partition loads performed (shared scheme: actual shared loads).
        pub loads: u64,
    }

    /// GridGraph-S: jobs one after another on the calling thread.
    pub fn run_sequential(
        jobs: Vec<Box<dyn GraphJob>>,
        engine: &GridGraphEngine,
        max_iters: usize,
    ) -> WallReport {
        let start = Instant::now();
        let mut results = Vec::new();
        let mut iterations = Vec::new();
        let mut loads = 0u64;
        let blocks = engine.grid().num_blocks() as u64;
        for mut job in jobs {
            let iters = engine.run_job(job.as_mut(), max_iters);
            loads += blocks * iters as u64; // every iteration re-streams
            iterations.push(iters);
            results.push(job.vertex_values());
        }
        WallReport { total_ms: start.elapsed().as_secs_f64() * 1e3, results, iterations, loads }
    }

    /// GridGraph-C: one OS thread per job; each thread clones every block
    /// it streams (private copies, as independent engine processes would
    /// hold).
    pub fn run_concurrent(
        jobs: Vec<Box<dyn GraphJob>>,
        engine: &GridGraphEngine,
        max_iters: usize,
    ) -> WallReport {
        let start = Instant::now();
        let grid = Arc::clone(engine.grid());
        let mut handles = Vec::new();
        for mut job in jobs {
            let grid = Arc::clone(&grid);
            handles.push(std::thread::spawn(move || {
                let mut iters = 0usize;
                let mut loads = 0u64;
                for _ in 0..max_iters {
                    for idx in grid.streaming_order() {
                        let (row, _) = grid.block_coords(idx);
                        let (lo, hi) = grid.ranges().bounds(row);
                        if job.skips_inactive()
                            && !(lo < hi && job.active().any_in_range(lo as usize, hi as usize))
                        {
                            continue;
                        }
                        // The private copy: this job's own buffer of the
                        // block, re-materialized like a private read.
                        let private: Vec<graphm_graph::Edge> = grid.block_by_index(idx).to_vec();
                        loads += 1;
                        for e in &private {
                            if !job.skips_inactive() || job.active().get(e.src as usize) {
                                job.process_edge(e);
                            }
                        }
                    }
                    iters += 1;
                    if job.end_iteration() {
                        break;
                    }
                }
                (job.vertex_values(), iters, loads)
            }));
        }
        let mut results = Vec::new();
        let mut iterations = Vec::new();
        let mut loads = 0u64;
        for h in handles {
            let (vals, iters, l) = h.join().expect("job thread panicked");
            results.push(vals);
            iterations.push(iters);
            loads += l;
        }
        WallReport { total_ms: start.elapsed().as_secs_f64() * 1e3, results, iterations, loads }
    }

    /// GridGraph-M: one OS thread per job, loads routed through the
    /// threaded [`graphm_core::SharingRuntime`]; jobs pace each other chunk-by-chunk
    /// through one shared buffer. Delegates to the engine-agnostic
    /// [`graphm_core::WallClockExecutor`], which also powers the daemon's
    /// `wallclock` mode and the disk-resident speedup bench.
    pub fn run_shared(
        jobs: Vec<Box<dyn GraphJob>>,
        engine: &GridGraphEngine,
        max_iters: usize,
    ) -> WallReport {
        let source: Arc<dyn PartitionSource> = Arc::new(GridSource::new(engine.grid()));
        let cfg = graphm_core::WallClockConfig {
            max_iterations: max_iters,
            ..graphm_core::WallClockConfig::default()
        };
        let report = graphm_core::run_shared_wallclock(source, jobs, &cfg, None);
        WallReport {
            total_ms: report.total_ms,
            iterations: report.jobs.iter().map(|j| j.iterations).collect(),
            results: report.jobs.into_iter().map(|j| j.values).collect(),
            loads: report.partition_loads,
        }
    }

    /// Bytes one block-load moves, for I/O comparisons in benches.
    pub fn block_bytes(engine: &GridGraphEngine, idx: usize) -> usize {
        engine.grid().block_by_index(idx).len() * EDGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_algos::reference;
    use graphm_algos::{Bfs, PageRank, Wcc};
    use graphm_cachesim::keys;
    use graphm_graph::{generators, MemoryProfile};

    fn engine() -> (graphm_graph::EdgeList, GridGraphEngine) {
        let g = generators::rmat(400, 3000, generators::RmatParams::GRAPH500, 55);
        let (e, _) = GridGraphEngine::convert(&g, 3);
        (g, e)
    }

    fn pr_subs(g: &graphm_graph::EdgeList, engine: &GridGraphEngine, n: usize) -> Vec<Submission> {
        (0..n)
            .map(|i| {
                Submission::immediate(Box::new(
                    PageRank::new(g.num_vertices, engine.out_degrees(), 0.5 + 0.05 * i as f64, 25)
                        .with_tolerance(0.0),
                ))
            })
            .collect()
    }

    #[test]
    fn deterministic_schemes_match_oracle() {
        let (g, engine) = engine();
        let cfg = RunnerConfig::new(MemoryProfile::TEST);
        for scheme in [Scheme::Sequential, Scheme::Concurrent, Scheme::Shared] {
            let report = run_gridgraph(scheme, pr_subs(&g, &engine, 2), &engine, &cfg);
            for (i, job) in report.jobs.iter().enumerate() {
                let oracle = reference::pagerank_ref(&g, 0.5 + 0.05 * i as f64, 25, 0.0);
                for (a, b) in job.values.iter().zip(&oracle) {
                    assert!((a - b).abs() < 1e-9, "{scheme:?} job {i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn shared_scheme_beats_concurrent_on_io_and_llc() {
        let (g, engine) = engine();
        let cfg = RunnerConfig::new(MemoryProfile::TEST);
        let m = run_gridgraph(Scheme::Shared, pr_subs(&g, &engine, 4), &engine, &cfg);
        let c = run_gridgraph(Scheme::Concurrent, pr_subs(&g, &engine, 4), &engine, &cfg);
        assert!(m.metrics.get(keys::DISK_READ_BYTES) <= c.metrics.get(keys::DISK_READ_BYTES));
        let m_rate = m.metrics.get(keys::LLC_MISSES) / m.metrics.get(keys::LLC_ACCESSES);
        let c_rate = c.metrics.get(keys::LLC_MISSES) / c.metrics.get(keys::LLC_ACCESSES);
        assert!(m_rate < c_rate, "M {m_rate} vs C {c_rate}");
        assert!(m.makespan_ns < c.makespan_ns);
    }

    #[test]
    fn wall_schemes_agree_with_each_other() {
        let (g, engine) = engine();
        let mk = |count: usize| -> Vec<Box<dyn GraphJob>> {
            (0..count)
                .map(|i| {
                    Box::new(
                        PageRank::new(
                            g.num_vertices,
                            engine.out_degrees(),
                            0.6 + 0.1 * i as f64,
                            4,
                        )
                        .with_tolerance(0.0),
                    ) as Box<dyn GraphJob>
                })
                .collect()
        };
        let s = wall::run_sequential(mk(3), &engine, 100);
        let c = wall::run_concurrent(mk(3), &engine, 100);
        let m = wall::run_shared(mk(3), &engine, 100);
        for i in 0..3 {
            for ((a, b), z) in s.results[i].iter().zip(&c.results[i]).zip(&m.results[i]) {
                assert!((a - b).abs() < 1e-9, "S vs C");
                assert!((a - z).abs() < 1e-9, "S vs M");
            }
        }
        // Sharing loads each block once per sweep; sequential streams it
        // once per job per sweep.
        assert!(m.loads < s.loads, "M loads {} vs S loads {}", m.loads, s.loads);
    }

    #[test]
    fn wall_shared_runs_frontier_jobs() {
        let (g, engine) = engine();
        let jobs: Vec<Box<dyn GraphJob>> = vec![
            Box::new(Bfs::new(g.num_vertices, 1)),
            Box::new(Wcc::new(g.num_vertices)),
            Box::new(Bfs::new(g.num_vertices, 7)),
        ];
        let m = wall::run_shared(jobs, &engine, 1000);
        let bfs_oracle = reference::bfs_ref(&g, 1);
        for (a, b) in m.results[0].iter().zip(&bfs_oracle) {
            assert_eq!(*a, *b as f64);
        }
        let wcc_oracle = reference::wcc_ref(&g);
        for (a, b) in m.results[1].iter().zip(&wcc_oracle) {
            assert_eq!(*a, *b as f64);
        }
    }

    #[test]
    fn preprocessing_overhead_is_small() {
        // Table 3: GridGraph-M adds a single labelling traversal on top of
        // the grid conversion.
        let g = generators::rmat(400, 6000, generators::RmatParams::GRAPH500, 9);
        let (engine, convert_time) = GridGraphEngine::convert(&g, 4);
        let (gm, label_time) =
            graphm_preprocess_wall(&engine, GraphMConfig::new(MemoryProfile::DEFAULT));
        assert!(gm.overhead_bytes() > 0);
        // Labelling is one pass; conversion sorts — labelling should not
        // dwarf conversion (allow generous slack for timer noise).
        assert!(label_time.as_secs_f64() < convert_time.as_secs_f64() * 10.0 + 0.05);
    }
}
