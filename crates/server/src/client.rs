//! Blocking client for the `graphm-server` line protocol.
//!
//! One [`Client`] wraps one connection (unix-domain or TCP) and issues
//! requests synchronously; open several clients for concurrent
//! submissions (the daemon handles each connection on its own thread).

use crate::protocol::{
    report_from_json, request_to_json, HealthReport, JobState, Priority, Request, ServerStats,
    ERR_OVERLOADED, ERR_SHUTTING_DOWN,
};
use graphm_core::{JobId, JobReport};
use graphm_graph::delta::DeltaRecord;
use graphm_workloads::JobSpec;
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hangup).
    Io(std::io::Error),
    /// The server shed this request with a typed `overloaded` error
    /// (queue full, quota exceeded, connection limit, eviction
    /// pressure). Retryable with backoff — see `graphm-client
    /// --retries`.
    Overloaded(String),
    /// The server is shutting down and rejected new work.
    ShuttingDown(String),
    /// The server answered `{"ok":false,...}` with this message.
    Server(String),
    /// The server answered something this client cannot decode.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Overloaded(m) => write!(f, "server overloaded: {m}"),
            ClientError::ShuttingDown(m) => write!(f, "server shutting down: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Connects over a unix-domain socket.
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let read = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(Box::new(read)), writer: Box::new(stream) })
    }

    /// Connects over TCP (e.g. `"127.0.0.1:7421"`).
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(Box::new(read)), writer: Box::new(stream) })
    }

    /// One request/response round trip.
    fn request(&mut self, req: &Request) -> Result<Value, ClientError> {
        let line =
            serde_json::to_string(&request_to_json(req)).expect("serialization is infallible");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let v = serde_json::from_str(response.trim_end())
            .map_err(|e| ClientError::Protocol(format!("bad response json: {e}")))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let msg =
                    v.get("error").and_then(Value::as_str).unwrap_or("unspecified").to_string();
                Err(match v.get("code").and_then(Value::as_str) {
                    Some(ERR_OVERLOADED) => ClientError::Overloaded(msg),
                    Some(ERR_SHUTTING_DOWN) => ClientError::ShuttingDown(msg),
                    _ => ClientError::Server(msg),
                })
            }
            None => Err(ClientError::Protocol("response missing \"ok\"".to_string())),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Submits a job under the default (anonymous, `Batch`) identity;
    /// returns its daemon-assigned id immediately.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobId, ClientError> {
        self.submit_as(spec, "", Priority::Batch)
    }

    /// Submits a job with an explicit tenant identity and priority class.
    /// The daemon enforces per-tenant quotas against `tenant` and admits
    /// `Priority::Interactive` jobs into every round regardless of the
    /// batch backlog. Shed submissions fail with
    /// [`ClientError::Overloaded`].
    pub fn submit_as(
        &mut self,
        spec: &JobSpec,
        tenant: &str,
        priority: Priority,
    ) -> Result<JobId, ClientError> {
        let v =
            self.request(&Request::Submit { spec: *spec, tenant: tenant.to_string(), priority })?;
        v.get("job_id")
            .and_then(Value::as_u64)
            .map(|id| id as JobId)
            .ok_or_else(|| ClientError::Protocol("submit ack missing job_id".to_string()))
    }

    /// Point-in-time daemon health: lease state, served generation,
    /// queue depth, resident bytes, uptime. Cheap enough for readiness
    /// polling.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        let v = self.request(&Request::Health)?;
        let h =
            v.get("health").ok_or_else(|| ClientError::Protocol("missing health".to_string()))?;
        HealthReport::from_json(h).map_err(ClientError::Protocol)
    }

    /// Non-blocking lifecycle query.
    pub fn status(&mut self, id: JobId) -> Result<JobState, ClientError> {
        let v = self.request(&Request::Status(id))?;
        v.get("state")
            .and_then(Value::as_str)
            .and_then(JobState::from_name)
            .ok_or_else(|| ClientError::Protocol("status missing state".to_string()))
    }

    /// Blocks until job `id` finishes; returns its full report.
    pub fn wait(&mut self, id: JobId) -> Result<JobReport, ClientError> {
        let v = self.request(&Request::Wait(id))?;
        let report = v
            .get("report")
            .ok_or_else(|| ClientError::Protocol("wait response missing report".to_string()))?;
        report_from_json(report).map_err(ClientError::Protocol)
    }

    /// Submits and waits in one call.
    pub fn run(&mut self, spec: &JobSpec) -> Result<JobReport, ClientError> {
        let id = self.submit(spec)?;
        self.wait(id)
    }

    /// Daemon-wide counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let v = self.request(&Request::Stats)?;
        let stats =
            v.get("stats").ok_or_else(|| ClientError::Protocol("missing stats".to_string()))?;
        ServerStats::from_json(stats).map_err(ClientError::Protocol)
    }

    /// Asks the daemon to shut down (queued jobs still drain).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    /// Stages mutations on this connection (ingest-enabled daemons
    /// only); returns the total staged so far.
    pub fn ingest(&mut self, ops: &[DeltaRecord]) -> Result<usize, ClientError> {
        let v = self.request(&Request::Ingest(ops.to_vec()))?;
        v.get("staged")
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| ClientError::Protocol("ingest ack missing staged".to_string()))
    }

    /// Group-commits this connection's staged mutations; blocks until
    /// the absorbing generation is durable. Returns `(generation,
    /// records_committed)`.
    pub fn ingest_commit(&mut self) -> Result<(u64, u64), ClientError> {
        let v = self.request(&Request::IngestCommit)?;
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("ingest_commit ack missing {k}")))
        };
        Ok((field("generation")?, field("records")?))
    }

    /// Drops this connection's staged mutations; returns how many were
    /// discarded.
    pub fn ingest_abort(&mut self) -> Result<usize, ClientError> {
        let v = self.request(&Request::IngestAbort)?;
        v.get("discarded")
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| ClientError::Protocol("ingest_abort ack missing discarded".to_string()))
    }
}
