//! Blocking client for the `graphm-server` line protocol.
//!
//! One [`Client`] wraps one connection (unix-domain or TCP) and issues
//! requests synchronously; open several clients for concurrent
//! submissions (the daemon handles each connection on its own thread).

use crate::protocol::{
    report_from_json, request_to_json, HealthReport, JobState, Priority, Request, ServerStats,
    ERR_NOT_PRIMARY, ERR_OVERLOADED, ERR_SHUTTING_DOWN, ERR_STALE_REPLICA, ERR_UNAUTHORIZED,
};
use crate::repl::hex_decode;
use graphm_core::{JobId, JobReport};
use graphm_graph::delta::DeltaRecord;
use graphm_workloads::JobSpec;
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or server hangup).
    Io(std::io::Error),
    /// The server shed this request with a typed `overloaded` error
    /// (queue full, quota exceeded, connection limit, eviction
    /// pressure). Retryable with backoff — see `graphm-client
    /// --retries`.
    Overloaded(String),
    /// The server is shutting down and rejected new work.
    ShuttingDown(String),
    /// The server requires authentication (`auth` with the shared
    /// secret) before this request, or the presented token was wrong.
    Unauthorized(String),
    /// The server is a follower replica and rejected a primary-only
    /// request; the message names the primary to redirect to. Retry the
    /// peer list with backoff — see `graphm-client --tcp A,B`.
    NotPrimary(String),
    /// A follower replica refused a read because its replication lag
    /// exceeds its `--max-replica-lag` staleness bound.
    StaleReplica(String),
    /// The server answered `{"ok":false,...}` with this message.
    Server(String),
    /// The server answered something this client cannot decode.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Overloaded(m) => write!(f, "server overloaded: {m}"),
            ClientError::ShuttingDown(m) => write!(f, "server shutting down: {m}"),
            ClientError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            ClientError::NotPrimary(m) => write!(f, "not primary: {m}"),
            ClientError::StaleReplica(m) => write!(f, "stale replica: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl Client {
    /// Connects over a unix-domain socket.
    pub fn connect_unix(path: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let read = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(Box::new(read)), writer: Box::new(stream) })
    }

    /// Connects over TCP (e.g. `"127.0.0.1:7421"`).
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let read = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(Box::new(read)), writer: Box::new(stream) })
    }

    /// Connects over TCP with a read timeout, so a caller tailing a
    /// peer that dies silently (no RST) gets an `Io` error instead of
    /// blocking forever. Pick a timeout comfortably above the server's
    /// `repl_frames` long-poll window.
    pub fn connect_tcp_with_timeout(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        if !read_timeout.is_zero() {
            stream.set_read_timeout(Some(read_timeout))?;
        }
        let read = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(Box::new(read)), writer: Box::new(stream) })
    }

    /// One request/response round trip.
    fn request(&mut self, req: &Request) -> Result<Value, ClientError> {
        let line =
            serde_json::to_string(&request_to_json(req)).expect("serialization is infallible");
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        if self.reader.read_line(&mut response)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let v = serde_json::from_str(response.trim_end())
            .map_err(|e| ClientError::Protocol(format!("bad response json: {e}")))?;
        match v.get("ok").and_then(Value::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let msg =
                    v.get("error").and_then(Value::as_str).unwrap_or("unspecified").to_string();
                Err(match v.get("code").and_then(Value::as_str) {
                    Some(ERR_OVERLOADED) => ClientError::Overloaded(msg),
                    Some(ERR_SHUTTING_DOWN) => ClientError::ShuttingDown(msg),
                    Some(ERR_UNAUTHORIZED) => ClientError::Unauthorized(msg),
                    Some(ERR_NOT_PRIMARY) => ClientError::NotPrimary(msg),
                    Some(ERR_STALE_REPLICA) => ClientError::StaleReplica(msg),
                    _ => ClientError::Server(msg),
                })
            }
            None => Err(ClientError::Protocol("response missing \"ok\"".to_string())),
        }
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping).map(|_| ())
    }

    /// Submits a job under the default (anonymous, `Batch`) identity;
    /// returns its daemon-assigned id immediately.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<JobId, ClientError> {
        self.submit_as(spec, "", Priority::Batch)
    }

    /// Submits a job with an explicit tenant identity and priority class.
    /// The daemon enforces per-tenant quotas against `tenant` and admits
    /// `Priority::Interactive` jobs into every round regardless of the
    /// batch backlog. Shed submissions fail with
    /// [`ClientError::Overloaded`].
    pub fn submit_as(
        &mut self,
        spec: &JobSpec,
        tenant: &str,
        priority: Priority,
    ) -> Result<JobId, ClientError> {
        let v =
            self.request(&Request::Submit { spec: *spec, tenant: tenant.to_string(), priority })?;
        v.get("job_id")
            .and_then(Value::as_u64)
            .map(|id| id as JobId)
            .ok_or_else(|| ClientError::Protocol("submit ack missing job_id".to_string()))
    }

    /// Point-in-time daemon health: lease state, served generation,
    /// queue depth, resident bytes, uptime. Cheap enough for readiness
    /// polling.
    pub fn health(&mut self) -> Result<HealthReport, ClientError> {
        let v = self.request(&Request::Health)?;
        let h =
            v.get("health").ok_or_else(|| ClientError::Protocol("missing health".to_string()))?;
        HealthReport::from_json(h).map_err(ClientError::Protocol)
    }

    /// Non-blocking lifecycle query.
    pub fn status(&mut self, id: JobId) -> Result<JobState, ClientError> {
        let v = self.request(&Request::Status(id))?;
        v.get("state")
            .and_then(Value::as_str)
            .and_then(JobState::from_name)
            .ok_or_else(|| ClientError::Protocol("status missing state".to_string()))
    }

    /// Blocks until job `id` finishes; returns its full report.
    pub fn wait(&mut self, id: JobId) -> Result<JobReport, ClientError> {
        let v = self.request(&Request::Wait(id))?;
        let report = v
            .get("report")
            .ok_or_else(|| ClientError::Protocol("wait response missing report".to_string()))?;
        report_from_json(report).map_err(ClientError::Protocol)
    }

    /// Submits and waits in one call.
    pub fn run(&mut self, spec: &JobSpec) -> Result<JobReport, ClientError> {
        let id = self.submit(spec)?;
        self.wait(id)
    }

    /// Daemon-wide counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        let v = self.request(&Request::Stats)?;
        let stats =
            v.get("stats").ok_or_else(|| ClientError::Protocol("missing stats".to_string()))?;
        ServerStats::from_json(stats).map_err(ClientError::Protocol)
    }

    /// Asks the daemon to shut down (queued jobs still drain).
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }

    /// Stages mutations on this connection (ingest-enabled daemons
    /// only); returns the total staged so far.
    pub fn ingest(&mut self, ops: &[DeltaRecord]) -> Result<usize, ClientError> {
        let v = self.request(&Request::Ingest(ops.to_vec()))?;
        v.get("staged")
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| ClientError::Protocol("ingest ack missing staged".to_string()))
    }

    /// Group-commits this connection's staged mutations; blocks until
    /// the absorbing generation is durable. Returns `(generation,
    /// records_committed)`.
    pub fn ingest_commit(&mut self) -> Result<(u64, u64), ClientError> {
        let v = self.request(&Request::IngestCommit)?;
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("ingest_commit ack missing {k}")))
        };
        Ok((field("generation")?, field("records")?))
    }

    /// Drops this connection's staged mutations; returns how many were
    /// discarded.
    pub fn ingest_abort(&mut self) -> Result<usize, ClientError> {
        let v = self.request(&Request::IngestAbort)?;
        v.get("discarded")
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| ClientError::Protocol("ingest_abort ack missing discarded".to_string()))
    }

    /// Presents the shared secret. Must be the first request on a TCP
    /// connection to a daemon started with `--auth-token`; a no-op
    /// elsewhere. A wrong token fails with
    /// [`ClientError::Unauthorized`] (the connection stays open for a
    /// retry).
    pub fn auth(&mut self, token: &str) -> Result<(), ClientError> {
        self.request(&Request::Auth { token: token.to_string() }).map(|_| ())
    }

    /// Subscribes this connection as a replication follower starting at
    /// `from_generation`; returns the server's `(generation, epoch)`
    /// high-water.
    pub fn repl_subscribe(&mut self, from_generation: u64) -> Result<(u64, u64), ClientError> {
        let v = self.request(&Request::ReplSubscribe { from_generation })?;
        let field = |k: &str| {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| ClientError::Protocol(format!("repl_subscribe ack missing {k}")))
        };
        Ok((field("generation")?, field("epoch")?))
    }

    /// Long-polls for up to `max` replication frames starting at
    /// `from_generation` (implicitly acking everything below it).
    /// Returns the server's published high-water and the decoded frame
    /// bytes — possibly empty when the poll timed out with nothing new.
    pub fn repl_frames(
        &mut self,
        from_generation: u64,
        max: u64,
    ) -> Result<(u64, Vec<Vec<u8>>), ClientError> {
        let v = self.request(&Request::ReplFrames { from_generation, max })?;
        let generation = v.get("generation").and_then(Value::as_u64).ok_or_else(|| {
            ClientError::Protocol("repl_frames ack missing generation".to_string())
        })?;
        let hexes = v
            .get("frames")
            .and_then(Value::as_array)
            .ok_or_else(|| ClientError::Protocol("repl_frames ack missing frames".to_string()))?;
        let mut frames = Vec::with_capacity(hexes.len());
        for h in hexes {
            let s =
                h.as_str().ok_or_else(|| ClientError::Protocol("non-string frame".to_string()))?;
            frames.push(hex_decode(s).map_err(ClientError::Protocol)?);
        }
        Ok((generation, frames))
    }

    /// The daemon's replication ledger (role, shipped/acked counters,
    /// follower count, reconnects) as raw JSON.
    pub fn repl_status(&mut self) -> Result<Value, ClientError> {
        let v = self.request(&Request::ReplStatus)?;
        v.get("repl")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("repl_status ack missing repl".to_string()))
    }

    /// Promotes a follower daemon to primary through the store's epoch
    /// fence; returns the new lease epoch.
    pub fn promote(&mut self) -> Result<u64, ClientError> {
        let v = self.request(&Request::Promote)?;
        v.get("epoch")
            .and_then(Value::as_u64)
            .ok_or_else(|| ClientError::Protocol("promote ack missing epoch".to_string()))
    }
}

/// SplitMix64 step: the cheap deterministic stream behind
/// [`retry_delay`] jitter (and `graphm-client ingest-random`).
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Full-jitter exponential backoff: uniform over `[base/2, base]` where
/// `base = backoff_ms * 2^attempt` (exponent capped at 10), so a burst
/// of shed clients — or a fleet of followers reconnecting to a dead
/// primary — doesn't retry in lockstep.
pub fn retry_delay(backoff_ms: u64, attempt: u32, rng: &mut u64) -> Duration {
    let base = backoff_ms.max(1).saturating_mul(1u64 << attempt.min(10));
    let half = base / 2;
    Duration::from_millis(half + splitmix(rng) % (base - half + 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_delay_stays_in_the_jitter_window() {
        let mut rng = 42u64;
        for attempt in 0..12u32 {
            let base = 50u64.saturating_mul(1 << attempt.min(10));
            for _ in 0..32 {
                let d = retry_delay(50, attempt, &mut rng).as_millis() as u64;
                assert!(d >= base / 2 && d <= base, "attempt {attempt}: {d} not in window");
            }
        }
    }
}
