//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, over a unix-domain or TCP
//! stream. Requests are objects with a `cmd` member:
//!
//! | request | response |
//! |---------|----------|
//! | `{"cmd":"ping"}` | `{"ok":true,"pong":true}` |
//! | `{"cmd":"submit","algo":"pagerank","damping":0.85,"root":0,"max_iters":30}` | `{"ok":true,"job_id":N}` |
//! | `{"cmd":"status","job_id":N}` | `{"ok":true,"job_id":N,"state":"queued"\|"running"\|"done"}` |
//! | `{"cmd":"wait","job_id":N}` | `{"ok":true,"job_id":N,"state":"done","report":{...}}` |
//! | `{"cmd":"stats"}` | `{"ok":true,"stats":{...}}` |
//! | `{"cmd":"shutdown"}` | `{"ok":true,"shutting_down":true}` |
//! | `{"cmd":"ingest","ops":[{"op":"insert","src":1,"dst":2,"weight":1.0},{"op":"delete","src":3,"dst":4}]}` | `{"ok":true,"staged":N}` |
//! | `{"cmd":"ingest_commit"}` | `{"ok":true,"generation":G,"records":N,"group":K}` |
//! | `{"cmd":"ingest_abort"}` | `{"ok":true,"discarded":N}` |
//! | `{"cmd":"health"}` | `{"ok":true,"health":{...}}` |
//! | `{"cmd":"auth","token":"..."}` | `{"ok":true,"authenticated":true}` |
//! | `{"cmd":"repl_subscribe","from_generation":G}` | `{"ok":true,"generation":N,"epoch":E}` |
//! | `{"cmd":"repl_frames","from_generation":G,"max":K}` | `{"ok":true,"generation":N,"frames":["<hex>",...]}` |
//! | `{"cmd":"repl_status"}` | `{"ok":true,"repl":{...}}` |
//! | `{"cmd":"promote"}` | `{"ok":true,"role":"primary","epoch":E}` |
//!
//! `submit` additionally accepts optional `tenant` (string identity the
//! daemon applies per-tenant admission quotas to; defaults to the
//! anonymous tenant `""`) and `priority` (`"interactive"` \| `"batch"`,
//! default `"batch"` — see [`Priority`]).
//!
//! Failures answer `{"ok":false,"error":"..."}` and keep the connection
//! open; only `shutdown`, EOF, or a transport error end it. Overload and
//! lifecycle rejections additionally carry a machine-readable `"code"`
//! member ([`ERR_OVERLOADED`], [`ERR_SHUTTING_DOWN`],
//! [`ERR_LINE_TOO_LONG`], [`ERR_UNAUTHORIZED`], [`ERR_NOT_PRIMARY`],
//! [`ERR_STALE_REPLICA`]) so clients can distinguish "retry later" from
//! "bad request" without parsing prose.
//!
//! ## Replication and roles
//!
//! `repl_subscribe` / `repl_frames` exist on primaries (ingest-enabled
//! daemons): a follower subscribes, then pulls committed generation
//! frames — hex-encoded [`graphm_store::replica`] binary frames — in
//! order. Followers answer write verbs (`ingest*`) and the replication
//! source verbs with a typed [`ERR_NOT_PRIMARY`] redirect naming their
//! primary; `promote` turns a follower into a primary through the
//! writer-lease epoch fence. Daemons started with `--auth-token` demand
//! an `auth` verb before anything else on TCP connections
//! ([`ERR_UNAUTHORIZED`] otherwise); unix-socket peers are identified by
//! `SO_PEERCRED` instead.
//!
//! ## Ingest sessions
//!
//! `ingest` verbs exist only on daemons started with ingest enabled (the
//! daemon then holds the store's writer lease). Mutations accumulate
//! per-connection with `ingest`; `ingest_commit` hands the staged batch
//! to the group-commit coordinator, which merges concurrently committing
//! connections into one WAL append + one published generation, and
//! blocks until that generation is durable. `ingest_abort` drops the
//! staged batch. The connection's stage is empty after either.
//!
//! ## Exactness
//!
//! A serialized [`JobReport`] decodes back to the *same bits*: numbers use
//! Rust's shortest-round-trip formatting, and the one thing JSON cannot
//! carry — non-finite vertex values (BFS/SSSP report unreached vertices as
//! `+inf`) — is encoded as the strings `"inf"` / `"-inf"` / `"nan"`
//! (NaN decodes to the canonical `f64::NAN`; no shipped algorithm emits
//! NaN). This is what lets the end-to-end test demand bit-identical
//! reports between socket-submitted and in-process jobs.

use graphm_cachesim::VirtualClock;
use graphm_core::{JobId, JobReport};
use graphm_graph::delta::{DeltaRecord, DELTA_OP_DELETE, DELTA_OP_INSERT};
use graphm_workloads::{AlgoKind, JobSpec};
use serde_json::{json, Value};

/// Machine-readable error code: the daemon shed the request because a
/// queue, quota, or connection limit is at capacity. Retry with backoff.
pub const ERR_OVERLOADED: &str = "overloaded";
/// Machine-readable error code: the daemon is draining for shutdown and
/// admits no new work.
pub const ERR_SHUTTING_DOWN: &str = "shutting_down";
/// Machine-readable error code: the request line exceeded the daemon's
/// line cap and was discarded unparsed.
pub const ERR_LINE_TOO_LONG: &str = "line_too_long";
/// Machine-readable error code: the connection has not authenticated
/// (daemons started with `--auth-token` require an `auth` verb first on
/// TCP) or presented a wrong token.
pub const ERR_UNAUTHORIZED: &str = "unauthorized";
/// Machine-readable error code: a write/replication-source verb reached
/// a follower. The error message names the current primary (`peer`);
/// clients should redirect there and retry with backoff.
pub const ERR_NOT_PRIMARY: &str = "not_primary";
/// Machine-readable error code: a follower refused a read because its
/// replica lag exceeds the `--max-replica-lag` staleness bound.
pub const ERR_STALE_REPLICA: &str = "stale_replica";

/// Priority class of a submission, wired into the daemon's round-size
/// policy: `Interactive` jobs join every round, while the number of
/// `Batch` jobs admitted per round can be capped
/// (`ServerConfig::max_batch_per_round`) so a latency-sensitive tenant is
/// never stuck behind a hundred-job batch, and `Batch` submissions are
/// shed first under eviction pressure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive: admitted to every round, never shed by the
    /// eviction-pressure signal.
    Interactive,
    /// Throughput work (the default): round admission may be capped and
    /// overload sheds these first.
    #[default]
    Batch,
}

impl Priority {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

/// A parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness / banner check.
    Ping,
    /// Submit a job; answered with its id immediately (the job runs in a
    /// later sharing round). Carries the submitting tenant's identity
    /// (`""` = anonymous) and priority class for admission control.
    Submit { spec: JobSpec, tenant: String, priority: Priority },
    /// Non-blocking lifecycle query.
    Status(JobId),
    /// Block until the job finishes; answered with its report.
    Wait(JobId),
    /// Daemon-wide counters.
    Stats,
    /// Stop accepting work and exit once the queue drains.
    Shutdown,
    /// Stage mutations on this connection (ingest-enabled daemons only).
    Ingest(Vec<DeltaRecord>),
    /// Group-commit this connection's staged mutations; blocks until the
    /// resulting generation is durable.
    IngestCommit,
    /// Drop this connection's staged mutations.
    IngestAbort,
    /// Readiness/health probe: lease state, served generation, queue
    /// depth, residency, uptime. Never blocks on the runtime.
    Health,
    /// Authenticates this connection against the daemon's shared secret
    /// (`--auth-token`). Must be the first verb on TCP when a token is
    /// configured.
    Auth { token: String },
    /// Registers this connection as a replication follower, declaring
    /// the generation it already has. Answered with the primary's
    /// current generation and lease epoch.
    ReplSubscribe { from_generation: u64 },
    /// Pulls committed replication frames for generations
    /// `(from_generation, from_generation + max]`. Long-polls briefly
    /// when the follower is already caught up. Requesting from
    /// generation G acknowledges everything at or below G.
    ReplFrames { from_generation: u64, max: u64 },
    /// Replication status snapshot: role, peer, lag, frames
    /// shipped/acked, follower count, reconnect storms.
    ReplStatus,
    /// Promotes a follower to primary: stops tailing, fences its own
    /// writer lease at `epoch + 1`, and enables ingest.
    Promote,
}

/// Lifecycle of a submitted job, as reported by `status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for its sharing round.
    Queued,
    /// Participating in sweeps.
    Running,
    /// Finished; report available via `wait`.
    Done,
}

impl JobState {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }

    /// Parses a wire name.
    pub fn from_name(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            _ => None,
        }
    }
}

/// The `health` response payload: a cheap readiness probe that never
/// blocks on the runtime thread (smokes poll it instead of sleeping).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HealthReport {
    /// 1 when the daemon holds the store's writer lease (ingest enabled).
    pub lease_held: bool,
    /// Epoch of the held lease (0 without a lease).
    pub lease_epoch: u64,
    /// Data generation currently served.
    pub generation: u64,
    /// Submissions queued but not yet drained into a round.
    pub queue_depth: u64,
    /// Jobs currently running in the active round.
    pub running: u64,
    /// Store segment bytes modeled as page-cache resident.
    pub resident_bytes: u64,
    /// Milliseconds since the daemon started serving.
    pub uptime_ms: u64,
    /// Whether a shutdown has been requested (draining).
    pub shutting_down: bool,
    /// `"primary"` or `"follower"`.
    pub role: String,
    /// Generations the follower is behind the primary (0 on a primary).
    pub replica_lag_generations: u64,
    /// The replication peer: the primary a follower tails (empty on a
    /// primary).
    pub peer: String,
}

impl HealthReport {
    /// Serializes to the `health` response payload.
    pub fn to_json(&self) -> Value {
        json!({
            "lease_held": u64::from(self.lease_held),
            "lease_epoch": self.lease_epoch,
            "generation": self.generation,
            "queue_depth": self.queue_depth,
            "running": self.running,
            "resident_bytes": self.resident_bytes,
            "uptime_ms": self.uptime_ms,
            "shutting_down": self.shutting_down,
            "role": self.role.as_str(),
            "replica_lag_generations": self.replica_lag_generations,
            "peer": self.peer.as_str(),
        })
    }

    /// Decodes a `health` response payload.
    pub fn from_json(v: &Value) -> Result<HealthReport, String> {
        let u = |k: &str| v.get(k).and_then(Value::as_u64).unwrap_or(0);
        if v.get("generation").is_none() || v.get("uptime_ms").is_none() {
            return Err("health payload missing generation/uptime_ms".to_string());
        }
        Ok(HealthReport {
            lease_held: u("lease_held") != 0,
            lease_epoch: u("lease_epoch"),
            generation: u("generation"),
            queue_depth: u("queue_depth"),
            running: u("running"),
            resident_bytes: u("resident_bytes"),
            uptime_ms: u("uptime_ms"),
            shutting_down: v.get("shutting_down").and_then(Value::as_bool).unwrap_or(false),
            // Replication fields postdate the first release; an older
            // daemon is a primary with no peer.
            role: v.get("role").and_then(Value::as_str).unwrap_or("primary").to_string(),
            replica_lag_generations: u("replica_lag_generations"),
            peer: v.get("peer").and_then(Value::as_str).unwrap_or("").to_string(),
        })
    }
}

/// Daemon-wide counters returned by `stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ServerStats {
    /// Jobs accepted over the daemon's lifetime.
    pub jobs_submitted: u64,
    /// Jobs finished (reports published).
    pub jobs_completed: u64,
    /// Sharing rounds the runtime thread has completed.
    pub rounds: u64,
    /// Shared partition loads performed by the runtime — one per
    /// `(sweep, partition)` with interested jobs, *not* one per job. The
    /// gap to `jobs × partitions × iterations` is the sharing win.
    pub partition_loads: u64,
    /// Partitions in the served store.
    pub num_partitions: u64,
    /// Vertices in the served store.
    pub num_vertices: u64,
    /// Formula-1 chunk size the service preprocessed with.
    pub chunk_bytes: u64,
    /// Readahead hints issued by the wallclock-mode prefetcher
    /// (deterministic mode performs no prefetch and reports 0).
    pub prefetch_issued: u64,
    /// Partition loads that found their segment already advised — the
    /// prefetcher ran ahead of the sweep.
    pub prefetch_hits: u64,
    /// Current adaptive prefetch window depth (readahead partitions in
    /// flight per announcement).
    pub prefetch_window: u64,
    /// Store segment bytes currently modeled as page-cache resident.
    pub resident_bytes: u64,
    /// Segment bytes released behind the sweep frontier
    /// (`madvise(MADV_DONTNEED)`) to honour the memory budget.
    pub evicted_bytes: u64,
    /// Partition evictions performed so far.
    pub evictions: u64,
    /// Configured page-cache budget in bytes (0 = unlimited).
    pub memory_budget_bytes: u64,
    /// Data generation the daemon currently serves (0 = the bare base
    /// store; delta publishes rotate it between rounds).
    pub generation: u64,
    /// Generation rotations adopted since the daemon opened the store.
    pub generation_rotations: u64,
    /// Delta payload bytes overlaid on the base this generation.
    pub delta_bytes: u64,
    /// Mutation records overlaid on the base this generation.
    pub delta_records: u64,
    /// Cumulative compactions folded into the served store's base.
    pub compactions: u64,
    /// Current virtual time of the runtime's clock (wall nanoseconds
    /// since runtime start in wallclock mode).
    pub virtual_ns: f64,
    /// Mutation records appended to the ingest writer's write-ahead log
    /// (0 when ingest is disabled).
    pub delta_wal_records: u64,
    /// Batches (WAL frames) appended by the ingest writer.
    pub delta_wal_batches: u64,
    /// fsyncs the ingest WAL issued — `delta_wal_batches` per
    /// `delta_wal_syncs` is the group-commit amortization.
    pub delta_wal_syncs: u64,
    /// Frame bytes appended to the ingest WAL.
    pub delta_wal_bytes: u64,
    /// Epoch of the writer lease the daemon holds (0 = no lease: ingest
    /// disabled).
    pub lease_epoch: u64,
    /// 1 when the daemon holds the store's writer lease.
    pub lease_held: u64,
    /// Client commits applied through ingest sessions.
    pub ingest_commits: u64,
    /// Commit groups published (≤ `ingest_commits`; the gap is the
    /// group-commit win).
    pub ingest_groups: u64,
    /// Submissions rejected by admission control (queue full, tenant
    /// quota, eviction pressure) with an `overloaded` error.
    pub jobs_shed: u64,
    /// Jobs that finished with an error report (injected or real read
    /// faults, panicking kernels) instead of converging.
    pub jobs_failed: u64,
    /// Connections refused at accept because the connection limit was
    /// reached.
    pub connections_rejected: u64,
    /// Request lines discarded for exceeding the line cap.
    pub oversized_lines: u64,
    /// Submissions queued but not yet drained (gauge, sampled at the last
    /// queue transition).
    pub queue_depth: u64,
    /// EWMA of store partition evictions per round — the out-of-core
    /// admission signal: past `ServerConfig::shed_eviction_rate`, batch
    /// submissions are shed.
    pub eviction_rate: f64,
    /// Replication frames shipped to followers (live or catch-up).
    pub repl_frames_shipped: u64,
    /// Generations followers have acknowledged (a follower's next
    /// `repl_frames` request acks everything below its start).
    pub repl_frames_acked: u64,
    /// Follower connections currently subscribed.
    pub repl_followers: u64,
    /// Follower-side reconnect attempts to the primary (gauge of retry
    /// storms; 0 on a primary).
    pub repl_reconnects: u64,
    /// Connections that failed the shared-secret handshake.
    pub auth_failures: u64,
}

impl ServerStats {
    /// Serializes to the `stats` response payload.
    pub fn to_json(&self) -> Value {
        json!({
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "rounds": self.rounds,
            "partition_loads": self.partition_loads,
            "num_partitions": self.num_partitions,
            "num_vertices": self.num_vertices,
            "chunk_bytes": self.chunk_bytes,
            "prefetch_issued": self.prefetch_issued,
            "prefetch_hits": self.prefetch_hits,
            "prefetch_window": self.prefetch_window,
            "resident_bytes": self.resident_bytes,
            "evicted_bytes": self.evicted_bytes,
            "evictions": self.evictions,
            "memory_budget_bytes": self.memory_budget_bytes,
            "generation": self.generation,
            "generation_rotations": self.generation_rotations,
            "delta_bytes": self.delta_bytes,
            "delta_records": self.delta_records,
            "compactions": self.compactions,
            "virtual_ns": self.virtual_ns,
            "delta_wal_records": self.delta_wal_records,
            "delta_wal_batches": self.delta_wal_batches,
            "delta_wal_syncs": self.delta_wal_syncs,
            "delta_wal_bytes": self.delta_wal_bytes,
            "lease_epoch": self.lease_epoch,
            "lease_held": self.lease_held,
            "ingest_commits": self.ingest_commits,
            "ingest_groups": self.ingest_groups,
            "jobs_shed": self.jobs_shed,
            "jobs_failed": self.jobs_failed,
            "connections_rejected": self.connections_rejected,
            "oversized_lines": self.oversized_lines,
            "queue_depth": self.queue_depth,
            "eviction_rate": self.eviction_rate,
            "repl_frames_shipped": self.repl_frames_shipped,
            "repl_frames_acked": self.repl_frames_acked,
            "repl_followers": self.repl_followers,
            "repl_reconnects": self.repl_reconnects,
            "auth_failures": self.auth_failures,
        })
    }

    /// Decodes a `stats` response payload.
    pub fn from_json(v: &Value) -> Result<ServerStats, String> {
        let u = |k: &str| {
            v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("stats missing u64 {k:?}"))
        };
        Ok(ServerStats {
            jobs_submitted: u("jobs_submitted")?,
            jobs_completed: u("jobs_completed")?,
            rounds: u("rounds")?,
            partition_loads: u("partition_loads")?,
            num_partitions: u("num_partitions")?,
            num_vertices: u("num_vertices")?,
            chunk_bytes: u("chunk_bytes")?,
            // Added after the first daemon release; default to 0 so a new
            // client can still read stats from an older daemon.
            prefetch_issued: v.get("prefetch_issued").and_then(Value::as_u64).unwrap_or(0),
            prefetch_hits: v.get("prefetch_hits").and_then(Value::as_u64).unwrap_or(0),
            prefetch_window: v.get("prefetch_window").and_then(Value::as_u64).unwrap_or(0),
            resident_bytes: v.get("resident_bytes").and_then(Value::as_u64).unwrap_or(0),
            evicted_bytes: v.get("evicted_bytes").and_then(Value::as_u64).unwrap_or(0),
            evictions: v.get("evictions").and_then(Value::as_u64).unwrap_or(0),
            memory_budget_bytes: v.get("memory_budget_bytes").and_then(Value::as_u64).unwrap_or(0),
            generation: v.get("generation").and_then(Value::as_u64).unwrap_or(0),
            generation_rotations: v
                .get("generation_rotations")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            delta_bytes: v.get("delta_bytes").and_then(Value::as_u64).unwrap_or(0),
            delta_records: v.get("delta_records").and_then(Value::as_u64).unwrap_or(0),
            compactions: v.get("compactions").and_then(Value::as_u64).unwrap_or(0),
            virtual_ns: v
                .get("virtual_ns")
                .and_then(Value::as_f64)
                .ok_or("stats missing virtual_ns")?,
            delta_wal_records: v.get("delta_wal_records").and_then(Value::as_u64).unwrap_or(0),
            delta_wal_batches: v.get("delta_wal_batches").and_then(Value::as_u64).unwrap_or(0),
            delta_wal_syncs: v.get("delta_wal_syncs").and_then(Value::as_u64).unwrap_or(0),
            delta_wal_bytes: v.get("delta_wal_bytes").and_then(Value::as_u64).unwrap_or(0),
            lease_epoch: v.get("lease_epoch").and_then(Value::as_u64).unwrap_or(0),
            lease_held: v.get("lease_held").and_then(Value::as_u64).unwrap_or(0),
            ingest_commits: v.get("ingest_commits").and_then(Value::as_u64).unwrap_or(0),
            ingest_groups: v.get("ingest_groups").and_then(Value::as_u64).unwrap_or(0),
            jobs_shed: v.get("jobs_shed").and_then(Value::as_u64).unwrap_or(0),
            jobs_failed: v.get("jobs_failed").and_then(Value::as_u64).unwrap_or(0),
            connections_rejected: v
                .get("connections_rejected")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            oversized_lines: v.get("oversized_lines").and_then(Value::as_u64).unwrap_or(0),
            queue_depth: v.get("queue_depth").and_then(Value::as_u64).unwrap_or(0),
            eviction_rate: v.get("eviction_rate").and_then(Value::as_f64).unwrap_or(0.0),
            repl_frames_shipped: v.get("repl_frames_shipped").and_then(Value::as_u64).unwrap_or(0),
            repl_frames_acked: v.get("repl_frames_acked").and_then(Value::as_u64).unwrap_or(0),
            repl_followers: v.get("repl_followers").and_then(Value::as_u64).unwrap_or(0),
            repl_reconnects: v.get("repl_reconnects").and_then(Value::as_u64).unwrap_or(0),
            auth_failures: v.get("auth_failures").and_then(Value::as_u64).unwrap_or(0),
        })
    }
}

/// Wire name of an algorithm family (lowercase).
pub fn algo_name(kind: AlgoKind) -> &'static str {
    match kind {
        AlgoKind::Wcc => "wcc",
        AlgoKind::PageRank => "pagerank",
        AlgoKind::Sssp => "sssp",
        AlgoKind::Bfs => "bfs",
        AlgoKind::Ppr => "ppr",
        AlgoKind::LabelProp => "labelprop",
    }
}

/// Parses a wire algorithm name.
pub fn algo_from_name(name: &str) -> Option<AlgoKind> {
    match name {
        "wcc" => Some(AlgoKind::Wcc),
        "pagerank" => Some(AlgoKind::PageRank),
        "sssp" => Some(AlgoKind::Sssp),
        "bfs" => Some(AlgoKind::Bfs),
        "ppr" => Some(AlgoKind::Ppr),
        "labelprop" => Some(AlgoKind::LabelProp),
        _ => None,
    }
}

/// Encodes one `f64` for the wire: finite values as JSON numbers
/// (shortest-round-trip, hence bit-exact), non-finite as marker strings.
pub fn f64_to_wire(v: f64) -> Value {
    if v.is_finite() {
        Value::Number(v)
    } else if v.is_nan() {
        Value::String("nan".to_string())
    } else if v > 0.0 {
        Value::String("inf".to_string())
    } else {
        Value::String("-inf".to_string())
    }
}

/// Decodes [`f64_to_wire`]'s encoding.
pub fn f64_from_wire(v: &Value) -> Result<f64, String> {
    match v {
        Value::Number(n) => Ok(*n),
        Value::String(s) => match s.as_str() {
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            "nan" => Ok(f64::NAN),
            other => Err(format!("not a wire float: {other:?}")),
        },
        other => Err(format!("not a wire float: {other}")),
    }
}

/// Serializes a job spec into `submit` parameters.
pub fn spec_to_json(spec: &JobSpec) -> Value {
    json!({
        "algo": algo_name(spec.kind),
        "damping": spec.damping,
        "root": spec.root,
        "max_iters": spec.max_iters,
    })
}

/// Decodes `submit` parameters into a spec. Only `algo` is required;
/// `damping` defaults to 0.85, `root` to 0, `max_iters` to 30.
pub fn spec_from_json(v: &Value) -> Result<JobSpec, String> {
    let algo = v.get("algo").and_then(Value::as_str).ok_or("submit needs an \"algo\" string")?;
    let kind = algo_from_name(algo).ok_or_else(|| format!("unknown algo {algo:?}"))?;
    let damping = match v.get("damping") {
        None => 0.85,
        Some(d) => d.as_f64().ok_or("damping must be a number")?,
    };
    if !(0.0..=1.0).contains(&damping) {
        return Err(format!("damping {damping} outside [0, 1]"));
    }
    let root = match v.get("root") {
        None => 0,
        Some(r) => r.as_u64().ok_or("root must be a non-negative integer")?,
    };
    let root = u32::try_from(root).map_err(|_| format!("root {root} exceeds u32"))?;
    let max_iters = match v.get("max_iters") {
        None => 30,
        Some(m) => m.as_u64().ok_or("max_iters must be a non-negative integer")? as usize,
    };
    if max_iters == 0 {
        return Err("max_iters must be at least 1".to_string());
    }
    Ok(JobSpec { kind, damping, root, max_iters })
}

/// Serializes a finished job's full report. The `error` member is
/// present only on failed jobs (absent = converged normally), so older
/// decoders keep working.
pub fn report_to_json(r: &JobReport) -> Value {
    let mut v = json!({
        "job_id": r.id,
        "name": r.name.as_str(),
        "iterations": r.iterations,
        "instructions": r.instructions,
        "edges_processed": r.edges_processed,
        "submit_ns": r.submit_ns,
        "finish_ns": r.finish_ns,
        "clock": json!({
            "compute_ns": r.clock.compute_ns,
            "mem_access_ns": r.clock.mem_access_ns,
            "disk_ns": r.clock.disk_ns,
            "sync_ns": r.clock.sync_ns,
        }),
        "values": Value::Array(r.values.iter().map(|&v| f64_to_wire(v)).collect()),
    });
    if let Some(err) = &r.error {
        if let Value::Object(map) = &mut v {
            map.insert("error".to_string(), Value::String(err.clone()));
        }
    }
    v
}

/// Decodes [`report_to_json`]'s encoding back into a [`JobReport`].
pub fn report_from_json(v: &Value) -> Result<JobReport, String> {
    let f = |k: &str| {
        v.get(k).and_then(Value::as_f64).ok_or_else(|| format!("report missing number {k:?}"))
    };
    let u = |k: &str| {
        v.get(k).and_then(Value::as_u64).ok_or_else(|| format!("report missing u64 {k:?}"))
    };
    let clock = v.get("clock").ok_or("report missing clock")?;
    let c = |k: &str| {
        clock.get(k).and_then(Value::as_f64).ok_or_else(|| format!("clock missing {k:?}"))
    };
    let values = v
        .get("values")
        .and_then(Value::as_array)
        .ok_or("report missing values array")?
        .iter()
        .map(f64_from_wire)
        .collect::<Result<Vec<f64>, String>>()?;
    Ok(JobReport {
        id: u("job_id")? as JobId,
        name: v.get("name").and_then(Value::as_str).ok_or("report missing name")?.to_string(),
        iterations: u("iterations")? as usize,
        clock: VirtualClock {
            compute_ns: c("compute_ns")?,
            mem_access_ns: c("mem_access_ns")?,
            disk_ns: c("disk_ns")?,
            sync_ns: c("sync_ns")?,
        },
        instructions: u("instructions")?,
        edges_processed: u("edges_processed")?,
        submit_ns: f("submit_ns")?,
        finish_ns: f("finish_ns")?,
        values,
        error: v.get("error").and_then(Value::as_str).map(str::to_string),
    })
}

/// Serializes mutation records into `ingest` `ops`.
pub fn ops_to_json(ops: &[DeltaRecord]) -> Value {
    Value::Array(
        ops.iter()
            .map(|r| {
                if r.op == DELTA_OP_DELETE {
                    json!({ "op": "delete", "src": r.src, "dst": r.dst })
                } else {
                    json!({ "op": "insert", "src": r.src, "dst": r.dst,
                            "weight": f64::from(r.weight) })
                }
            })
            .collect(),
    )
}

/// Decodes `ingest` `ops` into mutation records. Weights default to 1.0
/// on insert; deletes ignore them.
pub fn ops_from_json(v: &Value) -> Result<Vec<DeltaRecord>, String> {
    let arr = v.as_array().ok_or("ingest needs an \"ops\" array")?;
    let mut out = Vec::with_capacity(arr.len());
    for (i, op) in arr.iter().enumerate() {
        let vertex = |k: &str| -> Result<u32, String> {
            let raw = op
                .get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("ops[{i}] needs a non-negative \"{k}\""))?;
            u32::try_from(raw).map_err(|_| format!("ops[{i}].{k} {raw} exceeds u32"))
        };
        let kind = op.get("op").and_then(Value::as_str).unwrap_or("insert");
        let (src, dst) = (vertex("src")?, vertex("dst")?);
        out.push(match kind {
            "insert" => {
                let weight = match op.get("weight") {
                    None => 1.0,
                    Some(w) => {
                        w.as_f64().ok_or_else(|| format!("ops[{i}].weight must be a number"))?
                            as f32
                    }
                };
                if !weight.is_finite() {
                    return Err(format!("ops[{i}].weight must be finite"));
                }
                DeltaRecord { src, dst, weight, op: DELTA_OP_INSERT }
            }
            "delete" => DeltaRecord::delete(src, dst),
            other => return Err(format!("ops[{i}].op {other:?} (expected insert|delete)")),
        });
    }
    Ok(out)
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = serde_json::from_str(line).map_err(|e| format!("bad json: {e}"))?;
    let cmd = v.get("cmd").and_then(Value::as_str).ok_or("request needs a \"cmd\" string")?;
    let job_id = || {
        v.get("job_id")
            .and_then(Value::as_u64)
            .map(|id| id as JobId)
            .ok_or_else(|| format!("{cmd} needs a \"job_id\""))
    };
    match cmd {
        "ping" => Ok(Request::Ping),
        "submit" => {
            let tenant = match v.get("tenant") {
                None => String::new(),
                Some(t) => t.as_str().ok_or("tenant must be a string")?.to_string(),
            };
            if tenant.len() > 256 {
                return Err("tenant name exceeds 256 bytes".to_string());
            }
            let priority = match v.get("priority") {
                None => Priority::default(),
                Some(p) => {
                    let name = p.as_str().ok_or("priority must be a string")?;
                    Priority::from_name(name).ok_or_else(|| format!("unknown priority {name:?}"))?
                }
            };
            Ok(Request::Submit { spec: spec_from_json(&v)?, tenant, priority })
        }
        "status" => Ok(Request::Status(job_id()?)),
        "wait" => Ok(Request::Wait(job_id()?)),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        "ingest" => {
            Ok(Request::Ingest(ops_from_json(v.get("ops").ok_or("ingest needs \"ops\"")?)?))
        }
        "ingest_commit" => Ok(Request::IngestCommit),
        "ingest_abort" => Ok(Request::IngestAbort),
        "health" => Ok(Request::Health),
        "auth" => {
            let token =
                v.get("token").and_then(Value::as_str).ok_or("auth needs a \"token\" string")?;
            if token.len() > 1024 {
                return Err("auth token exceeds 1024 bytes".to_string());
            }
            Ok(Request::Auth { token: token.to_string() })
        }
        "repl_subscribe" => {
            let from = v
                .get("from_generation")
                .and_then(Value::as_u64)
                .ok_or("repl_subscribe needs a \"from_generation\"")?;
            Ok(Request::ReplSubscribe { from_generation: from })
        }
        "repl_frames" => {
            let from = v
                .get("from_generation")
                .and_then(Value::as_u64)
                .ok_or("repl_frames needs a \"from_generation\"")?;
            let max = v.get("max").and_then(Value::as_u64).unwrap_or(16).clamp(1, 1024);
            Ok(Request::ReplFrames { from_generation: from, max })
        }
        "repl_status" => Ok(Request::ReplStatus),
        "promote" => Ok(Request::Promote),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// Serializes a request (the client side of [`parse_request`]).
pub fn request_to_json(req: &Request) -> Value {
    match req {
        Request::Ping => json!({ "cmd": "ping" }),
        Request::Submit { spec, tenant, priority } => {
            let mut v = spec_to_json(spec);
            if let Value::Object(map) = &mut v {
                map.insert("cmd".to_string(), Value::String("submit".to_string()));
                if !tenant.is_empty() {
                    map.insert("tenant".to_string(), Value::String(tenant.clone()));
                }
                if *priority != Priority::default() {
                    map.insert("priority".to_string(), Value::String(priority.name().to_string()));
                }
            }
            v
        }
        Request::Status(id) => json!({ "cmd": "status", "job_id": *id }),
        Request::Wait(id) => json!({ "cmd": "wait", "job_id": *id }),
        Request::Stats => json!({ "cmd": "stats" }),
        Request::Shutdown => json!({ "cmd": "shutdown" }),
        Request::Ingest(ops) => json!({ "cmd": "ingest", "ops": ops_to_json(ops) }),
        Request::IngestCommit => json!({ "cmd": "ingest_commit" }),
        Request::IngestAbort => json!({ "cmd": "ingest_abort" }),
        Request::Health => json!({ "cmd": "health" }),
        Request::Auth { token } => json!({ "cmd": "auth", "token": token.as_str() }),
        Request::ReplSubscribe { from_generation } => {
            json!({ "cmd": "repl_subscribe", "from_generation": *from_generation })
        }
        Request::ReplFrames { from_generation, max } => {
            json!({ "cmd": "repl_frames", "from_generation": *from_generation, "max": *max })
        }
        Request::ReplStatus => json!({ "cmd": "repl_status" }),
        Request::Promote => json!({ "cmd": "promote" }),
    }
}

/// An `{"ok":false,...}` error response.
pub fn error_response(msg: &str) -> Value {
    json!({ "ok": false, "error": msg })
}

/// An `{"ok":false,...}` error response with a machine-readable `code`
/// ([`ERR_OVERLOADED`], [`ERR_SHUTTING_DOWN`], [`ERR_LINE_TOO_LONG`]).
pub fn error_response_coded(msg: &str, code: &str) -> Value {
    json!({ "ok": false, "error": msg, "code": code })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for (line, expect) in [
            (r#"{"cmd":"ping"}"#, "Ping"),
            (r#"{"cmd":"stats"}"#, "Stats"),
            (r#"{"cmd":"shutdown"}"#, "Shutdown"),
            (r#"{"cmd":"status","job_id":3}"#, "Status(3)"),
            (r#"{"cmd":"wait","job_id":0}"#, "Wait(0)"),
        ] {
            let req = parse_request(line).unwrap();
            assert_eq!(format!("{req:?}"), expect);
            // Client encoding parses back to the same request.
            let re = parse_request(&serde_json::to_string(&request_to_json(&req)).unwrap());
            assert_eq!(format!("{:?}", re.unwrap()), expect);
        }
    }

    #[test]
    fn submit_spec_round_trips_with_defaults() {
        let req = parse_request(r#"{"cmd":"submit","algo":"pagerank","damping":0.5}"#).unwrap();
        let Request::Submit { spec, tenant, priority } = req else { panic!("not a submit") };
        assert_eq!(spec.kind, AlgoKind::PageRank);
        assert_eq!(spec.damping, 0.5);
        assert_eq!(spec.root, 0);
        assert_eq!(spec.max_iters, 30);
        assert_eq!(tenant, "", "tenant defaults to anonymous");
        assert_eq!(priority, Priority::Batch, "priority defaults to batch");

        let spec2 = JobSpec { kind: AlgoKind::Sssp, damping: 0.2, root: 77, max_iters: 9 };
        let back = spec_from_json(&spec_to_json(&spec2)).unwrap();
        assert_eq!(back.kind, spec2.kind);
        assert_eq!(back.damping.to_bits(), spec2.damping.to_bits());
        assert_eq!(back.root, spec2.root);
        assert_eq!(back.max_iters, spec2.max_iters);
    }

    #[test]
    fn submit_tenant_and_priority_round_trip() {
        let req = parse_request(
            r#"{"cmd":"submit","algo":"bfs","root":3,"tenant":"svc-a","priority":"interactive"}"#,
        )
        .unwrap();
        let Request::Submit { tenant, priority, .. } = &req else { panic!("not a submit") };
        assert_eq!(tenant, "svc-a");
        assert_eq!(*priority, Priority::Interactive);
        // Client encoding carries them back.
        let line = serde_json::to_string(&request_to_json(&req)).unwrap();
        let Request::Submit { tenant, priority, spec } = parse_request(&line).unwrap() else {
            panic!("not a submit")
        };
        assert_eq!(tenant, "svc-a");
        assert_eq!(priority, Priority::Interactive);
        assert_eq!(spec.root, 3);
        // Bad values are typed parse errors.
        for line in [
            r#"{"cmd":"submit","algo":"bfs","priority":"urgent"}"#,
            r#"{"cmd":"submit","algo":"bfs","priority":7}"#,
            r#"{"cmd":"submit","algo":"bfs","tenant":42}"#,
        ] {
            assert!(parse_request(line).is_err(), "accepted {line}");
        }
        for p in [Priority::Interactive, Priority::Batch] {
            assert_eq!(Priority::from_name(p.name()), Some(p));
        }
    }

    #[test]
    fn health_and_coded_errors_round_trip() {
        assert!(matches!(parse_request(r#"{"cmd":"health"}"#), Ok(Request::Health)));
        let line = serde_json::to_string(&request_to_json(&Request::Health)).unwrap();
        assert!(matches!(parse_request(&line), Ok(Request::Health)));
        let h = HealthReport {
            lease_held: true,
            lease_epoch: 3,
            generation: 7,
            queue_depth: 12,
            running: 4,
            resident_bytes: 1 << 20,
            uptime_ms: 1234,
            shutting_down: false,
            role: "follower".to_string(),
            replica_lag_generations: 2,
            peer: "tcp:127.0.0.1:7421".to_string(),
        };
        assert_eq!(HealthReport::from_json(&h.to_json()).unwrap(), h);
        // A pre-replication payload decodes as a peerless primary.
        let old = serde_json::json!({ "generation": 1, "uptime_ms": 5 });
        let back = HealthReport::from_json(&old).unwrap();
        assert_eq!(back.role, "primary");
        assert_eq!(back.replica_lag_generations, 0);
        assert_eq!(back.peer, "");
        let e = error_response_coded("queue full", ERR_OVERLOADED);
        assert_eq!(e.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(e.get("code").and_then(Value::as_str), Some(ERR_OVERLOADED));
        assert_eq!(error_response("plain").get("code"), None);
    }

    #[test]
    fn submit_rejects_bad_parameters() {
        for line in [
            r#"{"cmd":"submit"}"#,
            r#"{"cmd":"submit","algo":"quicksort"}"#,
            r#"{"cmd":"submit","algo":"pagerank","damping":1.5}"#,
            r#"{"cmd":"submit","algo":"bfs","root":-1}"#,
            r#"{"cmd":"submit","algo":"bfs","root":4294967296}"#,
            r#"{"cmd":"submit","algo":"wcc","max_iters":0}"#,
            r#"{"cmd":"nope"}"#,
            r#"not json"#,
        ] {
            assert!(parse_request(line).is_err(), "accepted {line}");
        }
    }

    #[test]
    fn all_algo_names_round_trip() {
        for kind in [
            AlgoKind::Wcc,
            AlgoKind::PageRank,
            AlgoKind::Sssp,
            AlgoKind::Bfs,
            AlgoKind::Ppr,
            AlgoKind::LabelProp,
        ] {
            assert_eq!(algo_from_name(algo_name(kind)), Some(kind));
        }
        assert_eq!(algo_from_name("dijkstra"), None);
    }

    #[test]
    fn report_round_trips_bit_exactly() {
        let report = JobReport {
            id: 5,
            name: "SSSP".to_string(),
            iterations: 12,
            clock: VirtualClock {
                compute_ns: 1.0 / 3.0,
                mem_access_ns: 0.1 + 0.2,
                disk_ns: 1e9,
                sync_ns: 0.0,
            },
            instructions: 123_456_789,
            edges_processed: 42,
            submit_ns: 17.25,
            finish_ns: 1e12 + 0.5,
            values: vec![0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, 1.0 / 7.0],
            error: None,
        };
        let line = serde_json::to_string(&report_to_json(&report)).unwrap();
        assert!(!line.contains("error"), "completed reports omit the error member");
        let back = report_from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(back.error, None);
        // Failed reports carry the message through.
        let failed = JobReport {
            error: Some("crash injected at failpoint read:load".into()),
            ..report.clone()
        };
        let line = serde_json::to_string(&report_to_json(&failed)).unwrap();
        let back2 = report_from_json(&serde_json::from_str(&line).unwrap()).unwrap();
        assert_eq!(back2.error.as_deref(), Some("crash injected at failpoint read:load"));
        assert_eq!(back.id, report.id);
        assert_eq!(back.name, report.name);
        assert_eq!(back.iterations, report.iterations);
        assert_eq!(back.instructions, report.instructions);
        assert_eq!(back.edges_processed, report.edges_processed);
        assert_eq!(back.submit_ns.to_bits(), report.submit_ns.to_bits());
        assert_eq!(back.finish_ns.to_bits(), report.finish_ns.to_bits());
        assert_eq!(back.clock.compute_ns.to_bits(), report.clock.compute_ns.to_bits());
        assert_eq!(back.clock.mem_access_ns.to_bits(), report.clock.mem_access_ns.to_bits());
        assert_eq!(back.values.len(), report.values.len());
        for (a, b) in back.values.iter().zip(&report.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn stats_round_trip() {
        let s = ServerStats {
            jobs_submitted: 8,
            jobs_completed: 7,
            rounds: 2,
            partition_loads: 96,
            num_partitions: 16,
            num_vertices: 600,
            chunk_bytes: 4096,
            prefetch_issued: 12,
            prefetch_hits: 9,
            prefetch_window: 5,
            resident_bytes: 1 << 20,
            evicted_bytes: 3 << 19,
            evictions: 6,
            memory_budget_bytes: 2 << 20,
            generation: 3,
            generation_rotations: 2,
            delta_bytes: 4096,
            delta_records: 256,
            compactions: 1,
            virtual_ns: 1.5e9,
            delta_wal_records: 512,
            delta_wal_batches: 17,
            delta_wal_syncs: 5,
            delta_wal_bytes: 9000,
            lease_epoch: 2,
            lease_held: 1,
            ingest_commits: 21,
            ingest_groups: 6,
            jobs_shed: 4,
            jobs_failed: 2,
            connections_rejected: 3,
            oversized_lines: 1,
            queue_depth: 5,
            eviction_rate: 2.5,
            repl_frames_shipped: 11,
            repl_frames_acked: 9,
            repl_followers: 1,
            repl_reconnects: 3,
            auth_failures: 2,
        };
        let back = ServerStats::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn replication_verbs_round_trip() {
        let req = parse_request(r#"{"cmd":"auth","token":"s3cret"}"#).unwrap();
        let Request::Auth { token } = &req else { panic!("not auth") };
        assert_eq!(token, "s3cret");
        let line = serde_json::to_string(&request_to_json(&req)).unwrap();
        assert!(matches!(parse_request(&line), Ok(Request::Auth { .. })));

        let req = parse_request(r#"{"cmd":"repl_subscribe","from_generation":4}"#).unwrap();
        assert!(matches!(req, Request::ReplSubscribe { from_generation: 4 }));
        let line = serde_json::to_string(&request_to_json(&req)).unwrap();
        assert!(matches!(parse_request(&line), Ok(Request::ReplSubscribe { from_generation: 4 })));

        let req = parse_request(r#"{"cmd":"repl_frames","from_generation":2,"max":8}"#).unwrap();
        assert!(matches!(req, Request::ReplFrames { from_generation: 2, max: 8 }));
        // max defaults and is clamped into [1, 1024].
        let req = parse_request(r#"{"cmd":"repl_frames","from_generation":0}"#).unwrap();
        assert!(matches!(req, Request::ReplFrames { from_generation: 0, max: 16 }));
        let req = parse_request(r#"{"cmd":"repl_frames","from_generation":0,"max":9999}"#).unwrap();
        assert!(matches!(req, Request::ReplFrames { max: 1024, .. }));

        assert!(matches!(parse_request(r#"{"cmd":"repl_status"}"#), Ok(Request::ReplStatus)));
        assert!(matches!(parse_request(r#"{"cmd":"promote"}"#), Ok(Request::Promote)));
        for (req, cmd) in [(Request::ReplStatus, "repl_status"), (Request::Promote, "promote")] {
            let line = serde_json::to_string(&request_to_json(&req)).unwrap();
            assert!(line.contains(cmd));
        }
        // Bad inputs are typed parse errors.
        for line in [
            r#"{"cmd":"auth"}"#,
            r#"{"cmd":"auth","token":7}"#,
            r#"{"cmd":"repl_subscribe"}"#,
            r#"{"cmd":"repl_frames"}"#,
        ] {
            assert!(parse_request(line).is_err(), "accepted {line}");
        }
    }

    #[test]
    fn ingest_ops_round_trip() {
        let ops = vec![
            DeltaRecord::insert(1, 2, 0.5),
            DeltaRecord::delete(3, 4),
            DeltaRecord::insert(5, 6, 1.0),
        ];
        let back = ops_from_json(&ops_to_json(&ops)).unwrap();
        assert_eq!(back.len(), ops.len());
        for (a, b) in back.iter().zip(&ops) {
            assert_eq!((a.src, a.dst, a.op), (b.src, b.dst, b.op));
            assert_eq!(a.weight.to_bits(), b.weight.to_bits());
        }
        // Through the full request layer, including defaults.
        let req = parse_request(
            r#"{"cmd":"ingest","ops":[{"src":7,"dst":8},{"op":"delete","src":1,"dst":1}]}"#,
        )
        .unwrap();
        let Request::Ingest(ops) = req else { panic!("not an ingest") };
        assert_eq!(ops[0].op, DELTA_OP_INSERT);
        assert_eq!(ops[0].weight, 1.0, "weight defaults to 1.0");
        assert_eq!(ops[1].op, DELTA_OP_DELETE);
        let line = serde_json::to_string(&request_to_json(&Request::Ingest(ops.clone()))).unwrap();
        let Request::Ingest(back) = parse_request(&line).unwrap() else { panic!() };
        assert_eq!(back.len(), ops.len());
        assert!(matches!(parse_request(r#"{"cmd":"ingest_commit"}"#), Ok(Request::IngestCommit)));
        assert!(matches!(parse_request(r#"{"cmd":"ingest_abort"}"#), Ok(Request::IngestAbort)));
    }

    #[test]
    fn ingest_ops_reject_bad_input() {
        for line in [
            r#"{"cmd":"ingest"}"#,
            r#"{"cmd":"ingest","ops":{}}"#,
            r#"{"cmd":"ingest","ops":[{"op":"upsert","src":1,"dst":2}]}"#,
            r#"{"cmd":"ingest","ops":[{"src":-1,"dst":2}]}"#,
            r#"{"cmd":"ingest","ops":[{"src":4294967296,"dst":2}]}"#,
            r#"{"cmd":"ingest","ops":[{"src":1}]}"#,
            r#"{"cmd":"ingest","ops":[{"src":1,"dst":2,"weight":"heavy"}]}"#,
        ] {
            assert!(parse_request(line).is_err(), "accepted {line}");
        }
    }
}
