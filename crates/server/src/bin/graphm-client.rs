//! `graphm-client` — command-line client for `graphm-server`.
//!
//! ```text
//! graphm-client (--socket PATH | --tcp ADDR)
//!               [--retries N] [--backoff-ms N] COMMAND
//!
//! commands:
//!   submit ALGO [--damping X] [--root N] [--max-iters N] [--wait]
//!               [--tenant NAME] [--priority batch|interactive]
//!   status JOB_ID
//!   wait JOB_ID
//!   stats
//!   health
//!   ping
//!   shutdown
//!   ingest-edge SRC,DST[,WEIGHT]
//!   delete-edge SRC,DST
//!   ingest-random COUNT,SEED
//! ```
//!
//! `submit` prints `{"job_id":N}` (or, with `--wait`, the full report
//! JSON); `wait` prints the report; `stats` prints the daemon counters;
//! `health` prints the lease/generation/queue-depth snapshot (useful for
//! readiness polling). The `ingest-*` commands stage their mutations and
//! group-commit them in one connection, printing the durable generation
//! (the daemon must run with `--ingest`).
//!
//! `--retries`/`--backoff-ms` add jittered exponential backoff on
//! connect failures and on typed `overloaded` rejections, so scripted
//! clients ride out daemon startup and load shedding instead of failing
//! hard.

use graphm_graph::delta::DeltaRecord;
use graphm_server::protocol::{report_to_json, spec_from_json};
use graphm_server::{Client, ClientError, Priority};
use serde_json::json;
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: graphm-client (--socket PATH | --tcp ADDR) [--retries N] [--backoff-ms N] COMMAND\n\
         \n\
         --retries N     retry connects and 'overloaded' rejections up to N\n\
         \x20            times with jittered exponential backoff (default 0)\n\
         --backoff-ms N  base backoff delay in milliseconds (default 50)\n\
         \n\
         commands:\n\
         submit ALGO [--damping X] [--root N] [--max-iters N] [--wait]\n\
         \x20      [--tenant NAME] [--priority batch|interactive]\n\
         \x20       ALGO: pagerank|wcc|bfs|sssp|ppr|labelprop\n\
         status JOB_ID\n\
         wait JOB_ID\n\
         stats\n\
         health                         lease / generation / queue snapshot\n\
         ping\n\
         shutdown\n\
         ingest-edge SRC,DST[,WEIGHT]   insert one edge and commit\n\
         delete-edge SRC,DST            tombstone one edge and commit\n\
         ingest-random COUNT,SEED       insert COUNT random edges (over the\n\
         \x20                           served vertex space) and commit"
    );
    exit(2);
}

/// SplitMix64: cheap deterministic stream for `ingest-random`.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Jittered exponential backoff: full jitter over `[base/2, base]` where
/// `base = backoff_ms * 2^attempt` (capped), so a burst of shed clients
/// doesn't retry in lockstep.
fn retry_delay(backoff_ms: u64, attempt: u32, rng: &mut u64) -> Duration {
    let base = backoff_ms.max(1).saturating_mul(1u64 << attempt.min(10));
    let half = base / 2;
    Duration::from_millis(half + splitmix(rng) % (base - half + 1))
}

fn connect(socket: &Option<String>, tcp: &Option<String>, retries: u32, backoff_ms: u64) -> Client {
    let mut rng = 0x9e37_79b9 ^ u64::from(std::process::id());
    let mut attempt = 0u32;
    loop {
        let result = match (socket, tcp) {
            (Some(path), None) => Client::connect_unix(std::path::Path::new(path)),
            (None, Some(addr)) => Client::connect_tcp(addr.as_str()),
            _ => usage(),
        };
        match result {
            Ok(client) => return client,
            Err(e) if attempt < retries => {
                let delay = retry_delay(backoff_ms, attempt, &mut rng);
                attempt += 1;
                eprintln!(
                    "[graphm-client] connect failed ({e}); retry {attempt}/{retries} \
                     in {}ms",
                    delay.as_millis()
                );
                std::thread::sleep(delay);
            }
            Err(e) => {
                eprintln!("failed to connect: {e}");
                exit(1);
            }
        }
    }
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("{e}");
    exit(1);
}

fn main() {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut retries: u32 = 0;
    let mut backoff_ms: u64 = 50;
    let mut rest: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--retries" => {
                retries = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--backoff-ms" => {
                backoff_ms = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(args);
                break;
            }
        }
    }
    if rest.is_empty() {
        usage();
    }

    let mut client = connect(&socket, &tcp, retries, backoff_ms);
    let job_id_arg = |rest: &[String]| -> usize {
        rest.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    };
    match rest[0].as_str() {
        "ping" => {
            client.ping().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "pong": true }));
        }
        "stats" => {
            let stats = client.stats().unwrap_or_else(|e| fail(e));
            println!("{}", stats.to_json());
        }
        "health" => {
            let health = client.health().unwrap_or_else(|e| fail(e));
            println!("{}", health.to_json());
        }
        "shutdown" => {
            client.shutdown_server().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "shutting_down": true }));
        }
        "status" => {
            let state = client.status(job_id_arg(&rest)).unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "state": state.name() }));
        }
        "wait" => {
            let report = client.wait(job_id_arg(&rest)).unwrap_or_else(|e| fail(e));
            println!("{}", report_to_json(&report));
        }
        "submit" => {
            let algo = rest.get(1).unwrap_or_else(|| usage()).clone();
            let mut params = json!({ "algo": algo });
            let serde_json::Value::Object(map) = &mut params else { unreachable!() };
            let mut wait = false;
            let mut tenant = String::new();
            let mut priority = Priority::Batch;
            let mut it = rest[2..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().map(|s| s.as_str()).unwrap_or_else(|| {
                        eprintln!("{name} needs a value");
                        usage()
                    })
                };
                match flag.as_str() {
                    "--damping" => {
                        let d: f64 = value("--damping").parse().unwrap_or_else(|_| usage());
                        map.insert("damping".into(), serde_json::Value::Number(d));
                    }
                    "--root" => {
                        let r: u64 = value("--root").parse().unwrap_or_else(|_| usage());
                        map.insert("root".into(), serde_json::Value::from(r));
                    }
                    "--max-iters" => {
                        let m: u64 = value("--max-iters").parse().unwrap_or_else(|_| usage());
                        map.insert("max_iters".into(), serde_json::Value::from(m));
                    }
                    "--tenant" => tenant = value("--tenant").to_string(),
                    "--priority" => {
                        priority = Priority::from_name(value("--priority")).unwrap_or_else(|| {
                            eprintln!("unknown priority (expected batch or interactive)");
                            usage();
                        })
                    }
                    "--wait" => wait = true,
                    other => {
                        eprintln!("unknown flag: {other}");
                        usage();
                    }
                }
            }
            let spec = spec_from_json(&params).unwrap_or_else(|e| fail(e));
            // Overloaded rejections are the daemon telling us to back
            // off, not a hard failure: retry on the same connection.
            let mut rng = 0xb5ad_4ece ^ u64::from(std::process::id());
            let mut attempt = 0u32;
            let id = loop {
                match client.submit_as(&spec, &tenant, priority) {
                    Ok(id) => break id,
                    Err(ClientError::Overloaded(m)) if attempt < retries => {
                        let delay = retry_delay(backoff_ms, attempt, &mut rng);
                        attempt += 1;
                        eprintln!(
                            "[graphm-client] overloaded ({m}); retry {attempt}/{retries} \
                             in {}ms",
                            delay.as_millis()
                        );
                        std::thread::sleep(delay);
                    }
                    Err(e) => fail(e),
                }
            };
            if wait {
                let report = client.wait(id).unwrap_or_else(|e| fail(e));
                println!("{}", report_to_json(&report));
            } else {
                println!("{}", json!({ "job_id": id }));
            }
        }
        "ingest-edge" | "delete-edge" => {
            let parts: Vec<&str> = rest.get(1).unwrap_or_else(|| usage()).split(',').collect();
            let vertex = |s: &&str| s.parse::<u32>().unwrap_or_else(|_| usage());
            let weight = |s: &&str| s.parse::<f32>().unwrap_or_else(|_| usage());
            let deleting = rest[0] == "delete-edge";
            let ops = match (deleting, parts.as_slice()) {
                (true, [src, dst]) => vec![DeltaRecord::delete(vertex(src), vertex(dst))],
                (false, [src, dst]) => vec![DeltaRecord::insert(vertex(src), vertex(dst), 1.0)],
                (false, [src, dst, w]) => {
                    vec![DeltaRecord::insert(vertex(src), vertex(dst), weight(w))]
                }
                _ => usage(),
            };
            client.ingest(&ops).unwrap_or_else(|e| fail(e));
            let (generation, records) = client.ingest_commit().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "generation": generation, "records": records }));
        }
        "ingest-random" => {
            let parts: Vec<u64> = rest
                .get(1)
                .unwrap_or_else(|| usage())
                .split(',')
                .map(|s| s.parse().unwrap_or_else(|_| usage()))
                .collect();
            let [count, seed] = parts.as_slice() else { usage() };
            let nv = client.stats().unwrap_or_else(|e| fail(e)).num_vertices;
            if nv == 0 {
                fail("served store has no vertices");
            }
            let mut state = *seed;
            let ops: Vec<DeltaRecord> = (0..*count)
                .map(|_| {
                    let src = (splitmix(&mut state) % nv) as u32;
                    let dst = (splitmix(&mut state) % nv) as u32;
                    DeltaRecord::insert(src, dst, 1.0)
                })
                .collect();
            client.ingest(&ops).unwrap_or_else(|e| fail(e));
            let (generation, records) = client.ingest_commit().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "generation": generation, "records": records }));
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    }
}
