//! `graphm-client` — command-line client for `graphm-server`.
//!
//! ```text
//! graphm-client (--socket PATH | --tcp ADDR[,ADDR...])
//!               [--retries N] [--backoff-ms N] [--auth-token TOKEN]
//!               COMMAND
//!
//! commands:
//!   submit ALGO [--damping X] [--root N] [--max-iters N] [--wait]
//!               [--tenant NAME] [--priority batch|interactive]
//!   status JOB_ID
//!   wait JOB_ID
//!   stats
//!   health
//!   repl-status
//!   promote
//!   ping
//!   shutdown
//!   ingest-edge SRC,DST[,WEIGHT]
//!   delete-edge SRC,DST
//!   ingest-random COUNT,SEED
//! ```
//!
//! `submit` prints `{"job_id":N}` (or, with `--wait`, the full report
//! JSON); `wait` prints the report; `stats` prints the daemon counters;
//! `health` prints the lease/generation/queue-depth snapshot (useful for
//! readiness polling); `repl-status` prints the replication ledger and
//! `promote` takes a follower through the epoch fence to primary. The
//! `ingest-*` commands stage their mutations and group-commit them in
//! one connection, printing the durable generation (the daemon must run
//! with `--ingest`).
//!
//! `--tcp` accepts a comma-separated peer list (primary plus standbys):
//! connect failures and typed `not_primary` redirects rotate to the
//! next peer, so a scripted client rides through a failover. `--retries`
//! /`--backoff-ms` add jittered exponential backoff on connect
//! failures, `overloaded` rejections, and those rotations. A daemon
//! started with `--auth-token` requires the same token here.

use graphm_graph::delta::DeltaRecord;
use graphm_server::client::{retry_delay, splitmix};
use graphm_server::protocol::{report_to_json, spec_from_json};
use graphm_server::{Client, ClientError, Priority};
use serde_json::json;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: graphm-client (--socket PATH | --tcp ADDR[,ADDR...]) \
         [--retries N] [--backoff-ms N] [--auth-token TOKEN] COMMAND\n\
         \n\
         --retries N     retry connects, 'overloaded' rejections, and\n\
         \x20            'not_primary' redirects up to N times with jittered\n\
         \x20            exponential backoff (default 0)\n\
         --backoff-ms N  base backoff delay in milliseconds (default 50)\n\
         --auth-token T  authenticate with the daemon's shared secret before\n\
         \x20            the command (required on TCP when the daemon was\n\
         \x20            started with --auth-token)\n\
         \n\
         --tcp takes a comma-separated peer list (primary,standby,...);\n\
         connect failures and not_primary redirects rotate to the next peer\n\
         \n\
         commands:\n\
         submit ALGO [--damping X] [--root N] [--max-iters N] [--wait]\n\
         \x20      [--tenant NAME] [--priority batch|interactive]\n\
         \x20       ALGO: pagerank|wcc|bfs|sssp|ppr|labelprop\n\
         status JOB_ID\n\
         wait JOB_ID\n\
         stats\n\
         health                         lease / generation / queue snapshot\n\
         repl-status                    replication role / lag / counters\n\
         promote                        promote a follower to primary\n\
         ping\n\
         shutdown\n\
         ingest-edge SRC,DST[,WEIGHT]   insert one edge and commit\n\
         delete-edge SRC,DST            tombstone one edge and commit\n\
         ingest-random COUNT,SEED       insert COUNT random edges (over the\n\
         \x20                           served vertex space) and commit"
    );
    exit(2);
}

/// Where and how to connect: one unix socket, or a rotating TCP peer
/// list (primary plus standbys).
struct Target {
    socket: Option<String>,
    tcp: Vec<String>,
    auth_token: Option<String>,
    /// Index into `tcp` of the peer to try next.
    peer: usize,
}

impl Target {
    /// Rotates to the next TCP peer (no-op for unix or a single peer).
    fn rotate(&mut self) {
        if !self.tcp.is_empty() {
            self.peer = (self.peer + 1) % self.tcp.len();
        }
    }
}

fn connect(target: &mut Target, retries: u32, backoff_ms: u64) -> Client {
    let mut rng = 0x9e37_79b9 ^ u64::from(std::process::id());
    let mut attempt = 0u32;
    loop {
        let result = match (&target.socket, target.tcp.is_empty()) {
            (Some(path), true) => Client::connect_unix(std::path::Path::new(path)),
            (None, false) => Client::connect_tcp(target.tcp[target.peer].as_str()),
            _ => usage(),
        };
        match result {
            Ok(mut client) => {
                if let Some(token) = &target.auth_token {
                    // A wrong secret never fixes itself: fail hard.
                    client.auth(token).unwrap_or_else(|e| fail(e));
                }
                return client;
            }
            Err(e) if attempt < retries => {
                let delay = retry_delay(backoff_ms, attempt, &mut rng);
                attempt += 1;
                target.rotate();
                eprintln!(
                    "[graphm-client] connect failed ({e}); retry {attempt}/{retries} \
                     in {}ms",
                    delay.as_millis()
                );
                std::thread::sleep(delay);
            }
            Err(e) => {
                eprintln!("failed to connect: {e}");
                exit(1);
            }
        }
    }
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("{e}");
    exit(1);
}

fn main() {
    let mut socket: Option<String> = None;
    let mut tcp: Vec<String> = Vec::new();
    let mut auth_token: Option<String> = None;
    let mut retries: u32 = 0;
    let mut backoff_ms: u64 = 50;
    let mut rest: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--tcp" => {
                tcp = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--auth-token" => auth_token = Some(args.next().unwrap_or_else(|| usage())),
            "--retries" => {
                retries = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--backoff-ms" => {
                backoff_ms = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(args);
                break;
            }
        }
    }
    if rest.is_empty() {
        usage();
    }

    let mut target = Target { socket, tcp, auth_token, peer: 0 };
    let mut client = connect(&mut target, retries, backoff_ms);
    let job_id_arg = |rest: &[String]| -> usize {
        rest.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    };
    match rest[0].as_str() {
        "ping" => {
            client.ping().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "pong": true }));
        }
        "stats" => {
            let stats = client.stats().unwrap_or_else(|e| fail(e));
            println!("{}", stats.to_json());
        }
        "health" => {
            let health = client.health().unwrap_or_else(|e| fail(e));
            println!("{}", health.to_json());
        }
        "repl-status" => {
            let repl = client.repl_status().unwrap_or_else(|e| fail(e));
            println!("{repl}");
        }
        "promote" => {
            let epoch = client.promote().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "role": "primary", "epoch": epoch }));
        }
        "shutdown" => {
            client.shutdown_server().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "shutting_down": true }));
        }
        "status" => {
            let state = client.status(job_id_arg(&rest)).unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "state": state.name() }));
        }
        "wait" => {
            let report = client.wait(job_id_arg(&rest)).unwrap_or_else(|e| fail(e));
            println!("{}", report_to_json(&report));
        }
        "submit" => {
            let algo = rest.get(1).unwrap_or_else(|| usage()).clone();
            let mut params = json!({ "algo": algo });
            let serde_json::Value::Object(map) = &mut params else { unreachable!() };
            let mut wait = false;
            let mut tenant = String::new();
            let mut priority = Priority::Batch;
            let mut it = rest[2..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().map(|s| s.as_str()).unwrap_or_else(|| {
                        eprintln!("{name} needs a value");
                        usage()
                    })
                };
                match flag.as_str() {
                    "--damping" => {
                        let d: f64 = value("--damping").parse().unwrap_or_else(|_| usage());
                        map.insert("damping".into(), serde_json::Value::Number(d));
                    }
                    "--root" => {
                        let r: u64 = value("--root").parse().unwrap_or_else(|_| usage());
                        map.insert("root".into(), serde_json::Value::from(r));
                    }
                    "--max-iters" => {
                        let m: u64 = value("--max-iters").parse().unwrap_or_else(|_| usage());
                        map.insert("max_iters".into(), serde_json::Value::from(m));
                    }
                    "--tenant" => tenant = value("--tenant").to_string(),
                    "--priority" => {
                        priority = Priority::from_name(value("--priority")).unwrap_or_else(|| {
                            eprintln!("unknown priority (expected batch or interactive)");
                            usage();
                        })
                    }
                    "--wait" => wait = true,
                    other => {
                        eprintln!("unknown flag: {other}");
                        usage();
                    }
                }
            }
            let spec = spec_from_json(&params).unwrap_or_else(|e| fail(e));
            // Overloaded rejections are the daemon telling us to back
            // off, not a hard failure: retry on the same connection.
            // not_primary redirects, stale replicas, and transport
            // drops (a primary dying mid-failover) rotate the peer
            // list and reconnect — the ride-through path for failover.
            let mut rng = 0xb5ad_4ece ^ u64::from(std::process::id());
            let mut attempt = 0u32;
            let id = loop {
                match client.submit_as(&spec, &tenant, priority) {
                    Ok(id) => break id,
                    Err(ClientError::Overloaded(m)) if attempt < retries => {
                        let delay = retry_delay(backoff_ms, attempt, &mut rng);
                        attempt += 1;
                        eprintln!(
                            "[graphm-client] overloaded ({m}); retry {attempt}/{retries} \
                             in {}ms",
                            delay.as_millis()
                        );
                        std::thread::sleep(delay);
                    }
                    Err(
                        e @ (ClientError::NotPrimary(_)
                        | ClientError::StaleReplica(_)
                        | ClientError::Io(_)),
                    ) if attempt < retries => {
                        let delay = retry_delay(backoff_ms, attempt, &mut rng);
                        attempt += 1;
                        target.rotate();
                        eprintln!(
                            "[graphm-client] {e}; rotating peer, retry {attempt}/{retries} \
                             in {}ms",
                            delay.as_millis()
                        );
                        std::thread::sleep(delay);
                        client = connect(&mut target, retries.saturating_sub(attempt), backoff_ms);
                    }
                    Err(e) => fail(e),
                }
            };
            if wait {
                let report = client.wait(id).unwrap_or_else(|e| fail(e));
                println!("{}", report_to_json(&report));
            } else {
                println!("{}", json!({ "job_id": id }));
            }
        }
        "ingest-edge" | "delete-edge" => {
            let parts: Vec<&str> = rest.get(1).unwrap_or_else(|| usage()).split(',').collect();
            let vertex = |s: &&str| s.parse::<u32>().unwrap_or_else(|_| usage());
            let weight = |s: &&str| s.parse::<f32>().unwrap_or_else(|_| usage());
            let deleting = rest[0] == "delete-edge";
            let ops = match (deleting, parts.as_slice()) {
                (true, [src, dst]) => vec![DeltaRecord::delete(vertex(src), vertex(dst))],
                (false, [src, dst]) => vec![DeltaRecord::insert(vertex(src), vertex(dst), 1.0)],
                (false, [src, dst, w]) => {
                    vec![DeltaRecord::insert(vertex(src), vertex(dst), weight(w))]
                }
                _ => usage(),
            };
            client.ingest(&ops).unwrap_or_else(|e| fail(e));
            let (generation, records) = client.ingest_commit().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "generation": generation, "records": records }));
        }
        "ingest-random" => {
            let parts: Vec<u64> = rest
                .get(1)
                .unwrap_or_else(|| usage())
                .split(',')
                .map(|s| s.parse().unwrap_or_else(|_| usage()))
                .collect();
            let [count, seed] = parts.as_slice() else { usage() };
            let nv = client.stats().unwrap_or_else(|e| fail(e)).num_vertices;
            if nv == 0 {
                fail("served store has no vertices");
            }
            let mut state = *seed;
            let ops: Vec<DeltaRecord> = (0..*count)
                .map(|_| {
                    let src = (splitmix(&mut state) % nv) as u32;
                    let dst = (splitmix(&mut state) % nv) as u32;
                    DeltaRecord::insert(src, dst, 1.0)
                })
                .collect();
            client.ingest(&ops).unwrap_or_else(|e| fail(e));
            let (generation, records) = client.ingest_commit().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "generation": generation, "records": records }));
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    }
}
