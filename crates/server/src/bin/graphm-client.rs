//! `graphm-client` — command-line client for `graphm-server`.
//!
//! ```text
//! graphm-client (--socket PATH | --tcp ADDR) COMMAND
//!
//! commands:
//!   submit ALGO [--damping X] [--root N] [--max-iters N] [--wait]
//!   status JOB_ID
//!   wait JOB_ID
//!   stats
//!   ping
//!   shutdown
//!   ingest-edge SRC,DST[,WEIGHT]
//!   delete-edge SRC,DST
//!   ingest-random COUNT,SEED
//! ```
//!
//! `submit` prints `{"job_id":N}` (or, with `--wait`, the full report
//! JSON); `wait` prints the report; `stats` prints the daemon counters.
//! The `ingest-*` commands stage their mutations and group-commit them
//! in one connection, printing the durable generation (the daemon must
//! run with `--ingest`).

use graphm_graph::delta::DeltaRecord;
use graphm_server::protocol::{report_to_json, spec_from_json};
use graphm_server::Client;
use serde_json::json;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: graphm-client (--socket PATH | --tcp ADDR) COMMAND\n\
         \n\
         commands:\n\
         submit ALGO [--damping X] [--root N] [--max-iters N] [--wait]\n\
         \x20       ALGO: pagerank|wcc|bfs|sssp|ppr|labelprop\n\
         status JOB_ID\n\
         wait JOB_ID\n\
         stats\n\
         ping\n\
         shutdown\n\
         ingest-edge SRC,DST[,WEIGHT]   insert one edge and commit\n\
         delete-edge SRC,DST            tombstone one edge and commit\n\
         ingest-random COUNT,SEED       insert COUNT random edges (over the\n\
         \x20                           served vertex space) and commit"
    );
    exit(2);
}

/// SplitMix64: cheap deterministic stream for `ingest-random`.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn connect(socket: Option<String>, tcp: Option<String>) -> Client {
    let result = match (&socket, &tcp) {
        (Some(path), None) => Client::connect_unix(std::path::Path::new(path)),
        (None, Some(addr)) => Client::connect_tcp(addr.as_str()),
        _ => usage(),
    };
    result.unwrap_or_else(|e| {
        eprintln!("failed to connect: {e}");
        exit(1);
    })
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("{e}");
    exit(1);
}

fn main() {
    let mut socket: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut rest: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            _ => {
                rest.push(arg);
                rest.extend(args);
                break;
            }
        }
    }
    if rest.is_empty() {
        usage();
    }

    let mut client = connect(socket, tcp);
    let job_id_arg = |rest: &[String]| -> usize {
        rest.get(1).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    };
    match rest[0].as_str() {
        "ping" => {
            client.ping().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "pong": true }));
        }
        "stats" => {
            let stats = client.stats().unwrap_or_else(|e| fail(e));
            println!("{}", stats.to_json());
        }
        "shutdown" => {
            client.shutdown_server().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "shutting_down": true }));
        }
        "status" => {
            let state = client.status(job_id_arg(&rest)).unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "state": state.name() }));
        }
        "wait" => {
            let report = client.wait(job_id_arg(&rest)).unwrap_or_else(|e| fail(e));
            println!("{}", report_to_json(&report));
        }
        "submit" => {
            let algo = rest.get(1).unwrap_or_else(|| usage()).clone();
            let mut params = json!({ "algo": algo });
            let serde_json::Value::Object(map) = &mut params else { unreachable!() };
            let mut wait = false;
            let mut it = rest[2..].iter();
            while let Some(flag) = it.next() {
                let mut value = |name: &str| {
                    it.next().map(|s| s.as_str()).unwrap_or_else(|| {
                        eprintln!("{name} needs a value");
                        usage()
                    })
                };
                match flag.as_str() {
                    "--damping" => {
                        let d: f64 = value("--damping").parse().unwrap_or_else(|_| usage());
                        map.insert("damping".into(), serde_json::Value::Number(d));
                    }
                    "--root" => {
                        let r: u64 = value("--root").parse().unwrap_or_else(|_| usage());
                        map.insert("root".into(), serde_json::Value::from(r));
                    }
                    "--max-iters" => {
                        let m: u64 = value("--max-iters").parse().unwrap_or_else(|_| usage());
                        map.insert("max_iters".into(), serde_json::Value::from(m));
                    }
                    "--wait" => wait = true,
                    other => {
                        eprintln!("unknown flag: {other}");
                        usage();
                    }
                }
            }
            let spec = spec_from_json(&params).unwrap_or_else(|e| fail(e));
            let id = client.submit(&spec).unwrap_or_else(|e| fail(e));
            if wait {
                let report = client.wait(id).unwrap_or_else(|e| fail(e));
                println!("{}", report_to_json(&report));
            } else {
                println!("{}", json!({ "job_id": id }));
            }
        }
        "ingest-edge" | "delete-edge" => {
            let parts: Vec<&str> = rest.get(1).unwrap_or_else(|| usage()).split(',').collect();
            let vertex = |s: &&str| s.parse::<u32>().unwrap_or_else(|_| usage());
            let weight = |s: &&str| s.parse::<f32>().unwrap_or_else(|_| usage());
            let deleting = rest[0] == "delete-edge";
            let ops = match (deleting, parts.as_slice()) {
                (true, [src, dst]) => vec![DeltaRecord::delete(vertex(src), vertex(dst))],
                (false, [src, dst]) => vec![DeltaRecord::insert(vertex(src), vertex(dst), 1.0)],
                (false, [src, dst, w]) => {
                    vec![DeltaRecord::insert(vertex(src), vertex(dst), weight(w))]
                }
                _ => usage(),
            };
            client.ingest(&ops).unwrap_or_else(|e| fail(e));
            let (generation, records) = client.ingest_commit().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "generation": generation, "records": records }));
        }
        "ingest-random" => {
            let parts: Vec<u64> = rest
                .get(1)
                .unwrap_or_else(|| usage())
                .split(',')
                .map(|s| s.parse().unwrap_or_else(|_| usage()))
                .collect();
            let [count, seed] = parts.as_slice() else { usage() };
            let nv = client.stats().unwrap_or_else(|e| fail(e)).num_vertices;
            if nv == 0 {
                fail("served store has no vertices");
            }
            let mut state = *seed;
            let ops: Vec<DeltaRecord> = (0..*count)
                .map(|_| {
                    let src = (splitmix(&mut state) % nv) as u32;
                    let dst = (splitmix(&mut state) % nv) as u32;
                    DeltaRecord::insert(src, dst, 1.0)
                })
                .collect();
            client.ingest(&ops).unwrap_or_else(|e| fail(e));
            let (generation, records) = client.ingest_commit().unwrap_or_else(|e| fail(e));
            println!("{}", json!({ "generation": generation, "records": records }));
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
        }
    }
}
