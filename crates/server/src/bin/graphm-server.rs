//! `graphm-server` — the multi-tenant graph-job daemon.
//!
//! Opens one disk-resident grid store and serves job submissions over a
//! unix-domain socket and/or TCP until a client sends `shutdown` (or the
//! process is killed).
//!
//! ```text
//! graphm-server --store DIR [--socket PATH] [--tcp ADDR]
//!               [--batch-window-ms N] [--profile default|test]
//!               [--mode deterministic|wallclock]
//!               [--memory-budget BYTES] [--prefetch-lookahead N]
//!               [--fixed-prefetch] [--no-chunk-fanout] [--no-rotate]
//!               [--ingest]
//! ```

use graphm_server::{ExecutionMode, Server, ServerConfig};
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: graphm-server --store DIR [--socket PATH] [--tcp ADDR] \
         [--batch-window-ms N] [--profile default|test] [--mode deterministic|wallclock]\n\
         \n\
         --store DIR          grid store written by graphm-convert (required)\n\
         --socket PATH        unix-domain socket to listen on\n\
         --tcp ADDR           tcp address to listen on, e.g. 127.0.0.1:7421\n\
         --batch-window-ms N  idle-round batching window (default 20)\n\
         --profile NAME       simulated memory profile (default|test)\n\
         --mode NAME          deterministic (virtual-time replay, the default) or\n\
                              wallclock (threaded sweeps + partition prefetch)\n\
         --memory-budget B    page-cache budget in bytes; past it the store\n\
                              releases segments behind the sweep frontier with\n\
                              madvise(MADV_DONTNEED) (default 0 = unlimited)\n\
         --prefetch-lookahead N  max announced readahead depth (default 16)\n\
         --fixed-prefetch     disable the adaptive prefetch window (advise the\n\
                              full announced lookahead)\n\
         --no-chunk-fanout    disable intra-job chunk fan-out across the\n\
                              worker pool (wallclock mode)\n\
         --no-rotate          do not adopt delta generations published by\n\
                              graphm-delta; serve the open-time generation\n\
                              forever (default: rotate between rounds)\n\
         --ingest             serve ingest/ingest_commit sessions: acquire the\n\
                              store's writer lease and group-commit client\n\
                              mutation batches through its WAL (off by default;\n\
                              incompatible with an external graphm-delta writer)\n\
         \n\
         at least one of --socket / --tcp is required"
    );
    exit(2);
}

fn main() {
    let mut store: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut tcp: Option<String> = None;
    let mut window_ms: u64 = 20;
    let mut profile = graphm_graph::MemoryProfile::DEFAULT;
    let mut mode = ExecutionMode::Deterministic;
    let mut memory_budget: u64 = 0;
    let mut prefetch_lookahead: usize = graphm_store::DEFAULT_MAX_PREFETCH_LOOKAHEAD;
    let mut adaptive_prefetch = true;
    let mut chunk_fanout = true;
    let mut auto_rotate = true;
    let mut enable_ingest = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--store" => store = Some(PathBuf::from(value("--store"))),
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--tcp" => tcp = Some(value("--tcp")),
            "--batch-window-ms" => {
                window_ms = value("--batch-window-ms").parse().unwrap_or_else(|_| usage())
            }
            "--profile" => {
                profile = match value("--profile").as_str() {
                    "default" => graphm_graph::MemoryProfile::DEFAULT,
                    "test" => graphm_graph::MemoryProfile::TEST,
                    other => {
                        eprintln!("unknown profile {other:?}");
                        usage();
                    }
                }
            }
            "--mode" => {
                mode = ExecutionMode::from_name(&value("--mode")).unwrap_or_else(|| {
                    eprintln!("unknown mode (expected deterministic or wallclock)");
                    usage();
                })
            }
            "--memory-budget" => {
                memory_budget = value("--memory-budget").parse().unwrap_or_else(|_| usage())
            }
            "--prefetch-lookahead" => {
                prefetch_lookahead =
                    value("--prefetch-lookahead").parse().unwrap_or_else(|_| usage())
            }
            "--fixed-prefetch" => adaptive_prefetch = false,
            "--no-chunk-fanout" => chunk_fanout = false,
            "--no-rotate" => auto_rotate = false,
            "--ingest" => enable_ingest = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let Some(store) = store else { usage() };
    if socket.is_none() && tcp.is_none() {
        usage();
    }

    let mut config = ServerConfig::new(store);
    config.socket_path = socket;
    config.tcp_addr = tcp;
    config.batch_window = Duration::from_millis(window_ms);
    config.profile = profile;
    config.mode = mode;
    config.memory_budget_bytes = memory_budget;
    config.max_prefetch_lookahead = prefetch_lookahead.max(1);
    config.adaptive_prefetch = adaptive_prefetch;
    config.chunk_fanout = chunk_fanout;
    config.auto_rotate = auto_rotate;
    config.enable_ingest = enable_ingest;

    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("failed to start: {e}");
        exit(1);
    });
    if let Some(path) = server.socket_path() {
        eprintln!("[graphm-server] listening on unix socket {}", path.display());
    }
    if let Some(addr) = server.tcp_addr() {
        eprintln!("[graphm-server] listening on tcp {addr}");
    }
    let stats = server.stats();
    eprintln!(
        "[graphm-server] serving {} partitions over {} vertices in {} mode; \
         submit with graphm-client",
        stats.num_partitions,
        stats.num_vertices,
        mode.name()
    );
    if stats.lease_held != 0 {
        eprintln!(
            "[graphm-server] ingest enabled: holding writer lease epoch {}",
            stats.lease_epoch
        );
    }
    // Park until a client requests shutdown; queued jobs drain first.
    server.join();
    eprintln!("[graphm-server] shut down");
}
