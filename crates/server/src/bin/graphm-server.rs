//! `graphm-server` — the multi-tenant graph-job daemon.
//!
//! Opens one disk-resident grid store and serves job submissions over a
//! unix-domain socket and/or TCP until a client sends `shutdown` (or the
//! process is killed).
//!
//! ```text
//! graphm-server --store DIR [--socket PATH] [--tcp ADDR]
//!               [--batch-window-ms N] [--profile default|test]
//!               [--mode deterministic|wallclock]
//!               [--memory-budget BYTES] [--prefetch-lookahead N]
//!               [--fixed-prefetch] [--no-chunk-fanout] [--no-rotate]
//!               [--ingest]
//!               [--max-pending N] [--max-connections N]
//!               [--read-timeout-ms N] [--max-line-bytes N]
//!               [--tenant-max-pending N] [--tenant-max-inflight N]
//!               [--max-batch-per-round N] [--shed-eviction-rate R]
//!               [--auth-token TOKEN] [--follow ADDR]
//!               [--max-replica-lag N] [--repl-backoff-ms N]
//! ```
//!
//! Setting `GRAPHM_FAILPOINT=point[@skip]` (e.g. `read:load@3`) arms a
//! process-global fault-injection point in the store read path — for
//! chaos testing that injected I/O errors surface as per-job failures
//! while the daemon keeps serving.

use graphm_server::{ExecutionMode, Server, ServerConfig};
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: graphm-server --store DIR [--socket PATH] [--tcp ADDR] \
         [--batch-window-ms N] [--profile default|test] [--mode deterministic|wallclock]\n\
         \n\
         --store DIR          grid store written by graphm-convert (required)\n\
         --socket PATH        unix-domain socket to listen on\n\
         --tcp ADDR           tcp address to listen on, e.g. 127.0.0.1:7421\n\
         --batch-window-ms N  idle-round batching window (default 20)\n\
         --profile NAME       simulated memory profile (default|test)\n\
         --mode NAME          deterministic (virtual-time replay, the default) or\n\
                              wallclock (threaded sweeps + partition prefetch)\n\
         --memory-budget B    page-cache budget in bytes; past it the store\n\
                              releases segments behind the sweep frontier with\n\
                              madvise(MADV_DONTNEED) (default 0 = unlimited)\n\
         --prefetch-lookahead N  max announced readahead depth (default 16)\n\
         --fixed-prefetch     disable the adaptive prefetch window (advise the\n\
                              full announced lookahead)\n\
         --no-chunk-fanout    disable intra-job chunk fan-out across the\n\
                              worker pool (wallclock mode)\n\
         --no-rotate          do not adopt delta generations published by\n\
                              graphm-delta; serve the open-time generation\n\
                              forever (default: rotate between rounds)\n\
         --ingest             serve ingest/ingest_commit sessions: acquire the\n\
                              store's writer lease and group-commit client\n\
                              mutation batches through its WAL (off by default;\n\
                              incompatible with an external graphm-delta writer)\n\
         --max-pending N      admission control: shed submissions past N queued\n\
                              jobs with a typed 'overloaded' error (default 0 =\n\
                              unlimited)\n\
         --max-connections N  shed accepts past N live connections with one\n\
                              typed 'overloaded' error line (default 0)\n\
         --read-timeout-ms N  close connections idle in a read for N ms\n\
                              (default 0 = no timeout)\n\
         --max-line-bytes N   reject request lines over N bytes with a typed\n\
                              'line_too_long' error (default 1048576)\n\
         --tenant-max-pending N   per-tenant queued-jobs quota (default 0)\n\
         --tenant-max-inflight N  per-tenant queued+running quota (default 0)\n\
         --max-batch-per-round N  admit at most N batch-priority jobs per\n\
                              round; interactive jobs always join (default 0)\n\
         --shed-eviction-rate R   shed batch submissions while the store's\n\
                              evictions-per-round EWMA exceeds R (default 0 =\n\
                              disabled)\n\
         --auth-token TOKEN   require an 'auth' handshake with this shared\n\
                              secret before any other request on TCP (unix\n\
                              sockets are exempt; their SO_PEERCRED identity\n\
                              is logged at accept)\n\
         --follow ADDR        run as a follower replica: tail the primary at\n\
                              ADDR (tcp), replay its published delta\n\
                              generations into --store, and serve reads only\n\
                              until promoted with 'graphm-client promote'\n\
                              (incompatible with --ingest)\n\
         --max-replica-lag N  follower staleness bound: reject submissions\n\
                              with a typed 'stale_replica' error while more\n\
                              than N generations behind the primary\n\
                              (default 0 = serve at any lag)\n\
         --repl-backoff-ms N  base delay for the follower's jittered\n\
                              reconnect backoff (default 200)\n\
         \n\
         GRAPHM_FAILPOINT=point[@skip] arms a store read-path fault-injection\n\
         point (chaos testing), e.g. read:load@3\n\
         \n\
         at least one of --socket / --tcp is required"
    );
    exit(2);
}

fn main() {
    let mut store: Option<PathBuf> = None;
    let mut socket: Option<PathBuf> = None;
    let mut tcp: Option<String> = None;
    let mut window_ms: u64 = 20;
    let mut profile = graphm_graph::MemoryProfile::DEFAULT;
    let mut mode = ExecutionMode::Deterministic;
    let mut memory_budget: u64 = 0;
    let mut prefetch_lookahead: usize = graphm_store::DEFAULT_MAX_PREFETCH_LOOKAHEAD;
    let mut adaptive_prefetch = true;
    let mut chunk_fanout = true;
    let mut auto_rotate = true;
    let mut enable_ingest = false;
    let mut max_pending: usize = 0;
    let mut max_connections: usize = 0;
    let mut read_timeout_ms: u64 = 0;
    let mut max_line_bytes: usize = 1 << 20;
    let mut tenant_max_pending: usize = 0;
    let mut tenant_max_inflight: usize = 0;
    let mut max_batch_per_round: usize = 0;
    let mut shed_eviction_rate: f64 = 0.0;
    let mut auth_token: Option<String> = None;
    let mut follow: Option<String> = None;
    let mut max_replica_lag: u64 = 0;
    let mut repl_backoff_ms: u64 = 200;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--store" => store = Some(PathBuf::from(value("--store"))),
            "--socket" => socket = Some(PathBuf::from(value("--socket"))),
            "--tcp" => tcp = Some(value("--tcp")),
            "--batch-window-ms" => {
                window_ms = value("--batch-window-ms").parse().unwrap_or_else(|_| usage())
            }
            "--profile" => {
                profile = match value("--profile").as_str() {
                    "default" => graphm_graph::MemoryProfile::DEFAULT,
                    "test" => graphm_graph::MemoryProfile::TEST,
                    other => {
                        eprintln!("unknown profile {other:?}");
                        usage();
                    }
                }
            }
            "--mode" => {
                mode = ExecutionMode::from_name(&value("--mode")).unwrap_or_else(|| {
                    eprintln!("unknown mode (expected deterministic or wallclock)");
                    usage();
                })
            }
            "--memory-budget" => {
                memory_budget = value("--memory-budget").parse().unwrap_or_else(|_| usage())
            }
            "--prefetch-lookahead" => {
                prefetch_lookahead =
                    value("--prefetch-lookahead").parse().unwrap_or_else(|_| usage())
            }
            "--fixed-prefetch" => adaptive_prefetch = false,
            "--no-chunk-fanout" => chunk_fanout = false,
            "--no-rotate" => auto_rotate = false,
            "--ingest" => enable_ingest = true,
            "--max-pending" => {
                max_pending = value("--max-pending").parse().unwrap_or_else(|_| usage())
            }
            "--max-connections" => {
                max_connections = value("--max-connections").parse().unwrap_or_else(|_| usage())
            }
            "--read-timeout-ms" => {
                read_timeout_ms = value("--read-timeout-ms").parse().unwrap_or_else(|_| usage())
            }
            "--max-line-bytes" => {
                max_line_bytes = value("--max-line-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--tenant-max-pending" => {
                tenant_max_pending =
                    value("--tenant-max-pending").parse().unwrap_or_else(|_| usage())
            }
            "--tenant-max-inflight" => {
                tenant_max_inflight =
                    value("--tenant-max-inflight").parse().unwrap_or_else(|_| usage())
            }
            "--max-batch-per-round" => {
                max_batch_per_round =
                    value("--max-batch-per-round").parse().unwrap_or_else(|_| usage())
            }
            "--shed-eviction-rate" => {
                shed_eviction_rate =
                    value("--shed-eviction-rate").parse().unwrap_or_else(|_| usage())
            }
            "--auth-token" => auth_token = Some(value("--auth-token")),
            "--follow" => follow = Some(value("--follow")),
            "--max-replica-lag" => {
                max_replica_lag = value("--max-replica-lag").parse().unwrap_or_else(|_| usage())
            }
            "--repl-backoff-ms" => {
                repl_backoff_ms = value("--repl-backoff-ms").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let Some(store) = store else { usage() };
    if socket.is_none() && tcp.is_none() {
        usage();
    }

    let mut config = ServerConfig::new(store);
    config.socket_path = socket;
    config.tcp_addr = tcp;
    config.batch_window = Duration::from_millis(window_ms);
    config.profile = profile;
    config.mode = mode;
    config.memory_budget_bytes = memory_budget;
    config.max_prefetch_lookahead = prefetch_lookahead.max(1);
    config.adaptive_prefetch = adaptive_prefetch;
    config.chunk_fanout = chunk_fanout;
    config.auto_rotate = auto_rotate;
    config.enable_ingest = enable_ingest;
    config.max_pending = max_pending;
    config.max_connections = max_connections;
    config.read_timeout = Duration::from_millis(read_timeout_ms);
    config.max_line_bytes = max_line_bytes;
    config.tenant_max_pending = tenant_max_pending;
    config.tenant_max_inflight = tenant_max_inflight;
    config.max_batch_per_round = max_batch_per_round;
    config.shed_eviction_rate = shed_eviction_rate;
    config.auth_token = auth_token;
    config.follow = follow.clone();
    config.max_replica_lag = max_replica_lag;
    config.repl_backoff = Duration::from_millis(repl_backoff_ms);

    // Chaos harness: arm one process-global store read-path failpoint
    // from the environment, so CI can inject I/O faults into a stock
    // daemon binary without a special build.
    if let Ok(spec) = std::env::var("GRAPHM_FAILPOINT") {
        if !spec.is_empty() {
            match graphm_graph::failpoint::arm_global_from_spec(&spec) {
                Some((point, skip)) => {
                    eprintln!("[graphm-server] fault injection armed: {point} (skip {skip})")
                }
                None => {
                    eprintln!("bad GRAPHM_FAILPOINT {spec:?} (expected point[@skip])");
                    exit(2);
                }
            }
        }
    }

    let server = Server::start(config).unwrap_or_else(|e| {
        eprintln!("failed to start: {e}");
        exit(1);
    });
    if let Some(path) = server.socket_path() {
        eprintln!("[graphm-server] listening on unix socket {}", path.display());
    }
    if let Some(addr) = server.tcp_addr() {
        eprintln!("[graphm-server] listening on tcp {addr}");
    }
    let stats = server.stats();
    eprintln!(
        "[graphm-server] serving {} partitions over {} vertices in {} mode; \
         submit with graphm-client",
        stats.num_partitions,
        stats.num_vertices,
        mode.name()
    );
    if stats.lease_held != 0 {
        eprintln!(
            "[graphm-server] ingest enabled: holding writer lease epoch {}",
            stats.lease_epoch
        );
    }
    if let Some(peer) = &follow {
        eprintln!("[graphm-server] follower replica: tailing primary at {peer}");
    }
    // Park until a client requests shutdown; queued jobs drain first.
    server.join();
    eprintln!("[graphm-server] shut down");
}
