//! # graphm-server — a multi-tenant graph-job daemon over one shared store
//!
//! The paper's whole point is amortizing one storage pass across
//! *concurrent* jobs; this crate turns that from an in-process arrival
//! script into a service. A long-lived daemon opens one mmap'd disk store
//! ([`graphm_store::DiskGridSource`], through the shared-mapping
//! registry), listens on a unix-domain socket and/or TCP, and feeds
//! client submissions into one [`graphm_core::SharingService`] — so jobs
//! submitted by independent clients share partition loads, LLC residency,
//! and the §4 loading order exactly like the in-process Shared scheme.
//!
//! * [`protocol`] — the newline-delimited JSON wire format (requests,
//!   reports with bit-exact `f64` round-trips, stats);
//! * [`daemon`] — [`Server`]: listeners, the submission queue, and the
//!   batched-round runtime thread;
//! * [`client`] — [`Client`]: a blocking connection wrapper;
//! * [`ingest`] — [`IngestCoordinator`]: group-commit mutation sessions
//!   through the store's single leased writer (opt-in via
//!   [`ServerConfig::enable_ingest`]);
//! * [`repl`] — [`ReplicationHub`] and the hex frame transport behind
//!   hot-standby replication: a follower daemon
//!   ([`ServerConfig::follow`]) tails the primary's committed delta
//!   generations and promotes through the store's epoch fence.
//!
//! Binaries: `graphm-server` (the daemon) and `graphm-client` (submit /
//! status / wait / stats / shutdown from the command line); convert a
//! graph for serving with `graphm-convert` (in `graphm-store`).
//!
//! ## In-process quickstart
//!
//! ```
//! use graphm_server::{Client, Server, ServerConfig};
//! use graphm_workloads::{AlgoKind, JobSpec};
//!
//! // A store to serve (normally written once by `graphm-convert`).
//! let graph = graphm_graph::generators::rmat(
//!     500, 4000, graphm_graph::generators::RmatParams::GRAPH500, 7);
//! let dir = std::env::temp_dir().join(format!("graphm-server-doc-{}", std::process::id()));
//! graphm_store::Convert::grid(4).write(&graph, &dir).unwrap();
//!
//! // Daemon on a unix socket; TEST profile keeps the doctest fast.
//! let mut config = ServerConfig::new(&dir);
//! config.socket_path = Some(dir.join("graphm.sock"));
//! config.profile = graphm_graph::MemoryProfile::TEST;
//! let server = Server::start(config).unwrap();
//!
//! // Any number of clients; here one submits PageRank and waits.
//! let mut client = Client::connect_unix(server.socket_path().unwrap()).unwrap();
//! let spec = JobSpec { kind: AlgoKind::PageRank, damping: 0.85, root: 0, max_iters: 10 };
//! let report = client.run(&spec).unwrap();
//! assert_eq!(report.name, "PageRank");
//! assert_eq!(report.values.len(), 500);
//!
//! server.shutdown();
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod client;
pub mod daemon;
pub mod ingest;
pub mod protocol;
pub mod repl;

pub use client::{retry_delay, splitmix, Client, ClientError};
pub use daemon::{ExecutionMode, Server, ServerConfig};
pub use ingest::{CommitOutcome, IngestCoordinator, IngestStats};
pub use protocol::{
    HealthReport, JobState, Priority, Request, ServerStats, ERR_LINE_TOO_LONG, ERR_NOT_PRIMARY,
    ERR_OVERLOADED, ERR_SHUTTING_DOWN, ERR_STALE_REPLICA, ERR_UNAUTHORIZED,
};
pub use repl::{hex_decode, hex_encode, HubSnapshot, ReplicationHub};
