//! Replication bookkeeping shared by both daemon roles.
//!
//! One [`ReplicationHub`] lives in every daemon. On a **primary** it is
//! the publish signal and the shipping ledger: `ingest_commit` calls
//! [`ReplicationHub::notify_published`] after each durable generation,
//! which wakes `repl_frames` long-polls, and the counters record frames
//! shipped, the followers' ack high-water, and the live subscriber
//! count. On a **follower** the same hub records the tailer's reconnect
//! attempts (the "retry storm" ledger surfaced by `repl_status`).
//!
//! The hub never holds frame payloads. Frames are rebuilt from the store
//! directory on demand (`graphm_store::read_generation_frame`), so live
//! shipping and anti-entropy catch-up after follower downtime are one
//! bit-exact code path, and a hub restart loses nothing but counters.
//!
//! Frames travel inside the NDJSON line protocol hex-encoded
//! ([`hex_encode`] / [`hex_decode`]): two lowercase hex digits per byte,
//! no framing of its own — the binary frame carries its own magic,
//! length, and CRC (see `graphm_store::replica`).

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Counter snapshot for `repl_status` / `stats`.
#[derive(Clone, Copy, Debug, Default)]
pub struct HubSnapshot {
    /// Highest generation announced via [`ReplicationHub::notify_published`].
    pub last_published: u64,
    /// The announcing writer's lease epoch (0 before any writer exists).
    pub epoch: u64,
    /// Frames encoded and sent in `repl_frames` responses.
    pub frames_shipped: u64,
    /// Generations followers have acknowledged (a `repl_frames` poll
    /// from generation `G` acks everything below `G`).
    pub frames_acked: u64,
    /// Highest generation any follower has acknowledged.
    pub acked_generation: u64,
    /// Live subscribed followers (connections that sent `repl_subscribe`).
    pub followers: u64,
    /// Follower-side tailer reconnect attempts since startup.
    pub reconnects: u64,
}

/// See the module docs. One per daemon, either role.
pub struct ReplicationHub {
    state: Mutex<HubSnapshot>,
    cv: Condvar,
}

impl ReplicationHub {
    /// A hub that has observed `generation` as the latest published
    /// generation under `epoch`.
    pub fn new(generation: u64, epoch: u64) -> ReplicationHub {
        ReplicationHub {
            state: Mutex::new(HubSnapshot {
                last_published: generation,
                epoch,
                ..HubSnapshot::default()
            }),
            cv: Condvar::new(),
        }
    }

    /// Announces a durably published generation and wakes long-polls.
    /// Monotone: stale announcements (concurrent group commits racing to
    /// report) never move the high-water backwards.
    pub fn notify_published(&self, generation: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if generation > st.last_published {
            st.last_published = generation;
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Records the current writer epoch (startup and promotion).
    pub fn set_epoch(&self, epoch: u64) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).epoch = epoch;
    }

    /// Blocks until a generation `>= from` has been announced or
    /// `timeout` elapses; returns the announced high-water either way.
    /// Callers long-polling on behalf of a connection should keep the
    /// timeout short and re-check shutdown between calls.
    pub fn wait_published(&self, from: u64, timeout: Duration) -> u64 {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.last_published < from {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, _) =
                self.cv.wait_timeout(st, deadline - now).unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        st.last_published
    }

    /// A connection subscribed (`repl_subscribe`).
    pub fn subscriber_joined(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).followers += 1;
    }

    /// A subscribed connection went away.
    pub fn subscriber_left(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.followers = st.followers.saturating_sub(1);
    }

    /// `n` frames were encoded into a `repl_frames` response.
    pub fn note_shipped(&self, n: u64) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).frames_shipped += n;
    }

    /// A follower polled from `upto + 1`, acknowledging everything
    /// through `upto`. Only advances the high-water (a freshly
    /// reconnected follower re-polling old generations is not an ack
    /// regression).
    pub fn note_acked(&self, upto: u64) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if upto > st.acked_generation {
            st.frames_acked += upto - st.acked_generation;
            st.acked_generation = upto;
        }
    }

    /// Follower-side: the tailer is about to retry after a failure.
    /// Returns the cumulative attempt count for capped logging.
    pub fn note_reconnect(&self) -> u64 {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.reconnects += 1;
        st.reconnects
    }

    /// Point-in-time counters.
    pub fn snapshot(&self) -> HubSnapshot {
        *self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Lowercase hex, two digits per byte.
pub fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Inverse of [`hex_encode`]. Rejects odd length and non-hex bytes with
/// a message (never panics): transport corruption must surface as a
/// typed error the tailer can retry on.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    fn nibble(c: u8) -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            other => Err(format!("bad hex byte 0x{other:02x}")),
        }
    }
    let raw = s.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err(format!("odd hex length {}", raw.len()));
    }
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        let hex = hex_encode(&bytes);
        assert_eq!(hex.len(), 512);
        assert_eq!(hex_decode(&hex).unwrap(), bytes);
        assert_eq!(hex_decode("DEADbeef").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert!(hex_decode("abc").unwrap_err().contains("odd hex length"));
        assert!(hex_decode("zz").unwrap_err().contains("bad hex byte"));
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn hub_tracks_publish_acks_and_followers() {
        let hub = ReplicationHub::new(3, 7);
        assert_eq!(hub.wait_published(3, Duration::from_millis(1)), 3);
        // A timeout poll for a future generation returns the high-water.
        assert_eq!(hub.wait_published(4, Duration::from_millis(5)), 3);
        hub.notify_published(5);
        hub.notify_published(4); // stale announcement: no regression
        assert_eq!(hub.wait_published(4, Duration::from_millis(1)), 5);
        hub.subscriber_joined();
        hub.note_shipped(2);
        hub.note_acked(4);
        hub.note_acked(2); // re-poll of old generations: no regression
        hub.note_acked(5);
        assert_eq!(hub.note_reconnect(), 1);
        let snap = hub.snapshot();
        assert_eq!(snap.last_published, 5);
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.followers, 1);
        assert_eq!(snap.frames_shipped, 2);
        assert_eq!(snap.frames_acked, 5);
        assert_eq!(snap.acked_generation, 5);
        assert_eq!(snap.reconnects, 1);
        hub.subscriber_left();
        assert_eq!(hub.snapshot().followers, 0);
    }

    #[test]
    fn wait_published_wakes_on_notify() {
        use std::sync::Arc;
        let hub = Arc::new(ReplicationHub::new(0, 1));
        let waiter = {
            let hub = Arc::clone(&hub);
            std::thread::spawn(move || hub.wait_published(1, Duration::from_secs(10)))
        };
        std::thread::sleep(Duration::from_millis(20));
        hub.notify_published(1);
        assert_eq!(waiter.join().unwrap(), 1);
    }
}
