//! The daemon: listeners, the submission queue, and the runtime thread.
//!
//! Dataflow (one box per thread):
//!
//! ```text
//!  unix accept loop ─┐                         ┌─> conn handler ─┐
//!  tcp  accept loop ─┴─> one thread per conn ──┤   parse line    │
//!                                              └─> respond <─────┘
//!          conn handlers push (job_id, job) ──> submission queue
//!                                                     │ drain (batched)
//!                                                     v
//!          runtime thread: SharingService over one shared DiskGridSource
//!            - drains arrivals before every step (mid-round joiners
//!              enter at the next sweep boundary),
//!            - publishes JobReports + wakes `wait`ers as jobs finish.
//! ```
//!
//! One `SharingService` lives for the whole daemon: `Init()` preprocessing
//! and `T(E)` calibration happen once at startup, then every socket-
//! submitted job shares partition passes with whatever else is in flight —
//! the paper's concurrency story with real clients instead of an arrival
//! script.
//!
//! Batching: when the runtime is idle, the first arrival starts a round
//! only after [`ServerConfig::batch_window`] elapses, so a concurrent
//! burst of submissions lands in one admission and shares from the first
//! sweep. Jobs arriving mid-round join at the next sweep boundary.
//!
//! Roles: a daemon started with [`ServerConfig::follow`] runs as a
//! **follower** — a tailer thread subscribes to the named primary,
//! replays shipped replication frames through a
//! [`graphm_store::ReplicaApplier`] into its own store directory, and
//! the daemon serves read-only jobs on replicated generations (behind
//! [`ServerConfig::max_replica_lag`]) until a `promote` request takes it
//! through the store's epoch fence to primary.

use crate::client::{retry_delay, Client, ClientError};
use crate::ingest::IngestCoordinator;
use crate::protocol::{
    error_response, error_response_coded, parse_request, report_to_json, HealthReport, JobState,
    Priority, Request, ServerStats, ERR_LINE_TOO_LONG, ERR_NOT_PRIMARY, ERR_OVERLOADED,
    ERR_SHUTTING_DOWN, ERR_STALE_REPLICA, ERR_UNAUTHORIZED,
};
use crate::repl::{hex_encode, ReplicationHub};
use graphm_cachesim::VirtualClock;
use graphm_core::{
    GraphJob, JobId, JobReport, PartitionSource, RunnerConfig, SharingService, WallClockConfig,
    WallClockExecutor,
};
use graphm_graph::delta::{read_current_generation, DeltaRecord};
use graphm_graph::{GraphError, MemoryProfile, Result};
use graphm_store::{
    decode_frame, read_generation_frame, DeltaWriter, DiskGridSource, PrefetchTarget, Prefetcher,
    ReplicaApplier,
};
use graphm_workloads::JobSpec;
use serde_json::{json, Value};
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long one `repl_frames` request may wait for a fresh publish
/// before answering with an empty frame list. Followers poll with a
/// read timeout comfortably above this (see [`REPL_READ_TIMEOUT`]).
const REPL_LONG_POLL: Duration = Duration::from_millis(750);

/// Follower tailer's socket read timeout, so a primary that dies
/// without an RST surfaces as an `Io` error instead of a hung tailer.
const REPL_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Backoff exponent cap for follower reconnects: caps the retry storm
/// at `repl_backoff * 2^6` per attempt (attempts are counted and
/// surfaced by `repl_status`).
const REPL_MAX_BACKOFF_EXP: u32 = 6;

/// How the runtime thread executes jobs.
///
/// Both modes drain the same submission queue into the same shared-store
/// sharing runtime and produce **algorithmically identical** reports
/// (same vertex values, same converged iteration counts) — they differ
/// only in what the timing fields mean and how fast the wall clock moves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Bit-exact virtual-time replay through the simulated memory
    /// hierarchy (`SharingService`) on one OS thread — what tests and
    /// figure harnesses compare against.
    #[default]
    Deterministic,
    /// Real parallel serving: one OS thread per job over the threaded
    /// `SharingRuntime` (`WallClockExecutor`), with a partition
    /// [`Prefetcher`] reading the §4 loading order ahead. Report timing
    /// fields carry wall-clock nanoseconds; `instructions` and the
    /// simulated clock breakdown are zero.
    Wallclock,
}

impl ExecutionMode {
    /// CLI / wire name.
    pub fn name(self) -> &'static str {
        match self {
            ExecutionMode::Deterministic => "deterministic",
            ExecutionMode::Wallclock => "wallclock",
        }
    }

    /// Parses a CLI / wire name.
    pub fn from_name(s: &str) -> Option<ExecutionMode> {
        match s {
            "deterministic" => Some(ExecutionMode::Deterministic),
            "wallclock" => Some(ExecutionMode::Wallclock),
            _ => None,
        }
    }
}

/// How a daemon is configured.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Directory holding a grid store written by `graphm-convert` /
    /// `Convert::grid`. Opened read-only through the shared-mapping
    /// registry; the daemon never writes it (single-writer/multi-reader —
    /// see `docs/ARCHITECTURE.md`).
    pub store_dir: PathBuf,
    /// Unix-domain socket to listen on (removed and re-created at bind).
    pub socket_path: Option<PathBuf>,
    /// TCP address to listen on, e.g. `"127.0.0.1:7421"` (port 0 picks a
    /// free port; read it back with [`Server::tcp_addr`]).
    pub tcp_addr: Option<String>,
    /// Simulated memory hierarchy for the runtime (the same profile a
    /// `Workbench` would use; out-of-core is derived from the store size
    /// exactly like `Workbench::runner_config`).
    pub profile: MemoryProfile,
    /// Idle-round batching window: how long the runtime waits after the
    /// first arrival of a fresh round before draining, so a concurrent
    /// burst shares from sweep one.
    pub batch_window: Duration,
    /// Formula-1 `U_v` used for chunk sizing (8 covers every shipped
    /// algorithm; see `SharingService::new`).
    pub state_bytes_per_vertex: usize,
    /// How many finished reports to retain for `wait`/`status` (each
    /// holds an `O(num_vertices)` values vector, so unbounded retention
    /// would grow a long-lived daemon without limit). Oldest finished
    /// jobs are evicted past this cap; waiting on an evicted id reports
    /// an unknown job.
    pub max_done_reports: usize,
    /// How the runtime thread executes jobs (see [`ExecutionMode`]).
    pub mode: ExecutionMode,
    /// Page-cache budget for the served store, in bytes (0 = unlimited).
    /// When modeled residency exceeds it, the store releases segments
    /// behind the sweep frontier with `madvise(MADV_DONTNEED)` and the
    /// `stats` response reports resident/evicted bytes.
    pub memory_budget_bytes: u64,
    /// Adaptive prefetch window (wallclock mode): on (default) lets the
    /// store's feedback controller size the readahead depth from
    /// issued/hits and residency pressure; off advises the full announced
    /// lookahead (the pre-adaptive fixed-depth behaviour).
    pub adaptive_prefetch: bool,
    /// Maximum announced prefetch lookahead (wallclock mode).
    pub max_prefetch_lookahead: usize,
    /// Intra-job chunk fan-out across the worker pool (wallclock mode):
    /// on (default) lets a single heavy job use idle cores.
    pub chunk_fanout: bool,
    /// Check the store's `CURRENT` pointer between rounds and rotate to
    /// newly published delta generations (on by default; `--no-rotate`
    /// pins the daemon to its open-time generation). Jobs always run
    /// entirely within one generation — rotation happens only while no
    /// round is in flight, and mutated graphs re-run `Init()`
    /// preprocessing before the next round.
    pub auto_rotate: bool,
    /// Serve `ingest`/`ingest_commit` sessions (off by default). When on,
    /// the daemon acquires the store's **writer lease** at startup —
    /// startup fails with [`GraphError::LeaseHeld`] if another writer
    /// (e.g. a `graphm-delta` process) holds it — and multiplexes client
    /// mutation batches through one group-commit [`IngestCoordinator`].
    /// Off keeps the daemon a pure reader, compatible with an external
    /// writer publishing generations it rotates to.
    pub enable_ingest: bool,
    /// Admission control: submissions beyond this many pending jobs are
    /// rejected with a typed `overloaded` error instead of queuing
    /// without bound (0 = unlimited, the pre-admission behaviour).
    pub max_pending: usize,
    /// Connection limit: accepts beyond this many live connections get
    /// one typed `overloaded` error line and are closed (0 = unlimited).
    pub max_connections: usize,
    /// Per-read socket timeout: a connection that sends no byte for this
    /// long is closed, so half-dead clients cannot hold connection slots
    /// forever (zero = no timeout).
    pub read_timeout: Duration,
    /// Cap on one request line's bytes; longer lines are discarded
    /// unparsed and answered with a typed `line_too_long` error (the
    /// connection stays usable — framing is recovered at the newline).
    pub max_line_bytes: usize,
    /// Per-tenant cap on *queued* submissions (0 = unlimited). Beyond it
    /// that tenant's submissions are shed with `overloaded`; other
    /// tenants are unaffected.
    pub tenant_max_pending: usize,
    /// Per-tenant cap on queued + running jobs (0 = unlimited).
    pub tenant_max_inflight: usize,
    /// Round-size policy: at most this many `Priority::Batch` jobs are
    /// admitted into one round/batch (0 = unlimited). `Interactive` jobs
    /// always join the next round, so a latency-sensitive tenant is never
    /// stuck behind a hundred-job batch backlog.
    pub max_batch_per_round: usize,
    /// Out-of-core admission signal: when the EWMA of store partition
    /// evictions per round exceeds this, `Batch` submissions are shed
    /// with `overloaded` while `Interactive` ones are still admitted
    /// (0.0 = disabled). Sustained eviction churn means the working set
    /// no longer fits the memory budget — adding batch work would only
    /// deepen the thrash.
    pub shed_eviction_rate: f64,
    /// Shared-secret listener auth: when set, TCP connections must send
    /// `auth` with this token before any other request (typed
    /// `unauthorized` otherwise). Unix-socket connections are exempt —
    /// the filesystem already gates them — but their `SO_PEERCRED`
    /// identity is logged at accept, so tenant names are attributable.
    pub auth_token: Option<String>,
    /// Follower role: tail this primary address (TCP, e.g.
    /// `"127.0.0.1:7421"`), replaying its replication frames into
    /// `store_dir`. Mutually exclusive with [`ServerConfig::enable_ingest`]
    /// (a follower owns its store's writer lease through the applier,
    /// not the ingest coordinator) — `promote` flips the role live.
    pub follow: Option<String>,
    /// Follower staleness bound: reject `submit` with a typed
    /// `stale_replica` error while the replica is more than this many
    /// generations behind the primary's observed high-water
    /// (0 = serve at any lag, the default).
    pub max_replica_lag: u64,
    /// Base delay for the follower tailer's full-jitter exponential
    /// reconnect backoff (the same curve as `graphm-client
    /// --backoff-ms`; exponent capped so retry storms stay bounded).
    pub repl_backoff: Duration,
}

impl ServerConfig {
    /// Defaults over `store_dir`: no listeners yet (set at least one),
    /// `MemoryProfile::DEFAULT`, a 20 ms batch window, 8-byte `U_v`.
    pub fn new(store_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            store_dir: store_dir.into(),
            socket_path: None,
            tcp_addr: None,
            profile: MemoryProfile::DEFAULT,
            batch_window: Duration::from_millis(20),
            state_bytes_per_vertex: 8,
            max_done_reports: 1024,
            mode: ExecutionMode::Deterministic,
            memory_budget_bytes: 0,
            adaptive_prefetch: true,
            max_prefetch_lookahead: graphm_store::DEFAULT_MAX_PREFETCH_LOOKAHEAD,
            chunk_fanout: true,
            auto_rotate: true,
            enable_ingest: false,
            max_pending: 0,
            max_connections: 0,
            read_timeout: Duration::ZERO,
            max_line_bytes: 1 << 20,
            tenant_max_pending: 0,
            tenant_max_inflight: 0,
            max_batch_per_round: 0,
            shed_eviction_rate: 0.0,
            auth_token: None,
            follow: None,
            max_replica_lag: 0,
            repl_backoff: Duration::from_millis(200),
        }
    }
}

/// Daemon-side job lifecycle entry.
enum JobEntry {
    Queued,
    Running,
    Done(Arc<JobReport>),
}

/// One admitted-but-not-yet-running submission.
struct Pending {
    id: JobId,
    spec: JobSpec,
    tenant: String,
    priority: Priority,
}

/// Submission queue: ids are assigned here, in push order. Specs, not
/// instantiated jobs, are queued: instantiation happens at drain time on
/// the runtime thread, so a job's out-degrees always match the generation
/// of the round it runs in. `Priority::Batch` entries may be *retained*
/// across drains by the round-size policy, so drain order is no longer
/// guaranteed to match service-id order — the runtime keeps an explicit
/// service-id → daemon-id map instead.
///
/// The per-tenant gauges back admission quotas: `queued` counts entries
/// still in `pending`; `inflight` counts queued + running (decremented
/// when the job's report is published). Zeroed entries are removed so the
/// maps don't grow with tenant-name churn.
struct Queue {
    next_id: JobId,
    pending: VecDeque<Pending>,
    queued_by_tenant: HashMap<String, u64>,
    inflight_by_tenant: HashMap<String, u64>,
}

impl Queue {
    fn dec(map: &mut HashMap<String, u64>, tenant: &str) {
        if let Some(n) = map.get_mut(tenant) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                map.remove(tenant);
            }
        }
    }
}

/// Pops every admissible pending entry, honouring the round-size policy:
/// `Interactive` jobs always drain; `Batch` jobs drain while the round's
/// remaining `batch_budget` allows, and the rest stay queued *in order*
/// for a later round. The budget is shared across all of one round's
/// drains (the runtime drains before every step), so a deep batch backlog
/// cannot trickle past the cap mid-round.
fn drain_admissible(q: &mut Queue, batch_budget: &mut usize) -> Vec<Pending> {
    let mut admitted = Vec::new();
    let mut retained = VecDeque::new();
    while let Some(p) = q.pending.pop_front() {
        let admit = p.priority == Priority::Interactive || *batch_budget > 0;
        if admit {
            if p.priority == Priority::Batch {
                *batch_budget -= 1;
            }
            Queue::dec(&mut q.queued_by_tenant, &p.tenant);
            admitted.push(p);
        } else {
            retained.push_back(p);
        }
    }
    q.pending = retained;
    admitted
}

/// Job lifecycle table with bounded retention of finished reports.
struct JobsTable {
    entries: HashMap<JobId, JobEntry>,
    /// Finished ids, oldest first, for eviction past `retain`.
    done_order: VecDeque<JobId>,
    retain: usize,
}

impl JobsTable {
    /// Marks `id` done and evicts the oldest finished entries past the
    /// retention cap (in-flight responders keep their `Arc` alive).
    fn finish(&mut self, report: JobReport) {
        let id = report.id;
        self.entries.insert(id, JobEntry::Done(Arc::new(report)));
        self.done_order.push_back(id);
        while self.done_order.len() > self.retain.max(1) {
            if let Some(old) = self.done_order.pop_front() {
                self.entries.remove(&old);
            }
        }
    }
}

/// Admission-control knobs, copied out of [`ServerConfig`] so connection
/// handlers don't carry the whole config around.
struct Admission {
    max_pending: usize,
    tenant_max_pending: usize,
    tenant_max_inflight: usize,
    shed_eviction_rate: f64,
}

/// State shared between listeners, connection handlers, and the runtime.
///
/// Lock order: `queue` before `jobs` before `stats`; never the reverse.
struct Shared {
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    jobs: Mutex<JobsTable>,
    done_cv: Condvar,
    stats: Mutex<ServerStats>,
    admission: Admission,
    /// Live connection-handler count, for the connection limit.
    connections: AtomicUsize,
    max_connections: usize,
    /// Request-line byte cap (see [`ServerConfig::max_line_bytes`]).
    max_line_bytes: usize,
    /// Daemon start time, for `health` uptime.
    started: Instant,
    shutdown: AtomicBool,
    /// Set (under the `jobs` lock) when the runtime thread exits, so
    /// `wait`ers can fail cleanly instead of blocking on a job that will
    /// never be drained.
    runtime_exited: AtomicBool,
    num_vertices: u32,
    /// Out-degrees of the served generation's merged view; replaced by
    /// the runtime thread on every rotation (PageRank-family jobs divide
    /// by them, so they must match the graph the job streams).
    out_degrees: Mutex<Arc<Vec<u32>>>,
    /// The served store, for live residency/prefetch/generation readings
    /// in `stats` responses (counters accumulate in both execution
    /// modes).
    store: Arc<DiskGridSource>,
    /// Group-commit ingest over the store's leased writer; `None` unless
    /// [`ServerConfig::enable_ingest`] was set. Behind a mutex so graceful
    /// shutdown can *take* it — dropping the coordinator releases the
    /// writer lease as soon as in-flight commits (holding `Arc` clones)
    /// finish, letting an external writer take over without waiting for
    /// the daemon process to exit.
    ingest: Mutex<Option<Arc<IngestCoordinator>>>,
    /// The served store directory, for rebuilding replication frames
    /// from committed generations on demand.
    store_dir: PathBuf,
    /// Replication ledger and publish-notify signal (both roles).
    hub: ReplicationHub,
    /// Shared listener secret (see [`ServerConfig::auth_token`]).
    auth_token: Option<String>,
    /// `true` while this daemon is a follower replica; flipped to
    /// `false` (primary) by a successful `promote`.
    role_follower: AtomicBool,
    /// The primary this follower tails (empty string on a primary).
    peer: String,
    /// Follower staleness bound (see [`ServerConfig::max_replica_lag`]).
    max_replica_lag: u64,
    /// Highest primary generation the tailer has observed — minus
    /// `applied_gen`, the replica lag.
    primary_gen_seen: AtomicU64,
    /// Highest generation durably applied by this follower's applier.
    applied_gen: AtomicU64,
    /// The follower's frame applier; `promote` *takes* it to reopen the
    /// store's writer through the epoch fence. `None` on primaries.
    applier: Mutex<Option<ReplicaApplier>>,
}

impl Shared {
    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.queue_cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Runtime counters merged with the store's *live* residency and
    /// prefetch state (the latter accumulate outside the stats lock, in
    /// whichever execution mode is driving loads).
    fn stats_snapshot(&self) -> ServerStats {
        let mut stats = *self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let rs = self.store.residency_stats();
        stats.resident_bytes = rs.resident_bytes;
        stats.evicted_bytes = rs.evicted_bytes;
        stats.evictions = rs.evictions;
        stats.memory_budget_bytes = rs.budget_bytes;
        stats.prefetch_window = rs.prefetch_window;
        let pf = self.store.prefetch_stats();
        stats.prefetch_issued = pf.issued;
        stats.prefetch_hits = pf.hits;
        let ds = self.store.delta_stats();
        stats.generation = ds.generation;
        stats.generation_rotations = ds.rotations;
        stats.delta_bytes = ds.delta_bytes;
        stats.delta_records = ds.delta_records;
        stats.compactions = ds.compactions;
        if let Some(ingest) = self.ingest_handle() {
            let (wal, epoch) = ingest.writer_stats();
            stats.delta_wal_records = wal.records;
            stats.delta_wal_batches = wal.batches;
            stats.delta_wal_syncs = wal.syncs;
            stats.delta_wal_bytes = wal.bytes;
            stats.lease_epoch = epoch;
            stats.lease_held = 1;
            let is = ingest.stats();
            stats.ingest_commits = is.commits;
            stats.ingest_groups = is.groups;
        }
        let hub = self.hub.snapshot();
        stats.repl_frames_shipped = hub.frames_shipped;
        stats.repl_frames_acked = hub.frames_acked;
        stats.repl_followers = hub.followers;
        stats.repl_reconnects = hub.reconnects;
        stats.queue_depth =
            self.queue.lock().unwrap_or_else(|e| e.into_inner()).pending.len() as u64;
        stats
    }

    /// Whether this daemon currently serves as a follower replica.
    fn is_follower(&self) -> bool {
        self.role_follower.load(Ordering::SeqCst)
    }

    /// How many generations this follower trails the primary's observed
    /// high-water (0 on primaries by construction).
    fn replica_lag(&self) -> u64 {
        self.primary_gen_seen
            .load(Ordering::SeqCst)
            .saturating_sub(self.applied_gen.load(Ordering::SeqCst))
    }

    /// The lease epoch frames from this daemon carry: the ingest
    /// writer's on a primary, the applier's on a follower.
    fn current_epoch(&self) -> u64 {
        if let Some(ingest) = self.ingest_handle() {
            return ingest.writer_stats().1;
        }
        match self.applier.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
            Some(applier) => applier.lease_epoch(),
            None => self.hub.snapshot().epoch,
        }
    }

    /// Clones the ingest coordinator handle, if still held (graceful
    /// shutdown takes it to release the writer lease early).
    fn ingest_handle(&self) -> Option<Arc<IngestCoordinator>> {
        self.ingest.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Point-in-time liveness/readiness snapshot for the `health` verb.
    fn health_snapshot(&self) -> HealthReport {
        let queue_depth = self.queue.lock().unwrap_or_else(|e| e.into_inner()).pending.len() as u64;
        let running = {
            let jobs = self.jobs.lock().unwrap_or_else(|e| e.into_inner());
            jobs.entries.values().filter(|e| matches!(e, JobEntry::Running)).count() as u64
        };
        let (lease_held, lease_epoch) = match self.ingest_handle() {
            Some(ingest) => {
                let (_, epoch) = ingest.writer_stats();
                (true, epoch)
            }
            // A follower holds its store's lease through the applier.
            None => match self.applier.lock().unwrap_or_else(|e| e.into_inner()).as_ref() {
                Some(applier) => (true, applier.lease_epoch()),
                None => (false, 0),
            },
        };
        let follower = self.is_follower();
        HealthReport {
            lease_held,
            lease_epoch,
            generation: self.store.delta_stats().generation,
            queue_depth,
            running,
            resident_bytes: self.store.residency_stats().resident_bytes,
            uptime_ms: self.started.elapsed().as_millis() as u64,
            shutting_down: self.shutdown.load(Ordering::SeqCst),
            role: if follower { "follower".to_string() } else { "primary".to_string() },
            replica_lag_generations: if follower { self.replica_lag() } else { 0 },
            peer: if follower { self.peer.clone() } else { String::new() },
        }
    }

    /// Instantiates a spec against the currently served generation.
    fn instantiate(&self, spec: &JobSpec) -> Box<dyn GraphJob> {
        let degrees = Arc::clone(&self.out_degrees.lock().unwrap_or_else(|e| e.into_inner()));
        spec.instantiate(self.num_vertices, &degrees)
    }
}

/// A running daemon. Dropping it (or calling [`Server::shutdown`]) stops
/// the listeners, drains the queue, and joins the runtime thread.
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    socket_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Opens the store, starts the runtime thread and the configured
    /// listeners, and returns once all are accepting.
    pub fn start(config: ServerConfig) -> Result<Server> {
        if config.socket_path.is_none() && config.tcp_addr.is_none() {
            return Err(GraphError::Format(
                "server config needs a unix socket path or a tcp address".to_string(),
            ));
        }
        if config.follow.is_some() && config.enable_ingest {
            return Err(GraphError::Format(
                "a follower cannot also serve ingest (it writes only replicated frames); \
                 drop --ingest or --follow"
                    .to_string(),
            ));
        }
        // Ingest acquires the writer lease up front: failing here (e.g. a
        // graphm-delta process holds the store) beats failing on the
        // first client commit. Opening the writer *before* the reader
        // also replays any crashed writer's WAL first, so the daemon
        // starts serving the recovered generation directly.
        let ingest = if config.enable_ingest {
            Some(Arc::new(IngestCoordinator::new(DeltaWriter::open(&config.store_dir)?)))
        } else {
            None
        };
        // A follower owns its store's writer lease through the frame
        // applier instead — opened before the reader for the same
        // WAL-replay reason (a follower killed mid-apply recovers to a
        // publish boundary before serving).
        let applier = if config.follow.is_some() {
            Some(ReplicaApplier::open(&config.store_dir)?)
        } else {
            None
        };
        let source = DiskGridSource::open_shared(&config.store_dir)?;
        source.set_memory_budget(config.memory_budget_bytes);
        source.set_adaptive_prefetch(config.adaptive_prefetch);
        source.set_prefetch_max_lookahead(config.max_prefetch_lookahead.max(1));
        let out_degrees = Mutex::new(Arc::new(source.out_degrees()));
        let num_vertices = PartitionSource::num_vertices(source.as_ref());
        let num_partitions = source.num_partitions() as u64;
        let current_gen = source.delta_stats().generation;
        let epoch = match (&ingest, &applier) {
            (Some(ingest), _) => ingest.writer_stats().1,
            (_, Some(applier)) => applier.lease_epoch(),
            _ => 0,
        };

        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                next_id: 0,
                pending: VecDeque::new(),
                queued_by_tenant: HashMap::new(),
                inflight_by_tenant: HashMap::new(),
            }),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(JobsTable {
                entries: HashMap::new(),
                done_order: VecDeque::new(),
                retain: config.max_done_reports,
            }),
            done_cv: Condvar::new(),
            stats: Mutex::new(ServerStats {
                num_partitions,
                num_vertices: num_vertices as u64,
                ..ServerStats::default()
            }),
            admission: Admission {
                max_pending: config.max_pending,
                tenant_max_pending: config.tenant_max_pending,
                tenant_max_inflight: config.tenant_max_inflight,
                shed_eviction_rate: config.shed_eviction_rate,
            },
            connections: AtomicUsize::new(0),
            max_connections: config.max_connections,
            max_line_bytes: config.max_line_bytes.max(64),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            runtime_exited: AtomicBool::new(false),
            num_vertices,
            out_degrees,
            store: Arc::clone(&source),
            ingest: Mutex::new(ingest),
            store_dir: config.store_dir.clone(),
            hub: ReplicationHub::new(current_gen, epoch),
            auth_token: config.auth_token.clone(),
            role_follower: AtomicBool::new(config.follow.is_some()),
            peer: config.follow.clone().unwrap_or_default(),
            max_replica_lag: config.max_replica_lag,
            primary_gen_seen: AtomicU64::new(current_gen),
            applied_gen: AtomicU64::new(current_gen),
            applier: Mutex::new(applier),
        });

        // Bind every listener *before* spawning any thread: a bind
        // failure must return cleanly, not leak a parked runtime thread
        // (which would also pin the shared store mapping).
        let unix = match &config.socket_path {
            Some(path) => {
                // A stale socket file from a dead daemon would fail the
                // bind; a *live* daemon's socket is taken over the same
                // way, so point two daemons at distinct paths.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Some((listener, path.clone()))
            }
            None => None,
        };
        let tcp = match &config.tcp_addr {
            Some(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                listener.set_nonblocking(true)?;
                let local = listener.local_addr()?;
                Some((listener, local))
            }
            None => None,
        };

        // From here on, an error must tear down what already started.
        let mut threads: Vec<JoinHandle<()>> = Vec::new();
        let socket_path = unix.as_ref().map(|(_, path)| path.clone());
        let abort = |threads: &mut Vec<JoinHandle<()>>, e: std::io::Error| {
            shared.request_shutdown();
            for t in threads.drain(..) {
                let _ = t.join();
            }
            if let Some(path) = &socket_path {
                let _ = std::fs::remove_file(path);
            }
            GraphError::Io(e)
        };
        {
            let shared = Arc::clone(&shared);
            let window = config.batch_window;
            let sbpv = config.state_bytes_per_vertex.max(1);
            let mode = config.mode;
            let profile = config.profile;
            let auto_rotate = config.auto_rotate;
            let max_batch = config.max_batch_per_round;
            let wall_cfg = WallClockConfig {
                state_bytes_per_vertex: sbpv,
                max_prefetch_lookahead: config.max_prefetch_lookahead.max(1),
                chunk_fanout: config.chunk_fanout,
                ..WallClockConfig::new(config.profile)
            };
            let spawned = std::thread::Builder::new()
                .name("graphm-runtime".to_string())
                .spawn(move || {
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match mode {
                            ExecutionMode::Deterministic => runtime_loop(
                                &shared,
                                &source,
                                profile,
                                sbpv,
                                window,
                                auto_rotate,
                                max_batch,
                            ),
                            ExecutionMode::Wallclock => runtime_loop_wallclock(
                                &shared,
                                source,
                                wall_cfg,
                                window,
                                auto_rotate,
                                max_batch,
                            ),
                        }));
                    if result.is_err() {
                        // A runtime panic (e.g. thread-spawn exhaustion in
                        // a wallclock batch) must not strand clients: stop
                        // admissions and fail every waiter cleanly instead
                        // of leaving them parked on done_cv forever.
                        shared.request_shutdown();
                        publish_runtime_exit(&shared);
                    }
                })
                .map_err(|e| abort(&mut threads, e));
            threads.push(spawned?);
        }
        if let Some(peer) = config.follow.clone() {
            let shared = Arc::clone(&shared);
            let token = config.auth_token.clone();
            let backoff_ms = config.repl_backoff.as_millis().max(1) as u64;
            let spawned = std::thread::Builder::new()
                .name("graphm-repl-tail".to_string())
                .spawn(move || follower_tail_loop(&shared, &peer, token.as_deref(), backoff_ms))
                .map_err(|e| abort(&mut threads, e));
            threads.push(spawned?);
        }
        let read_timeout = config.read_timeout;
        if let Some((listener, _)) = unix {
            let shared_for_loop = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name("graphm-accept-unix".to_string())
                .spawn(move || accept_loop(listener_unix(listener, read_timeout), &shared_for_loop))
                .map_err(|e| abort(&mut threads, e));
            threads.push(spawned?);
        }
        let tcp_addr = match tcp {
            Some((listener, local)) => {
                let shared_for_loop = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("graphm-accept-tcp".to_string())
                    .spawn(move || {
                        accept_loop(listener_tcp(listener, read_timeout), &shared_for_loop)
                    })
                    .map_err(|e| abort(&mut threads, e));
                threads.push(spawned?);
                Some(local)
            }
            None => None,
        };

        Ok(Server { shared, threads, socket_path, tcp_addr })
    }

    /// The unix socket the daemon listens on, if configured.
    pub fn socket_path(&self) -> Option<&Path> {
        self.socket_path.as_deref()
    }

    /// The TCP address the daemon listens on, if configured (with the
    /// real port when the config asked for port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Current daemon-wide counters (runtime counters plus the store's
    /// live residency/prefetch state).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats_snapshot()
    }

    /// Whether a shutdown has been requested (via this handle or a
    /// client's `shutdown` command).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Blocks until the daemon's threads exit (after a `shutdown` request
    /// from any client or [`Server::shutdown`] from another thread).
    pub fn join(mut self) {
        self.join_threads();
    }

    /// Requests shutdown and joins all daemon threads. Queued jobs still
    /// run to completion; connections waiting on them are answered first.
    pub fn shutdown(mut self) {
        self.shared.request_shutdown();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shared.request_shutdown();
        self.join_threads();
    }
}

// ---------------------------------------------------------------------------
// Runtime thread.
// ---------------------------------------------------------------------------

/// Derives the deterministic runner config for the store's *current*
/// generation — the same derivation as `Workbench::runner_config`, so
/// socket-submitted jobs replay identically to in-process runs over the
/// same (possibly mutated) store.
fn runner_config_for(store: &DiskGridSource, profile: MemoryProfile) -> RunnerConfig {
    let mut cfg = RunnerConfig::new(profile);
    cfg.out_of_core = PartitionSource::graph_bytes(store) > profile.memory_bytes;
    cfg
}

fn runtime_loop(
    shared: &Shared,
    store: &Arc<DiskGridSource>,
    profile: MemoryProfile,
    state_bytes_per_vertex: usize,
    batch_window: Duration,
    auto_rotate: bool,
    max_batch_per_round: usize,
) {
    let source: &dyn PartitionSource = store.as_ref();
    let mut svc =
        SharingService::new(source, runner_config_for(store, profile), state_bytes_per_vertex);
    // Service ids restart at 0 whenever a rotation rebuilds the service,
    // and the round-size policy may reorder admission across priorities,
    // so finished service ids are mapped back to (daemon id, tenant)
    // explicitly. The `loads`/`vnow` bases keep the published counters
    // cumulative and monotone across rebuilds.
    let mut sid_map: HashMap<JobId, (JobId, String)> = HashMap::new();
    let mut loads_base = 0u64;
    let mut vnow_base = 0.0f64;
    let mut served_gen = store.generation();
    let mut last_evictions = store.residency_stats().evictions;
    let mut eviction_ewma = 0.0f64;
    {
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.chunk_bytes = svc.chunk_bytes() as u64;
    }
    loop {
        // Idle: wait for the first arrival of the next round (or shutdown).
        {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while q.pending.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.pending.is_empty() {
                break; // Shutdown with an empty queue.
            }
        }
        // Between rounds — no job in flight — adopt any newly published
        // delta generation: rotate the store's view, recompute the merged
        // out-degrees, and re-run Init() preprocessing (chunk tables are
        // per-generation). Jobs queued for this round run entirely
        // against the rotated graph.
        if auto_rotate {
            // The idle service still holds its preprocessing-time
            // generation pin; drop it so the refresh below adopts a new
            // generation immediately instead of staging it behind the
            // pin (this round's jobs must run on the rotated graph, not
            // rotate it mid-flight at the first sweep boundary).
            svc.release_idle_pin();
            if let Err(e) = store.refresh_generation() {
                // A corrupt CURRENT / generation manifest must not look
                // like "no publish happened": keep serving the pinned
                // generation, but say so.
                eprintln!(
                    "[graphm-server] generation refresh failed, serving gen {served_gen}: {e}"
                );
            }
            // Rebuild on the *observed* generation, not refresh's return
            // value: with several runtimes sharing one store handle, a
            // peer may have adopted the rotation first.
            if store.generation() != served_gen {
                debug_assert_eq!(svc.jobs_unfinished(), 0, "rotation only between rounds");
                debug_assert!(sid_map.is_empty(), "finished jobs published before rotation");
                served_gen = store.generation();
                sid_map.clear();
                loads_base += svc.partition_loads();
                vnow_base += svc.now_ns();
                svc = SharingService::new(
                    source,
                    runner_config_for(store, profile),
                    state_bytes_per_vertex,
                );
                *shared.out_degrees.lock().unwrap_or_else(|e| e.into_inner()) =
                    Arc::new(store.out_degrees());
                let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                stats.chunk_bytes = svc.chunk_bytes() as u64;
            }
        }
        // Let the concurrent burst land in one admission.
        if !batch_window.is_zero() {
            std::thread::sleep(batch_window);
        }
        {
            // Counted at round start so it is stable by the time any job
            // of this round reports done.
            let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.rounds += 1;
        }
        // Round: drain arrivals before every step so mid-round submitters
        // join at the next sweep boundary; publish finishers as they come.
        // The batch budget is per *round*: mid-round drains share it, so a
        // deep Batch backlog cannot trickle past the cap one step at a
        // time while Interactive submissions always join immediately.
        let mut batch_budget =
            if max_batch_per_round == 0 { usize::MAX } else { max_batch_per_round };
        loop {
            let drained: Vec<Pending> = {
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                drain_admissible(&mut q, &mut batch_budget)
            };
            if !drained.is_empty() {
                let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
                for p in drained {
                    // Instantiated here — not at submit — so the job's
                    // out-degrees match this round's generation.
                    let sid = svc.submit(shared.instantiate(&p.spec));
                    sid_map.insert(sid, (p.id, p.tenant));
                    jobs.entries.insert(p.id, JobEntry::Running);
                }
            }
            let more = svc.step();
            publish_finished(shared, &mut svc, &mut sid_map, loads_base, vnow_base);
            if !more {
                break;
            }
        }
        // Per-round eviction-rate EWMA: the admission signal for Batch
        // shedding under out-of-core thrash (see `shed_eviction_rate`).
        let ev = store.residency_stats().evictions;
        eviction_ewma = 0.5 * eviction_ewma + 0.5 * ev.saturating_sub(last_evictions) as f64;
        last_evictions = ev;
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.eviction_rate = eviction_ewma;
        drop(stats);
    }
    publish_runtime_exit(shared);
}

/// Publishes the runtime thread's exit under the jobs lock so a waiter's
/// check-then-wait cannot race past it, then wakes every waiter for its
/// final check.
fn publish_runtime_exit(shared: &Shared) {
    // Graceful shutdown releases the store's writer lease here, once no
    // more rounds will run: dropping the coordinator closes the leased
    // `DeltaWriter` as soon as in-flight commits (holding `Arc` clones)
    // drain, so an external writer can take over without waiting for the
    // daemon process to exit.
    drop(shared.ingest.lock().unwrap_or_else(|e| e.into_inner()).take());
    let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    shared.runtime_exited.store(true, Ordering::SeqCst);
    drop(jobs);
    shared.done_cv.notify_all();
}

/// The wall-clock runtime: drains submission batches into a
/// [`WallClockExecutor`] — one OS thread per job over the threaded
/// sharing runtime, partition readahead fed by the §4 loading order.
/// Jobs arriving while a batch is running join the next batch (the next
/// "round" here is a whole executor batch rather than a sweep).
///
/// Report mapping: vertex values, iterations, and edges processed are the
/// real algorithm outcome (identical to deterministic mode); `submit_ns`/
/// `finish_ns` are wall nanoseconds since the runtime started;
/// `clock.compute_ns` carries the job thread's wall time; `instructions`
/// and the remaining simulated-clock fields are zero.
fn runtime_loop_wallclock(
    shared: &Shared,
    source: Arc<DiskGridSource>,
    cfg: WallClockConfig,
    batch_window: Duration,
    auto_rotate: bool,
    max_batch_per_round: usize,
) {
    let prefetcher = Prefetcher::spawn(Arc::clone(&source) as Arc<dyn PrefetchTarget>);
    let mut exec = WallClockExecutor::new(
        Arc::clone(&source) as Arc<dyn PartitionSource>,
        cfg.clone(),
        Some(prefetcher.hook()),
    );
    {
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.chunk_bytes = exec.chunk_bytes() as u64;
    }
    let epoch = std::time::Instant::now();
    let mut loads_total = 0u64;
    let mut served_gen = source.generation();
    let mut last_evictions = source.residency_stats().evictions;
    let mut eviction_ewma = 0.0f64;
    loop {
        // Idle: wait for the first arrival of the next round (or shutdown).
        {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while q.pending.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                q = shared.queue_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            if q.pending.is_empty() {
                break; // Shutdown with an empty queue.
            }
        }
        // Between batches — no executor run in flight — adopt any newly
        // published delta generation and re-run Init() over the rotated
        // view (chunk tables and out-degrees are per-generation). The
        // prefetcher keeps feeding the same store handle.
        if auto_rotate {
            if let Err(e) = source.refresh_generation() {
                eprintln!(
                    "[graphm-server] generation refresh failed, serving gen {served_gen}: {e}"
                );
            }
            if source.generation() != served_gen {
                served_gen = source.generation();
                exec = WallClockExecutor::new(
                    Arc::clone(&source) as Arc<dyn PartitionSource>,
                    cfg.clone(),
                    Some(prefetcher.hook()),
                );
                *shared.out_degrees.lock().unwrap_or_else(|e| e.into_inner()) =
                    Arc::new(source.out_degrees());
                let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                stats.chunk_bytes = exec.chunk_bytes() as u64;
            }
        }
        // Let the concurrent burst land in one batch.
        if !batch_window.is_zero() {
            std::thread::sleep(batch_window);
        }
        {
            let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
            stats.rounds += 1;
        }
        loop {
            // Each executor batch is one "round" for the round-size
            // policy: a fresh budget per drain, Interactive always joins.
            let mut batch_budget =
                if max_batch_per_round == 0 { usize::MAX } else { max_batch_per_round };
            let drained: Vec<Pending> = {
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                drain_admissible(&mut q, &mut batch_budget)
            };
            if drained.is_empty() {
                break;
            }
            let mut ids = Vec::with_capacity(drained.len());
            let mut tenants = Vec::with_capacity(drained.len());
            let mut batch = Vec::with_capacity(drained.len());
            {
                let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
                for p in drained {
                    jobs.entries.insert(p.id, JobEntry::Running);
                    ids.push(p.id);
                    tenants.push(p.tenant);
                    batch.push(shared.instantiate(&p.spec));
                }
            }
            let batch_start_ns = epoch.elapsed().as_nanos() as f64;
            let round = exec.run_batch(batch);
            loads_total += round.partition_loads;
            let finished: Vec<JobReport> = round
                .jobs
                .into_iter()
                .zip(&ids)
                .map(|(wj, &id)| JobReport {
                    id,
                    name: wj.name,
                    iterations: wj.iterations,
                    clock: VirtualClock {
                        compute_ns: wj.busy_ms * 1e6,
                        mem_access_ns: 0.0,
                        disk_ns: 0.0,
                        sync_ns: 0.0,
                    },
                    instructions: 0,
                    edges_processed: wj.edges_processed,
                    submit_ns: batch_start_ns,
                    finish_ns: batch_start_ns + wj.finish_ms * 1e6,
                    values: wj.values,
                    error: wj.error,
                })
                .collect();
            let failed = finished.iter().filter(|r| r.error.is_some()).count() as u64;
            {
                let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                for t in &tenants {
                    Queue::dec(&mut q.inflight_by_tenant, t);
                }
            }
            let ev = source.residency_stats().evictions;
            eviction_ewma = 0.5 * eviction_ewma + 0.5 * ev.saturating_sub(last_evictions) as f64;
            last_evictions = ev;
            {
                let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                stats.partition_loads = loads_total;
                stats.virtual_ns = epoch.elapsed().as_nanos() as f64;
                stats.jobs_completed += finished.len() as u64 - failed;
                stats.jobs_failed += failed;
                stats.eviction_rate = eviction_ewma;
                let pf = source.prefetch_stats();
                stats.prefetch_issued = pf.issued;
                stats.prefetch_hits = pf.hits;
            }
            let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
            for report in finished {
                jobs.finish(report);
            }
            drop(jobs);
            shared.done_cv.notify_all();
        }
    }
    publish_runtime_exit(shared);
}

fn publish_finished(
    shared: &Shared,
    svc: &mut SharingService<'_>,
    sid_map: &mut HashMap<JobId, (JobId, String)>,
    loads_base: u64,
    vnow_base: f64,
) {
    let mut finished = svc.take_finished();
    let mut tenants: Vec<String> = Vec::with_capacity(finished.len());
    let mut failed = 0u64;
    for report in &mut finished {
        // Service ids restart after a rotation rebuild and admission may
        // reorder across priorities; clients know the daemon's dense ids.
        // (Report *timings* stay on the per-generation virtual timeline —
        // each generation is a fresh deterministic replay — but the
        // daemon-wide counters below are cumulative.)
        let (daemon_id, tenant) =
            sid_map.remove(&report.id).expect("finished service id must be mapped");
        report.id = daemon_id;
        tenants.push(tenant);
        if report.error.is_some() {
            failed += 1;
        }
    }
    if !tenants.is_empty() {
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        for t in &tenants {
            Queue::dec(&mut q.inflight_by_tenant, t);
        }
    }
    {
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.partition_loads = loads_base + svc.partition_loads();
        stats.virtual_ns = vnow_base + svc.now_ns();
        stats.jobs_completed += finished.len() as u64 - failed;
        stats.jobs_failed += failed;
    }
    if finished.is_empty() {
        return;
    }
    let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    for report in finished {
        jobs.finish(report);
    }
    drop(jobs);
    shared.done_cv.notify_all();
}

// ---------------------------------------------------------------------------
// Listeners and connection handlers.
// ---------------------------------------------------------------------------

/// Transport identity of an accepted connection, for auth gating and
/// peer-credential logging.
#[derive(Clone, Copy, Debug)]
enum ConnInfo {
    /// Unix-domain connection. The filesystem already gates these, so
    /// they are exempt from token auth, but their kernel-reported
    /// `SO_PEERCRED` identity is logged at accept so tenant names are
    /// attributable.
    Unix,
    /// TCP connection — the transport `--auth-token` gates.
    Tcp,
}

/// A connection split into transferable read/write halves, plus who
/// connected.
type ConnPair = (Box<dyn Read + Send>, Box<dyn Write + Send>, ConnInfo);

/// A polling accept function: `Ok(Some)` on connection, `Ok(None)` when
/// none is pending (nonblocking), `Err` on listener failure.
type Acceptor = Box<dyn FnMut() -> std::io::Result<Option<ConnPair>> + Send>;

/// Reads the unix peer's kernel credentials (`SO_PEERCRED`): the uid,
/// gid, and pid the kernel recorded at `connect`, unforgeable by the
/// client. Declared directly (no libc crate — the binary links the
/// system libc regardless).
#[cfg(target_os = "linux")]
fn peer_credentials(stream: &UnixStream) -> Option<(u32, u32, i32)> {
    use std::os::unix::io::AsRawFd;
    #[repr(C)]
    struct Ucred {
        pid: i32,
        uid: u32,
        gid: u32,
    }
    extern "C" {
        fn getsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *mut core::ffi::c_void,
            len: *mut u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_PEERCRED: i32 = 17;
    let mut cred = Ucred { pid: 0, uid: 0, gid: 0 };
    let mut len = std::mem::size_of::<Ucred>() as u32;
    let rc = unsafe {
        getsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_PEERCRED,
            (&mut cred as *mut Ucred).cast(),
            &mut len,
        )
    };
    if rc == 0 && len as usize == std::mem::size_of::<Ucred>() {
        Some((cred.uid, cred.gid, cred.pid))
    } else {
        None
    }
}

#[cfg(not(target_os = "linux"))]
fn peer_credentials(_stream: &UnixStream) -> Option<(u32, u32, i32)> {
    None
}

fn listener_unix(listener: UnixListener, read_timeout: Duration) -> Acceptor {
    Box::new(move || match listener.accept() {
        Ok((stream, _)) => {
            if let Some((uid, gid, pid)) = peer_credentials(&stream) {
                eprintln!("[graphm-server] unix peer connected: uid={uid} gid={gid} pid={pid}");
            }
            let (r, w) = split_unix(stream, read_timeout)?;
            Ok(Some((r, w, ConnInfo::Unix)))
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    })
}

fn listener_tcp(listener: TcpListener, read_timeout: Duration) -> Acceptor {
    Box::new(move || match listener.accept() {
        Ok((stream, _)) => {
            let (r, w) = split_tcp(stream, read_timeout)?;
            Ok(Some((r, w, ConnInfo::Tcp)))
        }
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
        Err(e) => Err(e),
    })
}

type SplitPair = (Box<dyn Read + Send>, Box<dyn Write + Send>);

fn split_unix(s: UnixStream, read_timeout: Duration) -> std::io::Result<SplitPair> {
    s.set_nonblocking(false)?;
    if !read_timeout.is_zero() {
        s.set_read_timeout(Some(read_timeout))?;
    }
    let r = s.try_clone()?;
    Ok((Box::new(r), Box::new(s)))
}

fn split_tcp(s: TcpStream, read_timeout: Duration) -> std::io::Result<SplitPair> {
    s.set_nonblocking(false)?;
    if !read_timeout.is_zero() {
        s.set_read_timeout(Some(read_timeout))?;
    }
    let r = s.try_clone()?;
    Ok((Box::new(r), Box::new(s)))
}

/// Decrements the live-connection gauge when a handler exits (or when its
/// spawn fails and the closure is dropped unrun).
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(mut accept: Acceptor, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match accept() {
            Ok(Some((read, mut write, info))) => {
                // Connection limit: shed the accept with one typed error
                // line instead of letting handler threads (each pinning a
                // queue of blocking reads) grow without bound.
                if shared.max_connections > 0
                    && shared.connections.load(Ordering::SeqCst) >= shared.max_connections
                {
                    let _ = write_line(
                        write.as_mut(),
                        &error_response_coded(
                            "connection limit reached; retry with backoff",
                            ERR_OVERLOADED,
                        ),
                    );
                    let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    stats.connections_rejected += 1;
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let guard = ConnGuard(Arc::clone(shared));
                // Handlers are detached: they exit at client EOF, on
                // transport errors (including read timeouts), or when
                // shutdown wakes their waits.
                let _ =
                    std::thread::Builder::new().name("graphm-conn".to_string()).spawn(move || {
                        serve_connection(read, write, &guard.0, info);
                    });
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(_) => break,
        }
    }
}

fn write_line(w: &mut dyn Write, v: &Value) -> std::io::Result<()> {
    let line = serde_json::to_string(v).expect("serialization is infallible");
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Outcome of one bounded line read.
enum LineOutcome {
    Line(String),
    /// The line exceeded the cap; it was discarded through its newline,
    /// so the connection's framing is intact.
    Oversized,
    Eof,
    /// Transport error — including a `read_timeout` expiry.
    Failed,
}

/// Reads one `\n`-terminated line of at most `max` bytes. Longer lines
/// are consumed (never buffered) up to their newline and reported as
/// [`LineOutcome::Oversized`], so a hostile or buggy client cannot make
/// the daemon buffer an unbounded request while the connection stays
/// usable afterwards. A final unterminated line at EOF still parses.
fn read_bounded_line(r: &mut BufReader<Box<dyn Read + Send>>, max: usize) -> LineOutcome {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let available = match r.fill_buf() {
            Ok(b) => b,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineOutcome::Failed,
        };
        if available.is_empty() {
            return if buf.is_empty() {
                LineOutcome::Eof
            } else {
                LineOutcome::Line(String::from_utf8_lossy(&buf).into_owned())
            };
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let over = buf.len() + pos > max;
                if !over {
                    buf.extend_from_slice(&available[..pos]);
                }
                r.consume(pos + 1);
                return if over {
                    LineOutcome::Oversized
                } else {
                    LineOutcome::Line(String::from_utf8_lossy(&buf).into_owned())
                };
            }
            None => {
                let n = available.len();
                if buf.len() + n > max {
                    buf.clear();
                    r.consume(n);
                    return discard_to_newline(r);
                }
                buf.extend_from_slice(available);
                r.consume(n);
            }
        }
    }
}

/// Consumes the rest of an oversized line through its newline.
fn discard_to_newline(r: &mut BufReader<Box<dyn Read + Send>>) -> LineOutcome {
    loop {
        let available = match r.fill_buf() {
            Ok(b) => b,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return LineOutcome::Failed,
        };
        if available.is_empty() {
            return LineOutcome::Oversized; // EOF mid-line; next read sees Eof.
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                r.consume(pos + 1);
                return LineOutcome::Oversized;
            }
            None => {
                let n = available.len();
                r.consume(n);
            }
        }
    }
}

/// Per-connection session state.
struct ConnState {
    /// Mutations staged by this connection's `ingest` requests, awaiting
    /// its `ingest_commit`/`ingest_abort`. Dropped with the connection: a
    /// client that hangs up mid-session implicitly aborts.
    staged: Vec<DeltaRecord>,
    /// Whether this connection may issue non-`auth` requests: unix
    /// transport and token-less daemons start authenticated; TCP under
    /// `--auth-token` must earn it with the `auth` handshake first.
    authed: bool,
    /// Whether this connection `repl_subscribe`d, for the follower
    /// gauge (decremented when the connection exits).
    subscribed: bool,
}

fn serve_connection(
    read: Box<dyn Read + Send>,
    write: Box<dyn Write + Send>,
    shared: &Shared,
    info: ConnInfo,
) {
    let mut conn = ConnState {
        staged: Vec::new(),
        authed: shared.auth_token.is_none() || matches!(info, ConnInfo::Unix),
        subscribed: false,
    };
    serve_requests(read, write, shared, &mut conn);
    if conn.subscribed {
        shared.hub.subscriber_left();
    }
}

fn serve_requests(
    read: Box<dyn Read + Send>,
    mut write: Box<dyn Write + Send>,
    shared: &Shared,
    conn: &mut ConnState,
) {
    let mut reader = BufReader::new(read);
    loop {
        let line = match read_bounded_line(&mut reader, shared.max_line_bytes) {
            LineOutcome::Eof | LineOutcome::Failed => return,
            LineOutcome::Oversized => {
                {
                    let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
                    stats.oversized_lines += 1;
                }
                let resp = error_response_coded(
                    &format!("request line exceeds {} bytes", shared.max_line_bytes),
                    ERR_LINE_TOO_LONG,
                );
                if write_line(write.as_mut(), &resp).is_err() {
                    return;
                }
                continue;
            }
            LineOutcome::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = match parse_request(&line) {
            Err(msg) => error_response(&msg),
            Ok(req) => {
                // Auth gate: an unauthenticated TCP connection may only
                // authenticate. Everything else — including replication
                // subscriptions — gets the typed `unauthorized` error
                // (the connection stays open for a retry).
                if !conn.authed && !matches!(req, Request::Auth { .. }) {
                    let resp = error_response_coded(
                        "authentication required: send auth with the shared token first",
                        ERR_UNAUTHORIZED,
                    );
                    if write_line(write.as_mut(), &resp).is_err() {
                        return;
                    }
                    continue;
                }
                let is_shutdown = matches!(req, Request::Shutdown);
                let resp = respond(req, shared, conn);
                let _ = write_line(write.as_mut(), &resp);
                if is_shutdown {
                    return;
                }
                continue;
            }
        };
        if write_line(write.as_mut(), &response).is_err() {
            return;
        }
    }
}

fn respond(req: Request, shared: &Shared, conn: &mut ConnState) -> Value {
    match req {
        Request::Ping => json!({ "ok": true, "pong": true }),
        Request::Stats => {
            let stats = shared.stats_snapshot();
            json!({ "ok": true, "stats": stats.to_json() })
        }
        Request::Shutdown => {
            shared.request_shutdown();
            json!({ "ok": true, "shutting_down": true })
        }
        Request::Submit { spec, tenant, priority } => submit(spec, tenant, priority, shared),
        Request::Health => json!({ "ok": true, "health": shared.health_snapshot().to_json() }),
        Request::Status(id) => match job_state(shared, id) {
            Some(state) => json!({ "ok": true, "job_id": id, "state": state.name() }),
            None => error_response(&format!("unknown job {id}")),
        },
        Request::Wait(id) => wait_for(shared, id),
        Request::Ingest(ops) => ingest_stage(shared, &mut conn.staged, ops),
        Request::IngestCommit => ingest_commit(shared, &mut conn.staged),
        Request::IngestAbort => {
            let discarded = conn.staged.len();
            conn.staged.clear();
            json!({ "ok": true, "discarded": discarded })
        }
        Request::Auth { token } => auth_check(shared, conn, &token),
        Request::ReplSubscribe { from_generation } => repl_subscribe(shared, conn, from_generation),
        Request::ReplFrames { from_generation, max } => repl_frames(shared, from_generation, max),
        Request::ReplStatus => json!({ "ok": true, "repl": repl_status_json(shared) }),
        Request::Promote => promote(shared),
    }
}

/// Validates the shared secret. Byte-folded comparison so a mismatch
/// costs the same regardless of where the tokens diverge.
fn auth_check(shared: &Shared, conn: &mut ConnState, token: &str) -> Value {
    let ok = match &shared.auth_token {
        // No secret configured: the handshake is a no-op courtesy.
        None => true,
        Some(expected) => {
            let a = expected.as_bytes();
            let b = token.as_bytes();
            let mut diff = a.len() ^ b.len();
            for i in 0..a.len().max(b.len()) {
                let x = a.get(i).copied().unwrap_or(0);
                let y = b.get(i).copied().unwrap_or(0);
                diff |= (x ^ y) as usize;
            }
            diff == 0
        }
    };
    if ok {
        conn.authed = true;
        json!({ "ok": true, "authenticated": true })
    } else {
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.auth_failures += 1;
        drop(stats);
        error_response_coded("bad auth token", ERR_UNAUTHORIZED)
    }
}

/// Registers this connection as a follower and reports the publish
/// high-water so the subscriber can size its catch-up.
fn repl_subscribe(shared: &Shared, conn: &mut ConnState, from_generation: u64) -> Value {
    if !conn.subscribed {
        conn.subscribed = true;
        shared.hub.subscriber_joined();
    }
    shared.hub.note_acked(from_generation.saturating_sub(1));
    let current = current_generation(shared);
    shared.hub.notify_published(current);
    json!({ "ok": true, "generation": current, "epoch": shared.current_epoch() })
}

/// The store's durably committed generation, read fresh from `CURRENT`
/// so frames ship even when the publisher is an external process the
/// hub never hears from.
fn current_generation(shared: &Shared) -> u64 {
    read_current_generation(&shared.store_dir).unwrap_or(0)
}

/// Ships up to `max` frames starting at `from_generation`, rebuilding
/// each from the committed on-disk generation (manifest + delta
/// segments) — the same path whether the follower is live-tailing or
/// catching up after downtime. Long-polls briefly when the follower is
/// already caught up, so tailing costs one request per publish, not a
/// busy loop.
fn repl_frames(shared: &Shared, from_generation: u64, max: u64) -> Value {
    if from_generation == 0 {
        return error_response(
            "from_generation must be >= 1 (generation 0 is the base store; seed followers \
             by copying it)",
        );
    }
    shared.hub.note_acked(from_generation - 1);
    let epoch = shared.current_epoch();
    // Long-poll: wait for a publish notification, then confirm against
    // CURRENT (covers external writers, which never notify the hub).
    let deadline = Instant::now() + REPL_LONG_POLL;
    let mut current = current_generation(shared);
    while current < from_generation
        && !shared.shutdown.load(Ordering::SeqCst)
        && Instant::now() < deadline
    {
        shared.hub.wait_published(from_generation, Duration::from_millis(50));
        current = current_generation(shared);
    }
    shared.hub.notify_published(current);
    let mut frames = Vec::new();
    let mut gen = from_generation;
    while gen <= current && (frames.len() as u64) < max.max(1) {
        match read_generation_frame(&shared.store_dir, gen, epoch) {
            Ok(frame) => {
                frames.push(Value::String(hex_encode(&graphm_store::encode_frame(&frame))))
            }
            Err(e) => {
                // A retired or unreadable generation cannot be shipped;
                // the follower must re-seed from a store copy.
                return error_response(&format!("cannot ship generation {gen}: {e}"));
            }
        }
        gen += 1;
    }
    shared.hub.note_shipped(frames.len() as u64);
    json!({ "ok": true, "generation": current, "epoch": epoch, "frames": frames })
}

/// The replication ledger for `repl_status`.
fn repl_status_json(shared: &Shared) -> Value {
    let hub = shared.hub.snapshot();
    let follower = shared.is_follower();
    json!({
        "role": if follower { "follower" } else { "primary" },
        "peer": if follower { shared.peer.as_str() } else { "" },
        "generation": shared.applied_gen.load(Ordering::SeqCst),
        "primary_generation": shared.primary_gen_seen.load(Ordering::SeqCst),
        "replica_lag_generations": if follower { shared.replica_lag() } else { 0 },
        "epoch": shared.current_epoch(),
        "frames_shipped": hub.frames_shipped,
        "frames_acked": hub.frames_acked,
        "acked_generation": hub.acked_generation,
        "followers": hub.followers,
        "reconnects": hub.reconnects,
    })
}

/// Promotes a follower to primary: takes the applier, reopens the
/// store's writer through the epoch fence (`epoch + 1` — the fenced
/// ex-primary's next publish fails with `EpochFenced`), and installs a
/// fresh ingest coordinator so mutation verbs start landing here.
fn promote(shared: &Shared) -> Value {
    if !shared.is_follower() {
        return error_response("already primary");
    }
    let taken = shared.applier.lock().unwrap_or_else(|e| e.into_inner()).take();
    let Some(applier) = taken else {
        return error_response("promotion already in flight");
    };
    match applier.promote() {
        Ok(writer) => {
            let epoch = writer.lease_epoch();
            let generation = writer.generation();
            *shared.ingest.lock().unwrap_or_else(|e| e.into_inner()) =
                Some(Arc::new(IngestCoordinator::new(writer)));
            shared.role_follower.store(false, Ordering::SeqCst);
            shared.hub.set_epoch(epoch);
            shared.hub.notify_published(generation);
            shared.primary_gen_seen.store(generation, Ordering::SeqCst);
            shared.applied_gen.store(generation, Ordering::SeqCst);
            eprintln!("[graphm-server] promoted to primary at lease epoch {epoch}");
            json!({ "ok": true, "role": "primary", "epoch": epoch })
        }
        // The applier was consumed: this follower can no longer tail and
        // needs an operator restart. Failing loudly beats a half-role.
        Err(e) => error_response(&format!("promotion failed (restart this follower): {e}")),
    }
}

fn ingest_stage(shared: &Shared, staged: &mut Vec<DeltaRecord>, ops: Vec<DeltaRecord>) -> Value {
    if let Some(resp) = reject_if_follower(shared) {
        return resp;
    }
    if shared.ingest_handle().is_none() {
        return error_response("ingest is disabled (start the server with --ingest)");
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        return error_response_coded("server is shutting down", ERR_SHUTTING_DOWN);
    }
    // Bounds-check at staging so a commit can only fail on real I/O, and
    // a bad op is rejected while the client can still tell which request
    // carried it.
    for r in &ops {
        for v in [r.src, r.dst] {
            if v >= shared.num_vertices {
                return error_response(&format!(
                    "vertex {v} out of range (store has {} vertices); nothing staged",
                    shared.num_vertices
                ));
            }
        }
    }
    staged.extend(ops);
    json!({ "ok": true, "staged": staged.len() })
}

/// Typed `not_primary` redirect for mutation verbs on a follower: the
/// message names the primary so clients can rotate their peer list.
fn reject_if_follower(shared: &Shared) -> Option<Value> {
    if !shared.is_follower() {
        return None;
    }
    let msg = if shared.peer.is_empty() {
        "not primary: this daemon is a follower replica".to_string()
    } else {
        format!("not primary: this daemon follows {}; redirect writes there", shared.peer)
    };
    Some(error_response_coded(&msg, ERR_NOT_PRIMARY))
}

fn ingest_commit(shared: &Shared, staged: &mut Vec<DeltaRecord>) -> Value {
    if let Some(resp) = reject_if_follower(shared) {
        return resp;
    }
    let Some(ingest) = shared.ingest_handle() else {
        return error_response("ingest is disabled (start the server with --ingest)");
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return error_response_coded("server is shutting down", ERR_SHUTTING_DOWN);
    }
    let records = staged.len();
    match ingest.commit(std::mem::take(staged)) {
        Ok(outcome) => {
            // Wake follower long-polls: the generation is durable on
            // disk, so `repl_frames` can rebuild and ship it now.
            // fetch_max: concurrent group leaders report out of order.
            shared.hub.notify_published(outcome.generation);
            shared.applied_gen.fetch_max(outcome.generation, Ordering::SeqCst);
            shared.primary_gen_seen.fetch_max(outcome.generation, Ordering::SeqCst);
            json!({
                "ok": true,
                "generation": outcome.generation,
                "records": records,
                "group": outcome.group_size,
            })
        }
        Err(msg) => error_response(&msg),
    }
}

fn submit(spec: JobSpec, tenant: String, priority: Priority, shared: &Shared) -> Value {
    if shared.shutdown.load(Ordering::SeqCst) {
        return error_response_coded("server is shutting down", ERR_SHUTTING_DOWN);
    }
    // Staleness bound: a follower that knows it trails the primary by
    // more than the configured lag refuses reads rather than serving
    // arbitrarily old state (0 = serve at any lag).
    if shared.is_follower() && shared.max_replica_lag > 0 {
        let lag = shared.replica_lag();
        if lag > shared.max_replica_lag {
            return error_response_coded(
                &format!(
                    "replica is {lag} generations behind the primary \
                     (staleness bound {}); retry with backoff or read the primary",
                    shared.max_replica_lag
                ),
                ERR_STALE_REPLICA,
            );
        }
    }
    if spec.root >= shared.num_vertices {
        return error_response(&format!(
            "root {} out of range (store has {} vertices)",
            spec.root, shared.num_vertices
        ));
    }
    // A shed submission gets a typed `overloaded` error *before* an id is
    // assigned — nothing to clean up, nothing queued, the client retries
    // with backoff (`graphm-client --retries`).
    let shed = |msg: String| {
        let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
        stats.jobs_shed += 1;
        drop(stats);
        error_response_coded(&msg, ERR_OVERLOADED)
    };
    let a = &shared.admission;
    let id = {
        // Lock order queue -> jobs (see `Shared`); the entry must exist
        // before the runtime can drain the submission and mark it Running.
        // The spec is instantiated by the runtime thread at drain time so
        // its out-degrees match the generation of the round it runs in.
        let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if a.max_pending > 0 && q.pending.len() >= a.max_pending {
            return shed(format!(
                "queue full ({} pending, cap {}); retry with backoff",
                q.pending.len(),
                a.max_pending
            ));
        }
        if a.tenant_max_pending > 0 {
            let queued = q.queued_by_tenant.get(&tenant).copied().unwrap_or(0);
            if queued >= a.tenant_max_pending as u64 {
                return shed(format!(
                    "tenant {tenant:?} has {queued} queued jobs (quota {})",
                    a.tenant_max_pending
                ));
            }
        }
        if a.tenant_max_inflight > 0 {
            let inflight = q.inflight_by_tenant.get(&tenant).copied().unwrap_or(0);
            if inflight >= a.tenant_max_inflight as u64 {
                return shed(format!(
                    "tenant {tenant:?} has {inflight} jobs in flight (quota {})",
                    a.tenant_max_inflight
                ));
            }
        }
        // Out-of-core pressure: sustained eviction churn means the round
        // working set outgrew the memory budget, so adding Batch work
        // would only deepen the thrash. Interactive jobs still land.
        if priority == Priority::Batch && a.shed_eviction_rate > 0.0 {
            let rate = shared.stats.lock().unwrap_or_else(|e| e.into_inner()).eviction_rate;
            if rate > a.shed_eviction_rate {
                return shed(format!(
                    "store is thrashing ({rate:.1} evictions/round, shed above {:.1}); \
                     batch work rejected",
                    a.shed_eviction_rate
                ));
            }
        }
        let id = q.next_id;
        q.next_id += 1;
        *q.queued_by_tenant.entry(tenant.clone()).or_insert(0) += 1;
        *q.inflight_by_tenant.entry(tenant.clone()).or_insert(0) += 1;
        shared.jobs.lock().unwrap_or_else(|e| e.into_inner()).entries.insert(id, JobEntry::Queued);
        q.pending.push_back(Pending { id, spec, tenant, priority });
        id
    };
    shared.queue_cv.notify_all();
    let mut stats = shared.stats.lock().unwrap_or_else(|e| e.into_inner());
    stats.jobs_submitted += 1;
    drop(stats);
    json!({ "ok": true, "job_id": id })
}

fn job_state(shared: &Shared, id: JobId) -> Option<JobState> {
    let jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    Some(match jobs.entries.get(&id)? {
        JobEntry::Queued => JobState::Queued,
        JobEntry::Running => JobState::Running,
        JobEntry::Done(_) => JobState::Done,
    })
}

fn wait_for(shared: &Shared, id: JobId) -> Value {
    let mut jobs = shared.jobs.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        match jobs.entries.get(&id) {
            None => return error_response(&format!("unknown job {id}")),
            Some(JobEntry::Done(report)) => {
                let report = Arc::clone(report);
                drop(jobs);
                return json!({
                    "ok": true,
                    "job_id": id,
                    "state": JobState::Done.name(),
                    "report": report_to_json(&report),
                });
            }
            Some(_) => {
                // The runtime drains queued jobs before exiting on
                // shutdown, so normally this wait ends in Done; the exit
                // flag covers the race where a submission slips in after
                // the runtime's final queue check.
                if shared.runtime_exited.load(Ordering::SeqCst) {
                    return error_response("server shut down before the job finished");
                }
                jobs = shared.done_cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Follower tailer.
// ---------------------------------------------------------------------------

/// Shutdown-aware sleep in small slices, so a follower deep in reconnect
/// backoff still joins a shutdown promptly.
fn sleep_interruptible(shared: &Shared, total: Duration) {
    let deadline = Instant::now() + total;
    loop {
        let now = Instant::now();
        if now >= deadline || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(Duration::from_millis(25).min(deadline - now));
    }
}

/// The follower's tailer thread: tail sessions against the primary,
/// reconnected with the client's full-jitter exponential backoff
/// (exponent capped at [`REPL_MAX_BACKOFF_EXP`]; every attempt lands in
/// `repl_status.reconnects`, so a retry storm is visible, bounded, and
/// log-rate-limited). Exits on shutdown or promotion.
fn follower_tail_loop(shared: &Arc<Shared>, peer: &str, token: Option<&str>, backoff_ms: u64) {
    let mut rng = 0x5bd1_e995 ^ u64::from(std::process::id());
    let mut attempt = 0u32;
    while !shared.shutdown.load(Ordering::SeqCst) && shared.is_follower() {
        match tail_once(shared, peer, token) {
            Ok(()) => return, // shutdown or promotion ended the tail cleanly
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) || !shared.is_follower() {
                    return;
                }
                let total = shared.hub.note_reconnect();
                let delay = retry_delay(backoff_ms, attempt.min(REPL_MAX_BACKOFF_EXP), &mut rng);
                // First few attempts verbosely, then every 16th: a dead
                // primary at the backoff cap must not flood the log.
                if total <= 4 || total.is_multiple_of(16) {
                    eprintln!(
                        "[graphm-server] replication tail to {peer} failed ({e}); \
                         reconnect attempt {total} in {}ms",
                        delay.as_millis()
                    );
                }
                attempt = attempt.saturating_add(1);
                sleep_interruptible(shared, delay);
            }
        }
    }
}

/// One tail session: subscribe at our next generation, long-poll frames,
/// and apply them in order through the store's publish path. Any failure
/// — transport, a corrupt frame, an injected apply fault — returns `Err`
/// and the caller reconnects with backoff; the applier's own atomicity
/// guarantees the store is at a publish boundary either way.
fn tail_once(
    shared: &Arc<Shared>,
    peer: &str,
    token: Option<&str>,
) -> std::result::Result<(), String> {
    let mut client = Client::connect_tcp_with_timeout(peer, REPL_READ_TIMEOUT)
        .map_err(|e| format!("connect: {e}"))?;
    if let Some(token) = token {
        client.auth(token).map_err(|e| format!("auth: {e}"))?;
    }
    let from = shared.applied_gen.load(Ordering::SeqCst) + 1;
    let (pgen, _epoch) = client.repl_subscribe(from).map_err(|e| format!("subscribe: {e}"))?;
    shared.primary_gen_seen.fetch_max(pgen, Ordering::SeqCst);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || !shared.is_follower() {
            return Ok(());
        }
        let next = shared.applied_gen.load(Ordering::SeqCst) + 1;
        let (pgen, frames) = match client.repl_frames(next, 16) {
            Ok(r) => r,
            Err(ClientError::NotPrimary(m)) => return Err(format!("peer is not primary: {m}")),
            Err(e) => return Err(format!("poll: {e}")),
        };
        shared.primary_gen_seen.fetch_max(pgen, Ordering::SeqCst);
        for raw in frames {
            let frame = decode_frame(&raw).map_err(|e| format!("frame decode: {e}"))?;
            let mut guard = shared.applier.lock().unwrap_or_else(|e| e.into_inner());
            let Some(applier) = guard.as_mut() else {
                return Ok(()); // promotion took the applier mid-batch
            };
            applier
                .apply(&frame)
                .map_err(|e| format!("apply generation {}: {e}", frame.generation))?;
            let applied = applier.generation();
            drop(guard);
            shared.applied_gen.fetch_max(applied, Ordering::SeqCst);
        }
    }
}
