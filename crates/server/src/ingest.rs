//! Group-commit ingest: multiplexing concurrent client mutation batches
//! through the store's single leased writer.
//!
//! The delta store is single-writer by design (one `DeltaWriter`, one
//! writer lease), but the daemon serves many connections. The
//! [`IngestCoordinator`] bridges the two with classic **group commit**:
//!
//! 1. A committing connection enqueues its batch under the queue lock
//!    and waits on a condvar.
//! 2. The first waiter to find no commit in flight becomes the *leader*:
//!    it drains the whole queue (its own batch plus everything that
//!    piled up), releases the queue lock, and applies the group through
//!    the writer — every batch in ticket order, then **one** `publish`:
//!    one WAL append, one fsync, one generation for the entire group.
//! 3. The leader posts per-ticket results and wakes the group. Batches
//!    that arrived while it was publishing form the next group, so
//!    throughput scales with batches-per-fsync rather than fsyncs.
//!
//! Failure is group-granular: if any batch in the group fails to apply,
//! the leader discards the writer's pending records and fails every
//! ticket in the group — a generation either contains the whole group or
//! none of it (mirroring the WAL's frame atomicity).

use graphm_graph::delta::{DeltaRecord, DELTA_OP_DELETE};
use graphm_store::{DeltaWriter, WalStats};
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};

/// What a successful commit observed.
#[derive(Clone, Copy, Debug)]
pub struct CommitOutcome {
    /// The generation the batch became durable in.
    pub generation: u64,
    /// How many client commits shared that generation (≥ 1).
    pub group_size: usize,
}

/// Cumulative coordinator counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct IngestStats {
    /// Client commits applied.
    pub commits: u64,
    /// Groups published (one generation each).
    pub groups: u64,
}

/// Queue state, guarded separately from the writer so followers can
/// enqueue while the leader is deep in fsync.
struct GroupState {
    next_ticket: u64,
    queue: Vec<(u64, Vec<DeltaRecord>)>,
    /// A leader is applying/publishing; the queue is the *next* group.
    committing: bool,
    results: HashMap<u64, Result<CommitOutcome, String>>,
    stats: IngestStats,
}

/// See the module docs. One per ingest-enabled daemon.
pub struct IngestCoordinator {
    state: Mutex<GroupState>,
    cv: Condvar,
    writer: Mutex<DeltaWriter>,
}

impl IngestCoordinator {
    /// Wraps the daemon's leased writer.
    pub fn new(writer: DeltaWriter) -> IngestCoordinator {
        IngestCoordinator {
            state: Mutex::new(GroupState {
                next_ticket: 0,
                queue: Vec::new(),
                committing: false,
                results: HashMap::new(),
                stats: IngestStats::default(),
            }),
            cv: Condvar::new(),
            writer: Mutex::new(writer),
        }
    }

    /// Commits one connection's staged batch, blocking until the group
    /// that absorbed it is durably published (or failed). An empty batch
    /// rides along for free and reports the group's generation.
    pub fn commit(&self, batch: Vec<DeltaRecord>) -> Result<CommitOutcome, String> {
        let ticket = {
            let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.queue.push((ticket, batch));
            ticket
        };
        loop {
            // Decide under the queue lock: take our result, become the
            // leader, or wait.
            let group = {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if let Some(result) = st.results.remove(&ticket) {
                        return result;
                    }
                    if !st.committing && !st.queue.is_empty() {
                        st.committing = true;
                        break std::mem::take(&mut st.queue);
                    }
                    st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            // Leader, queue lock released: apply the group in ticket
            // order and publish it as one generation. Followers keep
            // enqueueing into the next group meanwhile.
            let outcome = self.publish_group(&group);
            {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.stats.groups += 1;
                st.stats.commits += group.len() as u64;
                for (t, _) in &group {
                    st.results.insert(*t, outcome.clone());
                }
                st.committing = false;
            }
            self.cv.notify_all();
            // Our own result is among those just posted; loop re-checks.
        }
    }

    /// Applies and publishes one group through the leased writer.
    fn publish_group(&self, group: &[(u64, Vec<DeltaRecord>)]) -> Result<CommitOutcome, String> {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        for (_, batch) in group {
            for r in batch {
                let applied = if r.op == DELTA_OP_DELETE {
                    writer.delete(r.src, r.dst)
                } else {
                    writer.insert(r.src, r.dst, r.weight)
                };
                if let Err(e) = applied {
                    // All-or-nothing: the whole group rolls back.
                    writer.discard_pending();
                    return Err(format!("ingest group failed to apply: {e}"));
                }
            }
        }
        match writer.publish() {
            Ok(generation) => Ok(CommitOutcome { generation, group_size: group.len() }),
            Err(e) => {
                writer.discard_pending();
                Err(format!("ingest group failed to publish: {e}"))
            }
        }
    }

    /// Coordinator counters.
    pub fn stats(&self) -> IngestStats {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).stats
    }

    /// The writer's WAL counters and lease epoch, for `stats` responses.
    pub fn writer_stats(&self) -> (WalStats, u64) {
        let writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        (writer.wal_stats(), writer.lease_epoch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_store::Convert;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-ingest-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn store(name: &str, vertices: u32, edges: usize) -> PathBuf {
        let g = graphm_graph::generators::rmat(
            vertices,
            edges,
            graphm_graph::generators::RmatParams::GRAPH500,
            11,
        );
        let dir = tmpdir(name);
        Convert::grid(2).write(&g, &dir).unwrap();
        dir
    }

    #[test]
    fn concurrent_commits_share_generations() {
        let dir = store("group", 64, 300);
        let coord = Arc::new(IngestCoordinator::new(DeltaWriter::open(&dir).unwrap()));
        let threads: Vec<_> = (0..4u32)
            .map(|t| {
                let coord = Arc::clone(&coord);
                std::thread::spawn(move || {
                    let mut gens = Vec::new();
                    for i in 0..5u32 {
                        let batch = vec![DeltaRecord::insert(t, (i + 1) % 64, 1.0)];
                        let out = coord.commit(batch).unwrap();
                        assert!(out.group_size >= 1);
                        gens.push(out.generation);
                    }
                    gens
                })
            })
            .collect();
        let mut all_gens = Vec::new();
        for t in threads {
            let gens = t.join().unwrap();
            // Each thread's own commits land in increasing generations.
            for w in gens.windows(2) {
                assert!(w[0] < w[1], "a later commit cannot land in an earlier generation");
            }
            all_gens.extend(gens);
        }
        let stats = coord.stats();
        assert_eq!(stats.commits, 20);
        assert!(stats.groups <= 20);
        assert!(stats.groups >= 1);
        let (wal, epoch) = coord.writer_stats();
        assert_eq!(wal.records, 20);
        assert_eq!(epoch, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_batch_fails_its_whole_group_and_rolls_back() {
        let dir = store("rollback", 32, 200);
        let coord = IngestCoordinator::new(DeltaWriter::open(&dir).unwrap());
        let before = {
            let w = coord.writer.lock().unwrap();
            w.generation()
        };
        // Out-of-range vertex: staging-level validation is the daemon's
        // job, but the coordinator must still fail closed.
        let err = coord.commit(vec![DeltaRecord::insert(999, 0, 1.0)]).unwrap_err();
        assert!(err.contains("failed to apply"), "{err}");
        let w = coord.writer.lock().unwrap();
        assert_eq!(w.generation(), before, "no generation published");
        assert_eq!(w.pending_mutations(), 0, "pending rolled back");
        drop(w);
        // The writer still works afterwards.
        let out = coord.commit(vec![DeltaRecord::insert(1, 2, 1.0)]).unwrap();
        assert_eq!(out.generation, before + 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
