//! # graphm-graphchi — GraphChi-style engine with GraphM integration
//!
//! GraphChi [Kyrola et al., OSDI '12] is the second host engine of the
//! paper's Table 4: a single-machine out-of-core engine built on vertex
//! intervals and source-sorted shards processed with parallel sliding
//! windows. The GraphM `Sharing()` hook replaces `LoadSubgraph()` (§3.1).
//!
//! Schemes: `GraphChi-S`, `GraphChi-C`, `GraphChi-M` via [`run_graphchi`].

pub mod engine;
pub mod source;

pub use engine::GraphChiEngine;
pub use graphm_store::DiskShardSource;
pub use source::ChiSource;

use graphm_core::{run_scheme, RunReport, RunnerConfig, Scheme, Submission};

/// Runs a job mix on GraphChi under the given scheme, deterministically.
pub fn run_graphchi(
    scheme: Scheme,
    subs: Vec<Submission>,
    engine: &GraphChiEngine,
    cfg: &RunnerConfig,
) -> RunReport {
    let source = ChiSource::new(engine.shards());
    run_scheme(scheme, subs, &source, cfg)
}

/// Runs a job mix on a *disk-resident* shard store under the given scheme.
/// Same runtime as [`run_graphchi`]; shards stream from the mmap'd
/// segments and per-interval load bytes come from the store manifest.
pub fn run_graphchi_disk(
    scheme: Scheme,
    subs: Vec<Submission>,
    source: &DiskShardSource,
    cfg: &RunnerConfig,
) -> RunReport {
    run_scheme(scheme, subs, source, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_algos::{reference, PageRank};
    use graphm_cachesim::keys;
    use graphm_graph::{generators, MemoryProfile};

    #[test]
    fn schemes_match_oracle_and_m_wins() {
        let g = generators::rmat(300, 2400, generators::RmatParams::GRAPH500, 14);
        let (engine, _) = GraphChiEngine::convert(&g, 4);
        let cfg = RunnerConfig::new(MemoryProfile::TEST);
        // Enough iterations that compute dominates the one-time shard
        // loads (all schemes share the page cache for in-memory graphs).
        let subs = |n: usize| -> Vec<Submission> {
            (0..n)
                .map(|i| {
                    Submission::immediate(Box::new(
                        PageRank::new(
                            g.num_vertices,
                            engine.out_degrees(),
                            0.5 + 0.1 * i as f64,
                            20,
                        )
                        .with_tolerance(0.0),
                    ))
                })
                .collect()
        };
        let m = run_graphchi(Scheme::Shared, subs(3), &engine, &cfg);
        let c = run_graphchi(Scheme::Concurrent, subs(3), &engine, &cfg);
        for (i, job) in m.jobs.iter().enumerate() {
            let oracle = reference::pagerank_ref(&g, 0.5 + 0.1 * i as f64, 20, 0.0);
            for (a, b) in job.values.iter().zip(&oracle) {
                assert!((a - b).abs() < 1e-9);
            }
        }
        assert!(m.metrics.get(keys::DISK_READ_BYTES) <= c.metrics.get(keys::DISK_READ_BYTES));
        assert!(m.makespan_ns < c.makespan_ns);
    }
}
