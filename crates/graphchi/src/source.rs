//! `PartitionSource` adapter: GraphM over the shard format.
//!
//! One shard = one GraphM partition. Loading a shard for execution also
//! drags in its sliding windows, so `partition_bytes` reports the full
//! per-interval load set — the reason GraphChi's I/O (and thus its S/C
//! scheme times in Table 4) exceed GridGraph's on the same graph.

use graphm_core::PartitionSource;
use graphm_graph::{AtomicBitmap, Edge, Shards, VertexId};
use std::sync::Arc;

/// An in-memory sharded graph exposed to GraphM.
pub struct ChiSource {
    shards: Vec<Arc<Vec<Edge>>>,
    /// Distinct source vertices per shard, sorted (for activity checks).
    srcs: Vec<Vec<VertexId>>,
    load_bytes: Vec<usize>,
    graph_bytes: usize,
    num_vertices: VertexId,
}

impl ChiSource {
    /// Wraps converted shards.
    pub fn new(shards: &Shards) -> ChiSource {
        let mut shard_vecs = Vec::with_capacity(shards.num_shards());
        let mut srcs = Vec::with_capacity(shards.num_shards());
        let mut load_bytes = Vec::with_capacity(shards.num_shards());
        for s in 0..shards.num_shards() {
            let edges = shards.shard(s).to_vec();
            let mut sv: Vec<VertexId> = edges.iter().map(|e| e.src).collect();
            sv.sort_unstable();
            sv.dedup();
            srcs.push(sv);
            load_bytes.push(shards.interval_load_bytes(s));
            shard_vecs.push(Arc::new(edges));
        }
        ChiSource {
            shards: shard_vecs,
            srcs,
            load_bytes,
            graph_bytes: shards.size_bytes(),
            num_vertices: shards.ranges().num_vertices(),
        }
    }
}

impl PartitionSource for ChiSource {
    fn num_partitions(&self) -> usize {
        self.shards.len()
    }

    fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        Arc::clone(&self.shards[pid])
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.load_bytes[pid]
    }

    fn graph_bytes(&self) -> usize {
        self.graph_bytes
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        self.srcs[pid].iter().any(|&v| active.get(v as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    #[test]
    fn adapter_exposes_shards() {
        let g = generators::rmat(120, 900, generators::RmatParams::GRAPH500, 13);
        let shards = Shards::convert(&g, 4);
        let s = ChiSource::new(&shards);
        assert_eq!(s.num_partitions(), 4);
        let total: usize = (0..4).map(|i| s.load(i).len()).sum();
        assert_eq!(total, 900);
        // Load bytes include windows: at least the shard's own payload.
        for pid in 0..4 {
            assert!(s.partition_bytes(pid) >= s.load(pid).len() * 12);
        }
        // Summed interval load sets cover the graph at least once.
        let loads: usize = (0..4).map(|p| s.partition_bytes(p)).sum();
        assert!(loads >= s.graph_bytes());
    }

    #[test]
    fn activity_by_distinct_sources() {
        let g = generators::path(8);
        let shards = Shards::convert(&g, 2);
        let s = ChiSource::new(&shards);
        let active = AtomicBitmap::new(8);
        // Vertex 0's only edge (0, 1) has dst 1 in interval 0.
        active.set(0);
        assert!(s.partition_active(0, &active));
        assert!(!s.partition_active(1, &active));
    }
}
