//! The GraphChi-style host engine.
//!
//! GraphChi [Kyrola et al., OSDI '12] processes a graph in `P` vertex
//! intervals; executing interval `s` loads its *memory shard* (all
//! in-edges of the interval) plus a *sliding window* of every other shard.
//! One full iteration visits every interval, so every edge is streamed
//! once per iteration — like GridGraph, but with the heavier per-interval
//! load set that makes GraphChi's absolute times larger (Table 4).

use graphm_core::GraphJob;
use graphm_graph::{EdgeList, Manifest, Shards};
use graphm_store::{Convert, DiskShardSource};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A preprocessed GraphChi instance.
pub struct GraphChiEngine {
    shards: Arc<Shards>,
    out_degrees: Arc<Vec<u32>>,
}

impl GraphChiEngine {
    /// `Convert()` — shards an edge list (Table 3's GraphChi-style
    /// preprocessing), returning the engine and the conversion time.
    pub fn convert(graph: &EdgeList, p: usize) -> (GraphChiEngine, Duration) {
        let start = Instant::now();
        let shards = Shards::convert(graph, p);
        let out_degrees = graph.out_degrees();
        (
            GraphChiEngine { shards: Arc::new(shards), out_degrees: Arc::new(out_degrees) },
            start.elapsed(),
        )
    }

    /// `Convert()` with durable output: shards `graph` and writes it as a
    /// disk-resident store (segments + manifest) under `dir`, returning
    /// the manifest and the wall-clock preprocessing time.
    pub fn convert_to_disk(
        graph: &EdgeList,
        p: usize,
        dir: &Path,
    ) -> graphm_graph::Result<(Manifest, Duration)> {
        let start = Instant::now();
        let manifest = Convert::shards(p).write(graph, dir)?;
        Ok((manifest, start.elapsed()))
    }

    /// Opens a disk-resident shard store as a GraphM partition source. The
    /// returned source drops into every place a `ChiSource` fits.
    pub fn open_disk(dir: &Path) -> graphm_graph::Result<DiskShardSource> {
        DiskShardSource::open(dir)
    }

    /// The underlying shards.
    pub fn shards(&self) -> &Arc<Shards> {
        &self.shards
    }

    /// Out-degrees of the converted graph.
    pub fn out_degrees(&self) -> Arc<Vec<u32>> {
        Arc::clone(&self.out_degrees)
    }

    /// One parallel-sliding-windows iteration for one job: walks intervals
    /// in order, streaming each memory shard's edges. Returns edges
    /// streamed.
    pub fn psw_once(&self, job: &mut dyn GraphJob) -> u64 {
        let mut streamed = 0u64;
        for s in 0..self.shards.num_shards() {
            for e in self.shards.shard(s) {
                streamed += 1;
                if !job.skips_inactive() || job.active().get(e.src as usize) {
                    job.process_edge(e);
                }
            }
        }
        streamed
    }

    /// Runs one job to convergence (or `max_iters`); returns iterations.
    pub fn run_job(&self, job: &mut dyn GraphJob, max_iters: usize) -> usize {
        for i in 0..max_iters {
            self.psw_once(job);
            if job.end_iteration() {
                return i + 1;
            }
        }
        max_iters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_algos::reference;
    use graphm_algos::{Bfs, PageRank, Sssp, Wcc};
    use graphm_graph::generators;

    fn graph() -> EdgeList {
        generators::rmat(250, 2000, generators::RmatParams::GRAPH500, 91)
    }

    #[test]
    fn pagerank_on_shards_matches_reference() {
        let g = graph();
        let (engine, prep) = GraphChiEngine::convert(&g, 4);
        assert!(prep.as_nanos() > 0);
        let mut pr =
            PageRank::new(g.num_vertices, engine.out_degrees(), 0.85, 6).with_tolerance(0.0);
        engine.run_job(&mut pr, 6);
        let oracle = reference::pagerank_ref(&g, 0.85, 6, 0.0);
        for (a, b) in pr.ranks().iter().zip(&oracle) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn frontier_algorithms_match_reference() {
        let g = graph();
        let (engine, _) = GraphChiEngine::convert(&g, 5);
        let mut bfs = Bfs::new(g.num_vertices, 2);
        engine.run_job(&mut bfs, 1000);
        assert_eq!(
            bfs.vertex_values(),
            reference::bfs_ref(&g, 2).iter().map(|&l| l as f64).collect::<Vec<_>>()
        );
        let mut wcc = Wcc::new(g.num_vertices);
        engine.run_job(&mut wcc, 1000);
        assert_eq!(wcc.labels(), reference::wcc_ref(&g).as_slice());
        let mut sssp = Sssp::new(g.num_vertices, 2);
        engine.run_job(&mut sssp, 1000);
        let oracle = reference::sssp_ref(&g, 2);
        for (a, b) in sssp.distances().iter().zip(&oracle) {
            assert!((a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn one_iteration_streams_every_edge_once() {
        let g = graph();
        let (engine, _) = GraphChiEngine::convert(&g, 4);
        let mut pr =
            PageRank::new(g.num_vertices, engine.out_degrees(), 0.85, 1).with_tolerance(0.0);
        assert_eq!(engine.psw_once(&mut pr), g.num_edges() as u64);
    }
}
