//! `graphm-delta` — mutate a disk-resident store.
//!
//! The CLI front of [`graphm_store::DeltaWriter`]: batches edge
//! insertions/deletions against a store written by `graphm-convert`,
//! publishes them as a new generation (which a running `graphm-server`
//! picks up between rounds), and drives compaction/retirement. The
//! single-writer contract applies: run one `graphm-delta` at a time per
//! store; any number of readers/daemons may stay live throughout.
//!
//! ```text
//! graphm-delta --store DIR [--insert S,D[,W]]... [--delete S,D]...
//!              [--random N,SEED] [--compact] [--retire] [--status]
//!              [--max-delta-bytes B] [--max-delta-ratio R]
//! ```

use graphm_store::{CompactionPolicy, DeltaWriter};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: graphm-delta --store DIR [--insert S,D[,W]]... [--delete S,D]... \
         [--random N,SEED] [--compact] [--retire] [--status]\n\
         \n\
         --store DIR          store directory written by graphm-convert (required)\n\
         --insert S,D[,W]     batch an edge insertion (weight defaults to 1.0)\n\
         --delete S,D         batch a deletion tombstone for every (S, D) edge\n\
         --random N,SEED      batch N deterministic pseudo-random mutations\n\
         --max-delta-bytes B  auto-compact once delta payload exceeds B (default 64 MiB)\n\
         --max-delta-ratio R  auto-compact once delta payload exceeds R * base (default 0.5)\n\
         --compact            fold the delta chains into fresh base segments\n\
         --retire             delete files unreferenced by the current generation\n\
         --status             print generation / delta / compaction counters\n\
         \n\
         batched mutations (if any) are published as one new generation before\n\
         --compact / --retire / --status run"
    );
    exit(2);
}

fn parse_pair(spec: &str) -> Option<(u32, u32)> {
    let mut it = spec.split(',');
    let s = it.next()?.trim().parse().ok()?;
    let d = it.next()?.trim().parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((s, d))
}

fn parse_insert(spec: &str) -> Option<(u32, u32, f32)> {
    let parts: Vec<&str> = spec.split(',').collect();
    match parts.as_slice() {
        [s, d] => Some((s.trim().parse().ok()?, d.trim().parse().ok()?, 1.0)),
        [s, d, w] => Some((s.trim().parse().ok()?, d.trim().parse().ok()?, w.trim().parse().ok()?)),
        _ => None,
    }
}

/// SplitMix64 — deterministic pseudo-random mutations without pulling in
/// a generator crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn main() {
    let mut store: Option<PathBuf> = None;
    enum Op {
        Insert(u32, u32, f32),
        Delete(u32, u32),
        Random(u64, u64),
    }
    let mut ops: Vec<Op> = Vec::new();
    let mut compact = false;
    let mut retire = false;
    let mut status = false;
    let mut policy = CompactionPolicy::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--store" => store = Some(PathBuf::from(value("--store"))),
            "--insert" => {
                let (s, d, w) = parse_insert(&value("--insert")).unwrap_or_else(|| usage());
                ops.push(Op::Insert(s, d, w));
            }
            "--delete" => {
                let (s, d) = parse_pair(&value("--delete")).unwrap_or_else(|| usage());
                ops.push(Op::Delete(s, d));
            }
            "--random" => {
                let spec = value("--random");
                let mut it = spec.split(',');
                let n = it.next().and_then(|v| v.trim().parse().ok()).unwrap_or_else(|| usage());
                let seed = it.next().and_then(|v| v.trim().parse().ok()).unwrap_or_else(|| usage());
                ops.push(Op::Random(n, seed));
            }
            "--max-delta-bytes" => {
                policy.max_delta_bytes =
                    value("--max-delta-bytes").parse().unwrap_or_else(|_| usage())
            }
            "--max-delta-ratio" => {
                policy.max_delta_ratio =
                    value("--max-delta-ratio").parse().unwrap_or_else(|_| usage())
            }
            "--compact" => compact = true,
            "--retire" => retire = true,
            "--status" => status = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let Some(store) = store else { usage() };
    let mut writer = match DeltaWriter::open(&store) {
        Ok(w) => w.with_policy(policy),
        Err(e) => {
            eprintln!("failed to open {}: {e}", store.display());
            exit(1);
        }
    };
    let nv = writer.num_vertices() as u64;
    for op in &ops {
        let result = match *op {
            Op::Insert(s, d, w) => writer.insert(s, d, w),
            Op::Delete(s, d) => writer.delete(s, d),
            Op::Random(n, seed) => {
                let mut state = seed;
                let mut result = Ok(());
                for i in 0..n {
                    let src = (splitmix(&mut state) % nv.max(1)) as u32;
                    let dst = (splitmix(&mut state) % nv.max(1)) as u32;
                    result = if i % 4 == 3 {
                        // Every fourth mutation is a tombstone; it may
                        // match nothing, which is a legal no-op delete.
                        writer.delete(src, dst)
                    } else {
                        writer.insert(src, dst, (splitmix(&mut state) % 1000) as f32 / 500.0)
                    };
                    if result.is_err() {
                        break;
                    }
                }
                result
            }
        };
        if let Err(e) = result {
            eprintln!("mutation rejected: {e}");
            exit(1);
        }
    }

    if writer.pending_mutations() > 0 {
        let pending = writer.pending_mutations();
        match writer.publish() {
            Ok(generation) => {
                eprintln!("[delta] published {pending} mutations as generation {generation}")
            }
            Err(e) => {
                eprintln!("publish failed: {e}");
                exit(1);
            }
        }
    }
    if compact {
        match writer.compact() {
            Ok(generation) => eprintln!(
                "[delta] compacted into generation {generation} ({} compactions total)",
                writer.compactions()
            ),
            Err(e) => {
                eprintln!("compaction failed: {e}");
                exit(1);
            }
        }
    }
    if retire {
        match writer.retire_older_generations() {
            Ok(removed) => eprintln!("[delta] retired {removed} stale files"),
            Err(e) => {
                eprintln!("retirement failed: {e}");
                exit(1);
            }
        }
    }
    if status || (ops.is_empty() && !compact && !retire) {
        println!(
            "{{\"generation\":{},\"delta_bytes\":{},\"base_bytes\":{},\"compactions\":{}}}",
            writer.generation(),
            writer.delta_bytes(),
            writer.base_bytes(),
            writer.compactions()
        );
    }
}
