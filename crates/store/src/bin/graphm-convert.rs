//! `graphm-convert` — build a disk-resident partition store.
//!
//! The CLI front of [`graphm_store::Convert`]: takes an input graph
//! (a GraphM binary edge list, or a generated R-MAT graph for quickstarts
//! and smoke tests), partitions it grid- or shard-wise, and writes the
//! per-partition segment files plus `manifest.bin` that `graphm-server`
//! and `Workbench::from_disk` open.
//!
//! ```text
//! graphm-convert --out DIR [--grid P | --shards P]
//!                (--input EDGELIST.bin | --rmat V,E,SEED)
//! ```

use graphm_store::Convert;
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: graphm-convert --out DIR [--grid P | --shards P] \
         (--input EDGELIST.bin | --rmat V,E,SEED)\n\
         \n\
         --out DIR          store directory to create (segments + manifest.bin)\n\
         --grid P           grid-partition into P x P blocks (default: --grid 4)\n\
         --shards P         shard-partition into P source-sorted shards\n\
         --input FILE       GraphM binary edge list (graphm_graph::storage format)\n\
         --rmat V,E,SEED    generate a Graph500 R-MAT graph instead (deterministic)"
    );
    exit(2);
}

fn parse_rmat(spec: &str) -> Option<(u32, usize, u64)> {
    let mut it = spec.split(',');
    let v = it.next()?.trim().parse().ok()?;
    let e = it.next()?.trim().parse().ok()?;
    let seed = it.next()?.trim().parse().ok()?;
    if it.next().is_some() {
        return None;
    }
    Some((v, e, seed))
}

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut builder: Option<Convert> = None;
    let mut input: Option<PathBuf> = None;
    let mut rmat: Option<(u32, usize, u64)> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--out" => out = Some(PathBuf::from(value("--out"))),
            "--grid" => {
                builder = Some(Convert::grid(value("--grid").parse().unwrap_or_else(|_| usage())))
            }
            "--shards" => {
                builder =
                    Some(Convert::shards(value("--shards").parse().unwrap_or_else(|_| usage())))
            }
            "--input" => input = Some(PathBuf::from(value("--input"))),
            "--rmat" => rmat = Some(parse_rmat(&value("--rmat")).unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let Some(out) = out else { usage() };
    let builder = builder.unwrap_or_else(|| Convert::grid(4));
    let graph = match (input, rmat) {
        (Some(path), None) => graphm_graph::storage::read_edge_list(&path).unwrap_or_else(|e| {
            eprintln!("failed to read {}: {e}", path.display());
            exit(1);
        }),
        (None, Some((v, e, seed))) => {
            eprintln!("[convert] generating R-MAT: {v} vertices, {e} edges, seed {seed}");
            graphm_graph::generators::rmat(
                v,
                e,
                graphm_graph::generators::RmatParams::GRAPH500,
                seed,
            )
        }
        _ => usage(),
    };

    let start = std::time::Instant::now();
    let manifest = builder.write(&graph, &out).unwrap_or_else(|e| {
        eprintln!("conversion failed: {e}");
        exit(1);
    });
    eprintln!(
        "[convert] wrote {} partitions, {} edges ({} bytes) to {} in {:.2}s",
        manifest.partitions.len(),
        manifest.num_edges(),
        manifest.graph_bytes(),
        out.display(),
        start.elapsed().as_secs_f64(),
    );
}
