//! Hot-standby **replication**: the frame codec followers and primaries
//! exchange, the generation-to-frame reader on the primary side, and the
//! [`ReplicaApplier`] that replays shipped frames into a follower's own
//! store directory.
//!
//! The replication unit is one **generation**: everything a single
//! `DeltaWriter::publish` (or compaction) made durable. A frame carries
//! the generation number, the primary's lease epoch, the frame kind
//! (delta publish vs compaction), and — for delta publishes — the
//! partition-major record stream of that generation. Because partition
//! routing is deterministic (`DeltaWriter::partition_of` uses the exact
//! arithmetic `Convert()` used) and the applier drives the records
//! through the *same* publish path the primary used, the follower's
//! delta segments, generation manifest, and `CURRENT` pointer come out
//! **byte-identical** to the primary's. Compactions replicate as a
//! zero-record `Compact` frame: the fold is a deterministic function of
//! the (identical) prior state, so mirroring the trigger mirrors the
//! bytes.
//!
//! Catch-up (anti-entropy) needs no separate log: the primary rebuilds
//! any retained generation's frame straight from its delta segments
//! ([`read_generation_frame`]), so a follower that reconnects after
//! downtime asks for `[have + 1, current]` and receives exactly the
//! frames it missed. Generations already retired by
//! `retire_older_generations` cannot be rebuilt — the primary reports a
//! typed error and the follower must re-seed from a fresh copy.
//!
//! Failure injection: [`ReplicaApplier::apply`] crosses the
//! `repl.apply` failpoint and [`read_generation_frame`] crosses
//! `repl.ship`, so chaos harnesses can kill either side of the stream at
//! the send/apply boundary in addition to every fsync/rename boundary
//! the underlying publish already exposes.

use crate::delta::{CompactionPolicy, DeltaWriter};
use crate::lease::LeaseConfig;
use crate::wal::crc32;
use graphm_graph::delta::{
    delta_file_name, read_delta_segment, DeltaRecord, GenManifest, DELTA_OP_DELETE,
    DELTA_RECORD_BYTES,
};
use graphm_graph::{failpoint, GraphError, Result, VertexId};
use std::path::Path;

/// Magic bytes opening every replication frame.
pub const REPL_MAGIC: &[u8; 8] = b"GMREPL01";

/// Frame header: magic (8) + payload length (4) + payload CRC32 (4).
pub const REPL_FRAME_HEADER_BYTES: usize = 16;

/// Payload header: generation (8) + primary epoch (8) + kind (4) +
/// record count (4).
pub const REPL_PAYLOAD_HEADER_BYTES: usize = 24;

/// Frame kind tag: a delta publish carrying its record stream.
pub const REPL_KIND_DELTA: u32 = 0;

/// Frame kind tag: a compaction (no records; the follower re-runs the
/// deterministic fold).
pub const REPL_KIND_COMPACT: u32 = 1;

/// What one replication frame replicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// A delta publish: apply the carried records and publish.
    Delta,
    /// A compaction: fold the current chains (deterministic, no records).
    Compact,
}

/// One shipped generation: the unit a follower applies atomically.
#[derive(Clone, Debug, PartialEq)]
pub struct ReplFrame {
    /// The generation this frame produces when applied.
    pub generation: u64,
    /// The shipping primary's lease epoch (followers track the highest
    /// seen; promotion must exceed it).
    pub primary_epoch: u64,
    /// Delta publish or compaction.
    pub kind: FrameKind,
    /// Partition-major record stream of the publish (empty for
    /// compactions).
    pub records: Vec<DeltaRecord>,
}

/// Encodes a frame: `magic | len u32 | crc32 u32 | payload`, payload =
/// `generation u64 | primary_epoch u64 | kind u32 | count u32 | count ×
/// 16-byte records`, all little-endian. The CRC covers the payload.
pub fn encode_frame(frame: &ReplFrame) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(REPL_PAYLOAD_HEADER_BYTES + frame.records.len() * DELTA_RECORD_BYTES);
    payload.extend_from_slice(&frame.generation.to_le_bytes());
    payload.extend_from_slice(&frame.primary_epoch.to_le_bytes());
    let kind = match frame.kind {
        FrameKind::Delta => REPL_KIND_DELTA,
        FrameKind::Compact => REPL_KIND_COMPACT,
    };
    payload.extend_from_slice(&kind.to_le_bytes());
    payload.extend_from_slice(&(frame.records.len() as u32).to_le_bytes());
    for r in &frame.records {
        payload.extend_from_slice(&r.src.to_le_bytes());
        payload.extend_from_slice(&r.dst.to_le_bytes());
        payload.extend_from_slice(&r.weight.to_le_bytes());
        payload.extend_from_slice(&r.op.to_le_bytes());
    }
    let mut out = Vec::with_capacity(REPL_FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(REPL_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame from `bytes`, which must hold exactly one frame.
/// Truncation, trailing garbage, a bad magic/CRC, an inconsistent count,
/// an unknown kind, or an unknown record op all yield a typed error —
/// never a panic, never a partial frame.
pub fn decode_frame(bytes: &[u8]) -> Result<ReplFrame> {
    if bytes.len() < REPL_FRAME_HEADER_BYTES {
        return Err(GraphError::Truncated {
            what: "replication frame header".to_string(),
            needed: REPL_FRAME_HEADER_BYTES as u64,
            available: bytes.len() as u64,
        });
    }
    if &bytes[..8] != REPL_MAGIC {
        return Err(GraphError::Format("bad replication frame magic".to_string()));
    }
    let len = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
    let available = bytes.len() - REPL_FRAME_HEADER_BYTES;
    if len > available {
        return Err(GraphError::Truncated {
            what: "replication frame payload".to_string(),
            needed: len as u64,
            available: available as u64,
        });
    }
    if len < available {
        return Err(GraphError::Format(format!(
            "replication frame has {} trailing bytes",
            available - len
        )));
    }
    let payload = &bytes[REPL_FRAME_HEADER_BYTES..];
    if crc32(payload) != crc {
        return Err(GraphError::Format("replication frame CRC mismatch".to_string()));
    }
    if len < REPL_PAYLOAD_HEADER_BYTES {
        return Err(GraphError::Truncated {
            what: "replication payload header".to_string(),
            needed: REPL_PAYLOAD_HEADER_BYTES as u64,
            available: len as u64,
        });
    }
    let generation = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let primary_epoch = u64::from_le_bytes(payload[8..16].try_into().unwrap());
    let kind_tag = u32::from_le_bytes(payload[16..20].try_into().unwrap());
    let count = u32::from_le_bytes(payload[20..24].try_into().unwrap()) as usize;
    let kind = match kind_tag {
        REPL_KIND_DELTA => FrameKind::Delta,
        REPL_KIND_COMPACT => FrameKind::Compact,
        t => return Err(GraphError::Format(format!("unknown replication frame kind {t}"))),
    };
    let body = len - REPL_PAYLOAD_HEADER_BYTES;
    if count.checked_mul(DELTA_RECORD_BYTES) != Some(body) {
        return Err(GraphError::Format(format!(
            "replication frame says {count} records but carries {body} payload bytes"
        )));
    }
    if kind == FrameKind::Compact && count != 0 {
        return Err(GraphError::Format(format!(
            "compaction frame must carry no records, has {count}"
        )));
    }
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let at = REPL_PAYLOAD_HEADER_BYTES + i * DELTA_RECORD_BYTES;
        let rec = &payload[at..at + DELTA_RECORD_BYTES];
        let parsed = DeltaRecord {
            src: VertexId::from_le_bytes(rec[0..4].try_into().unwrap()),
            dst: VertexId::from_le_bytes(rec[4..8].try_into().unwrap()),
            weight: f32::from_le_bytes(rec[8..12].try_into().unwrap()),
            op: u32::from_le_bytes(rec[12..16].try_into().unwrap()),
        };
        if parsed.op > DELTA_OP_DELETE {
            return Err(GraphError::Format(format!(
                "replication record {i} has unknown op {}",
                parsed.op
            )));
        }
        records.push(parsed);
    }
    Ok(ReplFrame { generation, primary_epoch, kind, records })
}

/// Rebuilds the frame for a **published** generation straight from the
/// store directory: the live ship path and anti-entropy catch-up are one
/// code path, so a frame rebuilt days later is bit-identical to the one
/// shipped live. Reads the generation's manifest, classifies it (a
/// compaction increments the cumulative `compactions` counter), and for
/// delta publishes gathers the generation's delta segments in partition
/// order — exactly the partition-major order the primary flattened into
/// its WAL. Fails with a typed error when the generation's files have
/// been retired (the follower must then re-seed).
pub fn read_generation_frame(dir: &Path, generation: u64, primary_epoch: u64) -> Result<ReplFrame> {
    failpoint::hit("repl.ship")?;
    if generation == 0 {
        return Err(GraphError::Format(
            "generation 0 is the base store; seed followers by copying it".to_string(),
        ));
    }
    let gm = GenManifest::read_from_dir(dir, generation)?;
    let prev_compactions = if generation == 1 {
        0
    } else {
        GenManifest::read_from_dir(dir, generation - 1)?.compactions
    };
    if gm.compactions > prev_compactions {
        return Ok(ReplFrame {
            generation,
            primary_epoch,
            kind: FrameKind::Compact,
            records: Vec::new(),
        });
    }
    let mut records = Vec::new();
    for (pid, part) in gm.partitions.iter().enumerate() {
        let name = delta_file_name(generation, pid);
        for dref in &part.deltas {
            if dref.file == name {
                records.extend(read_delta_segment(&dir.join(&dref.file))?);
            }
        }
    }
    if records.is_empty() {
        return Err(GraphError::Format(format!(
            "generation {generation} has no replayable delta segments (retired or compacted); \
             follower must re-seed"
        )));
    }
    Ok(ReplFrame { generation, primary_epoch, kind: FrameKind::Delta, records })
}

/// What applying one frame did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The frame advanced the store to this generation.
    Applied(u64),
    /// The frame's generation was already applied (a resend after a
    /// crash-recovery republish); nothing changed.
    Duplicate,
}

/// The follower side: replays shipped frames into this node's own store
/// directory through the standard `DeltaWriter` publish path, so the
/// follower's on-disk state (delta segments, generation manifests,
/// `CURRENT`) is byte-identical to the primary's and inherits the whole
/// WAL + lease crash story — a follower killed mid-apply recovers
/// through the same replay the primary would.
///
/// The applier holds the **follower's own** writer lease; promotion
/// ([`ReplicaApplier::promote`]) fences that lease at `epoch + 1` through
/// the standard takeover path and hands back a plain [`DeltaWriter`]
/// ready for primary duty.
pub struct ReplicaApplier {
    writer: DeltaWriter,
    primary_epoch: u64,
    frames_applied: u64,
}

impl ReplicaApplier {
    /// Opens the applier over the follower's store directory with the
    /// default lease config.
    pub fn open(dir: &Path) -> Result<ReplicaApplier> {
        ReplicaApplier::open_with(dir, LeaseConfig::default())
    }

    /// [`open`](ReplicaApplier::open) with an explicit lease config
    /// (crash harnesses pass [`LeaseConfig::force_takeover`]).
    ///
    /// Auto-compaction is disabled: the primary drives compaction through
    /// explicit [`FrameKind::Compact`] frames, so a follower must never
    /// compact on its own or the stores diverge.
    pub fn open_with(dir: &Path, lease_config: LeaseConfig) -> Result<ReplicaApplier> {
        let writer =
            DeltaWriter::open_with(dir, lease_config)?.with_policy(CompactionPolicy::never());
        Ok(ReplicaApplier { writer, primary_epoch: 0, frames_applied: 0 })
    }

    /// The generation this follower's store currently points at.
    pub fn generation(&self) -> u64 {
        self.writer.generation()
    }

    /// The epoch of the follower's own writer lease (on its own dir).
    pub fn lease_epoch(&self) -> u64 {
        self.writer.lease_epoch()
    }

    /// The highest primary lease epoch seen in applied frames.
    pub fn primary_epoch(&self) -> u64 {
        self.primary_epoch
    }

    /// Frames applied (not counting duplicates) since open.
    pub fn frames_applied(&self) -> u64 {
        self.frames_applied
    }

    /// Vertex count of the replicated store.
    pub fn num_vertices(&self) -> VertexId {
        self.writer.num_vertices()
    }

    /// Applies one frame. Frames must arrive in generation order:
    /// `generation <= have` is a harmless [`ApplyOutcome::Duplicate`],
    /// `generation == have + 1` applies, anything beyond is a typed gap
    /// error (reordered or lost frames — the follower must re-request the
    /// range). An apply that fails midway discards the partial batch, so
    /// the writer is clean for the retry.
    pub fn apply(&mut self, frame: &ReplFrame) -> Result<ApplyOutcome> {
        failpoint::hit("repl.apply")?;
        let have = self.writer.generation();
        if frame.generation <= have {
            return Ok(ApplyOutcome::Duplicate);
        }
        if frame.generation != have + 1 {
            return Err(GraphError::Format(format!(
                "replication gap: follower at generation {have}, frame targets {} \
                 (frames reordered or lost)",
                frame.generation
            )));
        }
        if frame.primary_epoch > self.primary_epoch {
            self.primary_epoch = frame.primary_epoch;
        }
        let published = match frame.kind {
            FrameKind::Delta => self.apply_delta_frame(frame)?,
            FrameKind::Compact => self.writer.compact()?,
        };
        if published != frame.generation {
            return Err(GraphError::Format(format!(
                "replication divergence: applying frame for generation {} produced {published}",
                frame.generation
            )));
        }
        self.frames_applied += 1;
        Ok(ApplyOutcome::Applied(published))
    }

    fn apply_delta_frame(&mut self, frame: &ReplFrame) -> Result<u64> {
        let staged = (|| -> Result<()> {
            for r in &frame.records {
                if r.op == DELTA_OP_DELETE {
                    self.writer.delete(r.src, r.dst)?;
                } else {
                    self.writer.insert(r.src, r.dst, r.weight)?;
                }
            }
            Ok(())
        })();
        if let Err(e) = staged {
            self.writer.discard_pending();
            return Err(e);
        }
        self.writer.publish()
    }

    /// Promotes this follower to primary **through the epoch fence**: the
    /// applier's own lease identity is abandoned (exactly what a dying
    /// process leaves behind) and the store is re-acquired with a forced
    /// takeover, which bumps the epoch to `old + 1`. Any surviving writer
    /// handle on this directory is fenced — its next flip fails with
    /// `EpochFenced`. Returns the writer ready for primary duty (default
    /// compaction policy restored).
    pub fn promote(self) -> Result<DeltaWriter> {
        let dir = self.writer.dir().to_path_buf();
        self.writer.crash();
        DeltaWriter::open_with(&dir, LeaseConfig::force_takeover())
    }

    /// Simulates the follower process dying mid-stream: abandons the
    /// lease without checkpointing, exactly the state `kill -9` leaves.
    pub fn crash(self) {
        self.writer.crash();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn frame_from_seeds(seeds: &[u64], generation: u64, epoch: u64) -> ReplFrame {
        let records: Vec<DeltaRecord> = seeds
            .iter()
            .map(|&x| {
                let src = (x >> 32) as u32 & 0xffff;
                let dst = (x >> 16) as u32 & 0xffff;
                if x & 1 == 0 {
                    DeltaRecord::insert(src, dst, (x & 0xff) as f32 * 0.5)
                } else {
                    DeltaRecord::delete(src, dst)
                }
            })
            .collect();
        ReplFrame { generation, primary_epoch: epoch, kind: FrameKind::Delta, records }
    }

    #[test]
    fn frame_round_trips_including_compactions() {
        let frame = frame_from_seeds(&[1, 2, 3, 8], 7, 3);
        let back = decode_frame(&encode_frame(&frame)).unwrap();
        assert_eq!(back, frame);
        let compact = ReplFrame {
            generation: 9,
            primary_epoch: 4,
            kind: FrameKind::Compact,
            records: vec![],
        };
        assert_eq!(decode_frame(&encode_frame(&compact)).unwrap(), compact);
        // Empty delta frames round-trip too (a publish is never empty in
        // practice, but the codec must not care).
        let empty = frame_from_seeds(&[], 1, 1);
        assert_eq!(decode_frame(&encode_frame(&empty)).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        let good = encode_frame(&frame_from_seeds(&[5, 6], 2, 1));
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decode_frame(&bad).unwrap_err(), GraphError::Format(_)));
        // Trailing garbage.
        let mut long = good.clone();
        long.push(0);
        assert!(matches!(decode_frame(&long).unwrap_err(), GraphError::Format(_)));
        // Unknown kind tag.
        let mut frame = frame_from_seeds(&[], 2, 1);
        frame.kind = FrameKind::Compact;
        let mut enc = encode_frame(&frame);
        let kind_at = REPL_FRAME_HEADER_BYTES + 16;
        enc[kind_at] = 9;
        let crc = crc32(&enc[REPL_FRAME_HEADER_BYTES..]);
        enc[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_frame(&enc).unwrap_err(), GraphError::Format(_)));
        // Compaction frame carrying records.
        let mut compact = encode_frame(&frame_from_seeds(&[4], 2, 1));
        compact[kind_at] = REPL_KIND_COMPACT as u8;
        let crc = crc32(&compact[REPL_FRAME_HEADER_BYTES..]);
        compact[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_frame(&compact).unwrap_err(), GraphError::Format(_)));
        // Unknown record op.
        let mut op_bad = encode_frame(&frame_from_seeds(&[4], 2, 1));
        let op_at = REPL_FRAME_HEADER_BYTES + REPL_PAYLOAD_HEADER_BYTES + 12;
        op_bad[op_at] = 7;
        let crc = crc32(&op_bad[REPL_FRAME_HEADER_BYTES..]);
        op_bad[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(decode_frame(&op_bad).unwrap_err(), GraphError::Format(_)));
    }

    proptest! {
        /// Arbitrary frames round-trip bit-exactly.
        #[test]
        fn prop_frame_round_trips(seeds in proptest::collection::vec(any::<u64>(), 0..50),
                                  generation in 1u64..1_000_000,
                                  epoch in 1u64..1_000) {
            let frame = frame_from_seeds(&seeds, generation, epoch);
            let back = decode_frame(&encode_frame(&frame)).unwrap();
            prop_assert_eq!(back.generation, frame.generation);
            prop_assert_eq!(back.primary_epoch, frame.primary_epoch);
            prop_assert_eq!(back.records.len(), frame.records.len());
            for (a, b) in back.records.iter().zip(&frame.records) {
                prop_assert_eq!((a.src, a.dst, a.op), (b.src, b.dst, b.op));
                prop_assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            }
        }

        /// Truncating an encoded frame at any byte yields a typed error,
        /// never a panic or a partial decode.
        #[test]
        fn prop_frame_truncation_is_typed(seeds in proptest::collection::vec(any::<u64>(), 0..30),
                                          cut_seed in any::<u64>()) {
            let enc = encode_frame(&frame_from_seeds(&seeds, 3, 2));
            let cut = (cut_seed % enc.len() as u64) as usize;
            match decode_frame(&enc[..cut]) {
                Err(GraphError::Truncated { .. }) | Err(GraphError::Format(_)) => {}
                other => prop_assert!(false, "truncation must be typed, got {other:?}"),
            }
        }

        /// Flipping any single byte yields a typed error (the CRC covers
        /// the payload; header flips break magic, length, or CRC).
        #[test]
        fn prop_frame_corruption_is_typed(seeds in proptest::collection::vec(any::<u64>(), 1..30),
                                          at_seed in any::<u64>(),
                                          flip_seed in any::<u64>()) {
            let mut enc = encode_frame(&frame_from_seeds(&seeds, 3, 2));
            let at = (at_seed % enc.len() as u64) as usize;
            enc[at] ^= 1 + (flip_seed % 255) as u8;
            match decode_frame(&enc) {
                Err(GraphError::Truncated { .. }) | Err(GraphError::Format(_)) => {}
                other => prop_assert!(false, "corruption must be typed, got {other:?}"),
            }
        }
    }
}
