//! # graphm-store — disk-resident, mmap-backed partition store
//!
//! GraphM is a *storage system*: the original graph lives in secondary
//! storage, `Convert()` preprocesses it once into the host engine's
//! partition format, and concurrent jobs stream those partitions through
//! one shared in-memory copy. This crate is the secondary-storage half of
//! that story, which the in-memory sources only simulated:
//!
//! * [`Convert`] — grid- or shard-partitions an `EdgeList` and writes it
//!   as per-partition segment files plus a manifest (offsets,
//!   source-vertex bounds, byte counts) under one directory;
//! * [`DiskGridSource`] / [`DiskShardSource`] — `mmap`-backed readers
//!   implementing `graphm_core::PartitionSource`, so `run_scheme`, the
//!   `SharingRuntime`, and the scheduler run unchanged on disk-resident
//!   graphs with *real* per-partition byte counts from the manifest;
//! * [`mmap::FileView`] — the no-dependency mapping primitive underneath.
//!
//! ## From edge list to disk-backed run
//!
//! ```
//! use graphm_store::{Convert, DiskGridSource};
//!
//! let graph = graphm_graph::generators::rmat(
//!     500, 4000, graphm_graph::generators::RmatParams::GRAPH500, 7);
//! let dir = std::env::temp_dir().join(format!("graphm-store-doc-{}", std::process::id()));
//!
//! // Convert(): one segment file per grid block + manifest.bin.
//! let manifest = Convert::grid(4).write(&graph, &dir).unwrap();
//! assert_eq!(manifest.num_edges(), 4000);
//!
//! // Zero-copy reader; a drop-in PartitionSource for the runtime.
//! let source = DiskGridSource::open(&dir).unwrap();
//! use graphm_core::PartitionSource;
//! assert_eq!(source.num_partitions(), 16);
//! assert_eq!(source.graph_bytes(), 4000 * 12);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod convert;
pub mod delta;
pub mod lease;
pub mod mmap;
pub mod prefetch;
pub mod replica;
pub mod source;
pub mod wal;

pub use convert::{convert_fresh, segment_file_name, Convert};
pub use delta::{CompactionPolicy, DeltaWriter};
pub use lease::{LeaseConfig, WriterLease};
pub use prefetch::{
    AdaptiveWindow, Prefetcher, DEFAULT_MAX_PREFETCH_LOOKAHEAD, MIN_PREFETCH_WINDOW,
};
pub use replica::{
    decode_frame, encode_frame, read_generation_frame, ApplyOutcome, FrameKind, ReplFrame,
    ReplicaApplier,
};
pub use source::{
    DeltaStats, DiskGridSource, DiskShardSource, PrefetchStats, PrefetchTarget, ResidencyStats,
};
pub use wal::{replay_wal_bytes, Wal, WalBatch, WalStats};

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_core::PartitionSource;
    use graphm_graph::segment::{Manifest, StoreLayout};
    use graphm_graph::{generators, AtomicBitmap, GraphError, Grid, Shards, EDGE_BYTES};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-store-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn grid_store_round_trips_against_in_memory_grid() {
        let g = generators::rmat(300, 2500, generators::RmatParams::GRAPH500, 21);
        let dir = tmpdir("grid-roundtrip");
        let manifest = Convert::grid(4).write(&g, &dir).unwrap();
        assert_eq!(manifest.layout, StoreLayout::Grid { p: 4 });
        assert_eq!(manifest.num_edges(), 2500);

        let grid = Grid::convert(&g, 4);
        let src = DiskGridSource::open(&dir).unwrap();
        assert_eq!(src.num_partitions(), 16);
        assert_eq!(src.num_vertices(), 300);
        assert_eq!(src.p(), 4);
        assert_eq!(src.order(), grid.streaming_order());
        assert_eq!(src.graph_bytes(), 2500 * EDGE_BYTES);
        for pid in 0..16 {
            let disk = src.edges(pid);
            let mem = grid.block_by_index(pid);
            assert_eq!(disk.len(), mem.len(), "block {pid}");
            for (a, b) in disk.iter().zip(mem) {
                assert_eq!((a.src, a.dst), (b.src, b.dst));
                assert_eq!(a.weight, b.weight);
            }
            assert_eq!(src.partition_bytes(pid), mem.len() * EDGE_BYTES);
            // load() agrees with the zero-copy view.
            assert_eq!(src.load(pid).as_slice(), disk);
        }
        assert_eq!(src.out_degrees(), g.out_degrees());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memory_budget_evicts_behind_frontier_without_changing_data() {
        let g = generators::rmat(400, 6000, generators::RmatParams::GRAPH500, 11);
        let dir = tmpdir("eviction");
        let manifest = Convert::grid(4).write(&g, &dir).unwrap();
        let src = DiskGridSource::open(&dir).unwrap();
        let store_bytes: u64 = manifest.partitions.iter().map(|p| p.byte_len).sum();

        // Unbudgeted pass: residency grows monotonically, nothing evicts.
        let baseline: Vec<Vec<graphm_graph::Edge>> =
            (0..src.num_partitions()).map(|pid| src.load(pid).as_ref().clone()).collect();
        let rs = src.residency_stats();
        assert_eq!(rs.evictions, 0);
        assert_eq!(rs.evicted_bytes, 0);
        assert_eq!(rs.resident_bytes, store_bytes, "every segment touched once");

        // Out-of-core regime: a budget of half the store forces releases
        // behind the frontier while sweeping.
        src.set_memory_budget(store_bytes / 2);
        for _sweep in 0..3 {
            for (pid, expect) in baseline.iter().enumerate() {
                assert_eq!(src.load(pid).as_slice(), &expect[..], "data survives eviction");
            }
        }
        let rs = src.residency_stats();
        assert!(rs.evictions > 0, "budget pressure must evict");
        assert!(rs.evicted_bytes > 0);
        assert!(
            rs.resident_bytes <= store_bytes / 2,
            "residency {} must fit the budget {}",
            rs.resident_bytes,
            store_bytes / 2
        );
        assert_eq!(rs.budget_bytes, store_bytes / 2);

        // An in-memory-sized budget stops evicting once enforced.
        src.set_memory_budget(store_bytes * 2);
        let before = src.residency_stats().evictions;
        for pid in 0..src.num_partitions() {
            let _ = src.load(pid);
        }
        assert_eq!(src.residency_stats().evictions, before, "roomy budget never evicts");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_load_is_shared_while_live() {
        let g = generators::rmat(100, 900, generators::RmatParams::GRAPH500, 5);
        let dir = tmpdir("grid-share");
        Convert::grid(2).write(&g, &dir).unwrap();
        let src = DiskGridSource::open(&dir).unwrap();
        let a = src.load(1);
        let b = src.load(1);
        assert!(std::sync::Arc::ptr_eq(&a, &b), "concurrent loads share one copy");
        drop((a, b));
        let c = src.load(1);
        assert_eq!(c.len(), src.edges(1).len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn grid_activity_matches_in_memory_semantics() {
        let g = generators::ring(9);
        let dir = tmpdir("grid-activity");
        Convert::grid(3).write(&g, &dir).unwrap();
        let src = DiskGridSource::open(&dir).unwrap();
        let grid = Grid::convert(&g, 3);
        let active = AtomicBitmap::new(9);
        active.set(4); // row 1
        for pid in 0..9 {
            let (row, _) = grid.block_coords(pid);
            let expect = row == 1 && !grid.block_by_index(pid).is_empty();
            assert_eq!(src.partition_active(pid, &active), expect, "block {pid}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_store_round_trips_against_in_memory_shards() {
        let g = generators::rmat(200, 1800, generators::RmatParams::SOCIAL, 9);
        let dir = tmpdir("shards-roundtrip");
        let manifest = Convert::shards(4).write(&g, &dir).unwrap();
        assert_eq!(manifest.layout, StoreLayout::Shards { p: 4 });

        let shards = Shards::convert(&g, 4);
        let src = DiskShardSource::open(&dir).unwrap();
        assert_eq!(src.num_partitions(), 4);
        for s in 0..4 {
            assert_eq!(src.edges(s).len(), shards.shard(s).len());
            assert_eq!(src.partition_bytes(s), shards.interval_load_bytes(s));
        }
        // Activity: vertex 0's only out-edge goes to interval 0 (path-like
        // rmat edges exist; just check agreement with ChiSource semantics).
        let active = AtomicBitmap::new(200);
        active.set_all();
        for s in 0..4 {
            assert_eq!(src.partition_active(s, &active), !shards.shard(s).is_empty(), "shard {s}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graph_store() {
        let g = graphm_graph::EdgeList::new(5);
        let dir = tmpdir("empty");
        Convert::grid(2).write(&g, &dir).unwrap();
        let src = DiskGridSource::open(&dir).unwrap();
        assert_eq!(src.num_partitions(), 4);
        assert_eq!(src.graph_bytes(), 0);
        let active = AtomicBitmap::new(5);
        active.set_all();
        for pid in 0..4 {
            assert!(src.edges(pid).is_empty());
            assert!(!src.partition_active(pid, &active));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_layout_mismatch_and_corruption() {
        let g = generators::rmat(100, 700, generators::RmatParams::GRAPH500, 2);
        let dir = tmpdir("mismatch");
        Convert::shards(2).write(&g, &dir).unwrap();
        assert!(matches!(DiskGridSource::open(&dir).unwrap_err(), GraphError::Format(_)));
        assert!(DiskShardSource::open(&dir).is_ok());

        // Truncate one segment behind the manifest's back.
        let seg = dir.join(segment_file_name(0));
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            DiskShardSource::open(&dir).unwrap_err(),
            GraphError::Truncated { .. } | GraphError::Format(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_out_of_range_vertex_records() {
        let g = generators::rmat(50, 300, generators::RmatParams::GRAPH500, 8);
        let dir = tmpdir("badvertex");
        Convert::grid(2).write(&g, &dir).unwrap();
        // Corrupt one record's src in a non-empty segment (after the
        // 16-byte header) to a vertex far out of range.
        let seg = (0..4)
            .map(|i| dir.join(segment_file_name(i)))
            .find(|p| std::fs::metadata(p).unwrap().len() > 16)
            .unwrap();
        let mut bytes = std::fs::read(&seg).unwrap();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            DiskGridSource::open(&dir).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: u32::MAX, num_vertices: 50 }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_fresh_refuses_layout_overwrite() {
        let g = generators::rmat(80, 400, generators::RmatParams::GRAPH500, 4);
        let dir = tmpdir("fresh");
        convert_fresh(Convert::grid(2), &g, &dir).unwrap();
        assert!(convert_fresh(Convert::shards(2), &g, &dir).is_err());
        assert!(convert_fresh(Convert::grid(3), &g, &dir).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_shared_returns_one_handle_per_store() {
        let g = generators::rmat(120, 800, generators::RmatParams::GRAPH500, 12);
        let dir = tmpdir("shared-handle");
        Convert::grid(2).write(&g, &dir).unwrap();

        let a = DiskGridSource::open_shared(&dir).unwrap();
        let b = DiskGridSource::open_shared(&dir).unwrap();
        assert!(std::sync::Arc::ptr_eq(&a, &b), "same store, same mapping");
        // A second *independent* opener still works and sees its own state.
        let solo = DiskGridSource::open(&dir).unwrap();
        assert_eq!(solo.num_partitions(), a.num_partitions());
        // The shared materialization cache is one per store: a partition
        // loaded through one handle is the same Arc through the other.
        let pa = a.load(0);
        let pb = b.load(0);
        assert!(std::sync::Arc::ptr_eq(&pa, &pb));
        drop((pa, pb, b));

        // Once every handle drops, the registry entry dies and a fresh
        // open maps the (possibly rewritten) store anew.
        drop(a);
        let g2 = generators::rmat(60, 300, generators::RmatParams::GRAPH500, 13);
        std::fs::remove_dir_all(&dir).ok();
        Convert::grid(2).write(&g2, &dir).unwrap();
        let c = DiskGridSource::open_shared(&dir).unwrap();
        assert_eq!(c.num_vertices(), 60, "fresh handle sees the new store");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The tentpole contract: merged (base + delta) reads are
    /// bit-identical to a from-scratch conversion of the mutated graph —
    /// edges, accounting, and out-degrees alike.
    #[test]
    fn merged_reads_match_from_scratch_conversion_of_mutated_graph() {
        let g = generators::rmat(300, 2600, generators::RmatParams::GRAPH500, 17);
        let dir = tmpdir("delta-merge");
        Convert::grid(3).write(&g, &dir).unwrap();

        // Mutate: delete a handful of real edges (all (src,dst) copies),
        // insert new ones — some into partitions the deletions touched.
        let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
        let mut records = Vec::new();
        for e in g.edges.iter().step_by(97).take(12) {
            writer.delete(e.src, e.dst).unwrap();
            records.push(graphm_graph::delta::DeltaRecord::delete(e.src, e.dst));
        }
        for i in 0..20u32 {
            let (src, dst, w) = (i * 13 % 300, i * 7 % 300, i as f32 * 0.5);
            writer.insert(src, dst, w).unwrap();
            records.push(graphm_graph::delta::DeltaRecord::insert(src, dst, w));
        }
        assert_eq!(writer.pending_mutations(), 32);
        assert_eq!(writer.publish().unwrap(), 1);
        assert_eq!(writer.pending_mutations(), 0);
        assert!(writer.delta_bytes() > 0);

        // Reference: the same mutations applied to the edge list, then a
        // fresh conversion into a second directory.
        let mut mutated = g.clone();
        graphm_graph::delta::apply_delta_to_edge_list(&mut mutated, &records);
        let dir2 = tmpdir("delta-merge-ref");
        Convert::grid(3).write(&mutated, &dir2).unwrap();

        let merged = DiskGridSource::open(&dir).unwrap();
        let reference = DiskGridSource::open(&dir2).unwrap();
        assert_eq!(merged.generation(), 1);
        assert_eq!(merged.graph_bytes(), reference.graph_bytes());
        for pid in 0..merged.num_partitions() {
            let a = merged.load(pid);
            let b = reference.load(pid);
            assert_eq!(a.len(), b.len(), "partition {pid} edge count");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!((x.src, x.dst), (y.src, y.dst), "partition {pid}");
                assert_eq!(x.weight.to_bits(), y.weight.to_bits(), "partition {pid}");
            }
            assert_eq!(merged.partition_bytes(pid), reference.partition_bytes(pid));
        }
        assert_eq!(merged.out_degrees(), mutated.out_degrees());
        let ds = merged.delta_stats();
        assert_eq!(ds.generation, 1);
        assert_eq!(ds.delta_records, 32);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    /// A live handle rotates on refresh — but never mid-sweep: a pinned
    /// sweep keeps its generation, and the rotation lands at the unpin.
    #[test]
    fn refresh_rotates_between_sweeps_only() {
        let g = generators::rmat(120, 900, generators::RmatParams::GRAPH500, 23);
        let dir = tmpdir("delta-rotate");
        Convert::grid(2).write(&g, &dir).unwrap();
        let src = DiskGridSource::open(&dir).unwrap();
        assert_eq!(src.generation(), 0);
        assert!(!src.refresh_generation().unwrap(), "nothing published yet");

        let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
        writer.insert(5, 9, 2.0).unwrap();
        writer.publish().unwrap();
        assert_eq!(src.generation(), 0, "publishes are pull-based");

        // Mid-sweep: the new generation is picked up but not adopted.
        let before: Vec<usize> = (0..4).map(|pid| src.load(pid).len()).collect();
        src.sweep_begin();
        assert!(src.refresh_generation().unwrap());
        assert_eq!(src.generation(), 0, "pinned sweep keeps its generation");
        let during: Vec<usize> = (0..4).map(|pid| src.load(pid).len()).collect();
        assert_eq!(during, before, "loads under the pin see the old generation");
        src.sweep_end();
        assert_eq!(src.generation(), 1, "rotation adopted at the last unpin");
        let after: usize = (0..4).map(|pid| src.load(pid).len()).sum();
        assert_eq!(after, 901, "the merged view carries the insert");
        assert_eq!(src.delta_stats().rotations, 1);
        assert!(!src.refresh_generation().unwrap(), "already current");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Compaction folds the chain into fresh base segments: delta bytes
    /// drop to zero, results do not change, and retirement removes the
    /// superseded files while the store stays openable.
    #[test]
    fn compaction_preserves_results_and_retires_old_generations() {
        let g = generators::rmat(200, 1600, generators::RmatParams::GRAPH500, 29);
        let dir = tmpdir("delta-compact");
        Convert::grid(2).write(&g, &dir).unwrap();
        let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
        for e in g.edges.iter().step_by(131).take(6) {
            writer.delete(e.src, e.dst).unwrap();
        }
        for i in 0..9u32 {
            writer.insert(i * 11 % 200, i * 17 % 200, 1.0).unwrap();
        }
        writer.publish().unwrap();
        let merged: Vec<Vec<graphm_graph::Edge>> = {
            let src = DiskGridSource::open(&dir).unwrap();
            (0..4).map(|pid| src.load(pid).as_ref().clone()).collect()
        };

        let gen = writer.compact().unwrap();
        assert_eq!(gen, 2);
        assert_eq!(writer.delta_bytes(), 0, "compaction folds the whole chain");
        assert_eq!(writer.compactions(), 1);

        let src = DiskGridSource::open(&dir).unwrap();
        assert_eq!(src.generation(), 2);
        assert_eq!(src.delta_stats().compactions, 1);
        assert_eq!(src.delta_stats().delta_bytes, 0);
        for (pid, expect) in merged.iter().enumerate() {
            assert_eq!(src.load(pid).as_slice(), &expect[..], "partition {pid} after compaction");
        }

        // Retire: delta files and the old generation manifest go away,
        // the original Convert() output stays, and a fresh open works.
        let removed = writer.retire_older_generations().unwrap();
        assert!(removed >= 1, "retirement removed stale files");
        assert!(dir.join(segment_file_name(0)).exists(), "gen-0 base is kept");
        assert!(
            !std::fs::read_dir(&dir)
                .unwrap()
                .any(|e| { e.unwrap().file_name().to_string_lossy().ends_with(".dseg") }),
            "no delta segments survive retirement after a full compaction"
        );
        let reopened = DiskGridSource::open(&dir).unwrap();
        for (pid, expect) in merged.iter().enumerate() {
            assert_eq!(reopened.load(pid).as_slice(), &expect[..], "partition {pid} post-retire");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The policy triggers compaction from inside publish once delta
    /// payload crosses the threshold.
    #[test]
    fn compaction_policy_triggers_on_publish() {
        let g = generators::rmat(100, 800, generators::RmatParams::GRAPH500, 31);
        let dir = tmpdir("delta-policy");
        Convert::grid(2).write(&g, &dir).unwrap();
        let mut writer = DeltaWriter::open(&dir)
            .unwrap()
            .with_policy(CompactionPolicy { max_delta_bytes: 64, max_delta_ratio: 0.0 });
        for i in 0..10u32 {
            writer.insert(i % 100, (i * 3) % 100, 1.0).unwrap();
        }
        // 10 records * 16 B = 160 B > 64 B: publish (gen 1) then an
        // automatic compaction (gen 2).
        assert_eq!(writer.publish().unwrap(), 2);
        assert_eq!(writer.compactions(), 1);
        assert_eq!(writer.delta_bytes(), 0);
        let src = DiskGridSource::open(&dir).unwrap();
        assert_eq!(src.generation(), 2);
        assert_eq!(src.manifest().num_edges() + 10, {
            let mut total = 0;
            for pid in 0..4 {
                total += src.load(pid).len() as u64;
            }
            total
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The shard layout merges and routes deltas too (by destination
    /// interval), with exact merged activity sets.
    #[test]
    fn shard_store_serves_deltas() {
        let g = generators::rmat(160, 1200, generators::RmatParams::SOCIAL, 37);
        let dir = tmpdir("delta-shards");
        Convert::shards(4).write(&g, &dir).unwrap();
        let mut writer = DeltaWriter::open(&dir).unwrap().with_policy(CompactionPolicy::never());
        let victim = g.edges[42];
        writer.delete(victim.src, victim.dst).unwrap();
        writer.insert(150, 3, 2.5).unwrap();
        writer.publish().unwrap();

        let mut mutated = g.clone();
        graphm_graph::delta::apply_delta_to_edge_list(
            &mut mutated,
            &[
                graphm_graph::delta::DeltaRecord::delete(victim.src, victim.dst),
                graphm_graph::delta::DeltaRecord::insert(150, 3, 2.5),
            ],
        );
        let reference = Shards::convert(&mutated, 4);
        let src = DiskShardSource::open(&dir).unwrap();
        assert_eq!(src.generation(), 1);
        for s in 0..4 {
            let merged = src.load(s);
            let expect = reference.shard(s);
            assert_eq!(merged.len(), expect.len(), "shard {s}");
            for (a, b) in merged.iter().zip(expect) {
                assert_eq!((a.src, a.dst), (b.src, b.dst), "shard {s}");
            }
        }
        // Activity reflects the merged sources: vertex 150 now reaches
        // interval 0 (dst 3).
        let active = AtomicBitmap::new(160);
        active.set(150);
        assert!(src.partition_active(0, &active), "inserted source activates its shard");
        assert_eq!(src.out_degrees(), mutated.out_degrees());

        // Compaction keeps shard content and byte accounting coherent:
        // the charged load drops by exactly the folded chain payload
        // (the merged payload itself is unchanged).
        let before: usize = (0..4).map(|s| src.partition_bytes(s)).sum();
        let chain_bytes = src.delta_stats().delta_bytes as usize;
        assert!(chain_bytes > 0);
        writer.compact().unwrap();
        assert!(src.refresh_generation().unwrap());
        assert_eq!(src.generation(), 2);
        for s in 0..4 {
            let merged = src.load(s);
            let expect = reference.shard(s);
            assert_eq!(merged.len(), expect.len(), "shard {s} after compaction");
        }
        let after: usize = (0..4).map(|s| src.partition_bytes(s)).sum();
        assert_eq!(after + chain_bytes, before, "compaction sheds exactly the chain payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Delta bounds are validated at write time and at open time: a
    /// record pointing past the vertex set is a typed error.
    #[test]
    fn delta_rejects_out_of_range_mutations() {
        let g = generators::rmat(50, 300, generators::RmatParams::GRAPH500, 41);
        let dir = tmpdir("delta-bounds");
        Convert::grid(2).write(&g, &dir).unwrap();
        let mut writer = DeltaWriter::open(&dir).unwrap();
        assert!(matches!(
            writer.insert(50, 0, 1.0).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 50, num_vertices: 50 }
        ));
        assert!(matches!(
            writer.delete(0, 99).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 99, num_vertices: 50 }
        ));
        // Corrupt a published delta segment on disk: open must reject it.
        writer.insert(1, 2, 1.0).unwrap();
        writer.publish().unwrap();
        let delta_file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "dseg"))
            .unwrap();
        let mut bytes = std::fs::read(&delta_file).unwrap();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes()); // src out of range
        std::fs::write(&delta_file, &bytes).unwrap();
        assert!(matches!(
            DiskGridSource::open(&dir).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: u32::MAX, num_vertices: 50 }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_survives_reopen() {
        let g = generators::rmat(150, 1100, generators::RmatParams::GRAPH500, 6);
        let dir = tmpdir("reopen");
        let written = Convert::grid(3).write(&g, &dir).unwrap();
        let read = Manifest::read_from_dir(&dir).unwrap();
        assert_eq!(written, read);
        std::fs::remove_dir_all(&dir).ok();
    }
}
