//! Disk-resident `PartitionSource` implementations.
//!
//! [`DiskGridSource`] and [`DiskShardSource`] mirror the in-memory
//! `GridSource` / `ChiSource` adapters exactly — same partition order,
//! same activity semantics, same byte accounting (taken from the manifest
//! instead of recomputed) — so `run_scheme`, the `SharingRuntime`, and the
//! §4 scheduler produce bit-identical reports on disk-resident graphs.
//!
//! Segments stay mapped, not loaded: [`edges`](DiskGridSource::edges) is a
//! zero-copy `&[Edge]` view into the mapping (the 12-byte `#[repr(C)]`
//! record layout matches the file format on little-endian hosts), and
//! `load` materializes an `Arc<Vec<Edge>>` only on demand, memoized
//! through a `Weak` so concurrent jobs share one copy while any of them
//! holds it — the in-memory half of the paper's "one copy of the graph
//! structure".
//!
//! ## Generations (the evolving-graph path)
//!
//! A source serves one **generation** at a time: the base segments plus
//! the ordered per-partition delta chains the generation manifest names
//! (see `graphm_graph::delta` and `docs/ARCHITECTURE.md`). `load()`
//! overlays the chain on the base — inserts appended, tombstones applied,
//! the result re-sorted into `Convert()`'s stable source order — so a
//! merged read is bit-identical to a from-scratch conversion of the
//! mutated graph. [`DiskGridSource::refresh_generation`] polls the
//! store's `CURRENT` pointer and rotates the in-process view; while any
//! sweep holds a pin ([`PartitionSource::sweep_begin`]) the rotation is
//! deferred, so readers never observe a mid-sweep flip, and the previous
//! generation's mappings are retired (dropped/unmapped) once the last
//! reference to them goes away.

use crate::mmap::FileView;
use crate::prefetch::{AdaptiveWindow, DEFAULT_MAX_PREFETCH_LOOKAHEAD};
use graphm_core::PartitionSource;
use graphm_graph::delta::{
    self, DeltaRecord, GenManifest, DELTA_HEADER_BYTES, DELTA_OP_DELETE, DELTA_RECORD_BYTES,
};
use graphm_graph::failpoint;
use graphm_graph::segment::{validate_segment, Manifest, StoreLayout, SEGMENT_HEADER_BYTES};
use graphm_graph::{AtomicBitmap, Edge, GraphError, Result, VertexId, EDGE_BYTES};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, Weak};
use std::time::Instant;

/// Readahead counters for a disk store (see [`PrefetchTarget`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// `madvise(MADV_WILLNEED)` hints issued (deduplicated: one per
    /// partition per load cycle).
    pub issued: u64,
    /// Loads that found their partition already advised — the prefetcher
    /// won the race against the consumer.
    pub hits: u64,
    /// Wall nanoseconds spent issuing hints (the prefetch thread's cost,
    /// hidden off the streaming path).
    pub advise_ns: u64,
}

/// A partition store that can read partitions ahead of their load. The
/// [`Prefetcher`](crate::Prefetcher) thread drives this with the upcoming
/// window of the scheduler's loading order.
pub trait PrefetchTarget: Send + Sync {
    /// Hints that partition `pid` will be loaded soon.
    fn advise(&self, pid: usize);

    /// Counters accumulated so far.
    fn prefetch_stats(&self) -> PrefetchStats;

    /// Current prefetch depth: how many of the announced upcoming
    /// partitions the [`Prefetcher`](crate::Prefetcher) should actually
    /// advise. Adaptive targets return their feedback-controlled window;
    /// the default (`usize::MAX`) advises everything announced.
    fn prefetch_window(&self) -> usize {
        usize::MAX
    }
}

/// Page-cache residency model of a disk store: which segment bytes the
/// store believes are paged in (touched by a load or a readahead hint and
/// not yet released), and how much has been evicted back behind the sweep
/// frontier via `madvise(MADV_DONTNEED)` to honour the memory budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Segment bytes currently modeled as resident.
    pub resident_bytes: u64,
    /// Total segment bytes released (`MADV_DONTNEED`) so far.
    pub evicted_bytes: u64,
    /// Number of partition evictions performed.
    pub evictions: u64,
    /// Configured memory budget in bytes (0 = unlimited; no eviction).
    pub budget_bytes: u64,
    /// Current adaptive prefetch window depth.
    pub prefetch_window: u64,
}

/// Delta-store counters of a disk source (see the module docs and
/// `docs/OPERATIONS.md`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Generation currently served (0 = the bare base store).
    pub generation: u64,
    /// Generation rotations this handle has adopted since open.
    pub rotations: u64,
    /// Delta payload bytes overlaid on the base this generation.
    pub delta_bytes: u64,
    /// Mutation records overlaid on the base this generation.
    pub delta_records: u64,
    /// Cumulative compactions folded into the base (from the generation
    /// manifest).
    pub compactions: u64,
}

/// Process-wide registry of live shared openers, keyed by canonical store
/// directory. Holds `Weak`s so a store unmaps once every handle drops.
struct ShareRegistry<T> {
    live: Mutex<HashMap<PathBuf, Weak<T>>>,
}

impl<T> ShareRegistry<T> {
    fn new() -> ShareRegistry<T> {
        ShareRegistry { live: Mutex::new(HashMap::new()) }
    }

    /// Returns the live handle for `dir` or opens one with `open`. The
    /// key is the canonicalized directory, so `./store` and an absolute
    /// path to it share a mapping.
    ///
    /// `open` runs *outside* the registry lock — opening validates every
    /// record (O(E)), and holding the one global lock across that would
    /// serialize unrelated store opens. Two threads racing to open the
    /// same cold store may both do the work; the loser adopts the
    /// winner's handle and drops its own.
    fn open_shared(&self, dir: &Path, open: impl FnOnce() -> Result<T>) -> Result<Arc<T>> {
        let key = std::fs::canonicalize(dir)?;
        {
            let live = self.live.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(existing) = live.get(&key).and_then(Weak::upgrade) {
                return Ok(existing);
            }
        }
        let opened = Arc::new(open()?);
        let mut live = self.live.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(raced) = live.get(&key).and_then(Weak::upgrade) {
            return Ok(raced);
        }
        live.retain(|_, w| w.strong_count() > 0);
        live.insert(key, Arc::downgrade(&opened));
        Ok(opened)
    }
}

/// One mapped (or, on exotic platforms, decoded) segment.
enum SegmentData {
    /// Zero-copy: the file mapping itself, records reinterpreted in place.
    Mapped(FileView),
    /// Eagerly decoded records (big-endian hosts, or unmapped non-empty
    /// views whose buffers lack `Edge` alignment).
    Decoded(Vec<Edge>),
}

struct Segment {
    data: SegmentData,
    num_edges: usize,
}

impl Segment {
    fn open(path: &Path, expect_edges: u64) -> Result<Segment> {
        failpoint::hit("read:segment_open")?;
        if cfg!(target_endian = "little") {
            let view = FileView::open(&File::open(path)?)?;
            failpoint::hit("read:segment_validate")?;
            let num_edges =
                validate_segment(view.as_slice(), Some(expect_edges), &path.display().to_string())?
                    as usize;
            let payload = &view.as_slice()[SEGMENT_HEADER_BYTES..];
            let aligned = (payload.as_ptr() as usize).is_multiple_of(std::mem::align_of::<Edge>());
            if view.is_mapped() || num_edges == 0 || aligned {
                Ok(Segment { data: SegmentData::Mapped(view), num_edges })
            } else {
                // Owned fallback buffer without Edge alignment: decode.
                let edges = graphm_graph::segment::read_segment(path)?;
                Ok(Segment { data: SegmentData::Decoded(edges), num_edges })
            }
        } else {
            let edges = graphm_graph::segment::read_segment(path)?;
            if edges.len() as u64 != expect_edges {
                return Err(GraphError::Format(format!(
                    "{}: manifest says {expect_edges} edges, segment holds {}",
                    path.display(),
                    edges.len()
                )));
            }
            let num_edges = edges.len();
            Ok(Segment { data: SegmentData::Decoded(edges), num_edges })
        }
    }

    fn edges(&self) -> &[Edge] {
        match &self.data {
            SegmentData::Mapped(view) => {
                if self.num_edges == 0 {
                    return &[];
                }
                let bytes = &view.as_slice()
                    [SEGMENT_HEADER_BYTES..SEGMENT_HEADER_BYTES + self.num_edges * EDGE_BYTES];
                // SAFETY: validated at open — the range is in bounds, the
                // pointer is 4-byte aligned (page-aligned mapping + 16-byte
                // header; the unaligned owned case was decoded instead),
                // `Edge` is `#[repr(C)] { u32, u32, f32 }` with no padding
                // and no invalid bit patterns, and the file's little-endian
                // layout matches the host's (big-endian hosts decode).
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const Edge, self.num_edges) }
            }
            SegmentData::Decoded(edges) => edges,
        }
    }
}

/// One mapped (or decoded) delta segment in a partition's chain.
enum DeltaData {
    Mapped(FileView),
    Decoded(Vec<DeltaRecord>),
}

struct DeltaSeg {
    data: DeltaData,
    num_records: usize,
}

impl DeltaSeg {
    fn open(path: &Path, expect_records: u64) -> Result<DeltaSeg> {
        failpoint::hit("read:delta_open")?;
        if cfg!(target_endian = "little") {
            let view = FileView::open(&File::open(path)?)?;
            let num_records = delta::validate_delta_segment(
                view.as_slice(),
                Some(expect_records),
                &path.display().to_string(),
            )? as usize;
            let payload = &view.as_slice()[DELTA_HEADER_BYTES..];
            let aligned =
                (payload.as_ptr() as usize).is_multiple_of(std::mem::align_of::<DeltaRecord>());
            if view.is_mapped() || num_records == 0 || aligned {
                Ok(DeltaSeg { data: DeltaData::Mapped(view), num_records })
            } else {
                let records = delta::read_delta_segment(path)?;
                Ok(DeltaSeg { data: DeltaData::Decoded(records), num_records })
            }
        } else {
            let records = delta::read_delta_segment(path)?;
            if records.len() as u64 != expect_records {
                return Err(GraphError::Format(format!(
                    "{}: manifest says {expect_records} records, segment holds {}",
                    path.display(),
                    records.len()
                )));
            }
            let num_records = records.len();
            Ok(DeltaSeg { data: DeltaData::Decoded(records), num_records })
        }
    }

    fn records(&self) -> &[DeltaRecord] {
        match &self.data {
            DeltaData::Mapped(view) => {
                if self.num_records == 0 {
                    return &[];
                }
                let bytes = &view.as_slice()[DELTA_HEADER_BYTES
                    ..DELTA_HEADER_BYTES + self.num_records * DELTA_RECORD_BYTES];
                // SAFETY: same argument as [`Segment::edges`] —
                // `DeltaRecord` is `#[repr(C)] { u32, u32, f32, u32 }`
                // (16 bytes, no padding, every bit pattern inhabited), the
                // range was validated at open, and the 16-byte header
                // keeps the array 4-byte aligned in the page-aligned
                // mapping. Operation tags are validated by the view
                // builder before any record is applied.
                unsafe {
                    std::slice::from_raw_parts(
                        bytes.as_ptr() as *const DeltaRecord,
                        self.num_records,
                    )
                }
            }
            DeltaData::Decoded(records) => records,
        }
    }

    fn payload_bytes(&self) -> u64 {
        (self.num_records * DELTA_RECORD_BYTES) as u64
    }
}

/// One generation's immutable resolution of the store: base segments plus
/// per-partition delta chains, with the merged-view accounting
/// precomputed. Readers hold it through an `Arc`; dropping the last
/// reference after a rotation unmaps the retired generation's files.
struct GenView {
    generation: u64,
    compactions: u64,
    segments: Vec<Arc<Segment>>,
    base_files: Vec<String>,
    deltas: Vec<Vec<Arc<DeltaSeg>>>,
    delta_files: Vec<Vec<String>>,
    /// Edge count of the merged (base + deltas) view per partition.
    merged_edges: Vec<u64>,
    /// Bytes charged per load of the merged view (grid: the merged
    /// payload, exactly what an in-memory conversion of the mutated graph
    /// would charge; shards: the base interval load plus the chain
    /// payload).
    load_bytes: Vec<u64>,
    /// Merged structure bytes (`S_G` over the merged view).
    graph_bytes: u64,
    delta_bytes: u64,
    delta_records: u64,
    /// Shards only: distinct merged sources per shard, for exact
    /// activity checks.
    srcs: Option<Vec<Arc<Vec<VertexId>>>>,
}

impl GenView {
    /// Resolves `generation` against the store directory, reusing
    /// mappings from `prev` for files both generations reference (the
    /// common case: a rotation adds a few delta files and everything else
    /// carries over).
    fn build(
        dir: &Path,
        manifest: &Manifest,
        generation: u64,
        prev: Option<&GenView>,
    ) -> Result<GenView> {
        let parts = manifest.partitions.len();
        let gen_manifest = if generation == 0 {
            None
        } else {
            let gm = GenManifest::read_from_dir(dir, generation)?;
            if gm.layout != manifest.layout {
                return Err(GraphError::Format(format!(
                    "generation {generation} layout {:?} does not match base {:?}",
                    gm.layout, manifest.layout
                )));
            }
            if gm.num_vertices != manifest.num_vertices {
                return Err(GraphError::Format(format!(
                    "generation {generation} has {} vertices, base store has {} \
                     (growing the vertex set requires reconversion)",
                    gm.num_vertices, manifest.num_vertices
                )));
            }
            if gm.partitions.len() != parts {
                return Err(GraphError::Format(format!(
                    "generation {generation} has {} partitions, base store has {parts}",
                    gm.partitions.len()
                )));
            }
            Some(gm)
        };
        let nv = manifest.num_vertices;
        let mut segments = Vec::with_capacity(parts);
        let mut base_files = Vec::with_capacity(parts);
        let mut deltas: Vec<Vec<Arc<DeltaSeg>>> = Vec::with_capacity(parts);
        let mut delta_files: Vec<Vec<String>> = Vec::with_capacity(parts);
        let mut merged_edges = Vec::with_capacity(parts);
        let mut load_bytes = Vec::with_capacity(parts);
        let mut srcs: Vec<Arc<Vec<VertexId>>> = Vec::with_capacity(parts);
        let shards = matches!(manifest.layout, StoreLayout::Shards { .. });
        let mut delta_bytes = 0u64;
        let mut delta_records = 0u64;
        for pid in 0..parts {
            let entry = &manifest.partitions[pid];
            let (base_file, base_num_edges, chain) = match &gen_manifest {
                Some(gm) => {
                    let gp = &gm.partitions[pid];
                    (gp.base_file.clone(), gp.base_num_edges, gp.deltas.as_slice())
                }
                None => (entry.file.clone(), entry.num_edges, &[][..]),
            };
            // Reuse the previous view's mapping when it serves the same
            // file; validate (O(records)) only what was freshly opened.
            let reused = prev.and_then(|p| {
                (p.base_files[pid] == base_file).then(|| Arc::clone(&p.segments[pid]))
            });
            let segment = match reused {
                Some(seg) => seg,
                None => {
                    let seg = Segment::open(&dir.join(&base_file), base_num_edges)?;
                    // Records are untrusted: every endpoint must be in
                    // range before any job indexes its vertex-state arrays
                    // with them (same guarantee `storage::read_edge_list`
                    // gives, as a typed error, not a panic).
                    for e in seg.edges() {
                        if e.src >= nv {
                            return Err(GraphError::VertexOutOfRange {
                                vertex: e.src,
                                num_vertices: nv,
                            });
                        }
                        if e.dst >= nv {
                            return Err(GraphError::VertexOutOfRange {
                                vertex: e.dst,
                                num_vertices: nv,
                            });
                        }
                    }
                    Arc::new(seg)
                }
            };
            let prev_chain: Option<(&Vec<String>, &Vec<Arc<DeltaSeg>>)> =
                prev.map(|p| (&p.delta_files[pid], &p.deltas[pid]));
            let mut chain_segs = Vec::with_capacity(chain.len());
            let mut chain_names = Vec::with_capacity(chain.len());
            for dref in chain {
                let reused = prev_chain.and_then(|(names, segs)| {
                    names.iter().position(|n| n == &dref.file).map(|i| Arc::clone(&segs[i]))
                });
                let seg = match reused {
                    Some(seg) => seg,
                    None => {
                        let seg = DeltaSeg::open(&dir.join(&dref.file), dref.num_records)?;
                        for (i, r) in seg.records().iter().enumerate() {
                            if r.op > DELTA_OP_DELETE {
                                return Err(GraphError::Format(format!(
                                    "{}: record {i} has unknown op {}",
                                    dref.file, r.op
                                )));
                            }
                            if r.src >= nv {
                                return Err(GraphError::VertexOutOfRange {
                                    vertex: r.src,
                                    num_vertices: nv,
                                });
                            }
                            if r.dst >= nv {
                                return Err(GraphError::VertexOutOfRange {
                                    vertex: r.dst,
                                    num_vertices: nv,
                                });
                            }
                        }
                        Arc::new(seg)
                    }
                };
                delta_bytes += seg.payload_bytes();
                delta_records += seg.num_records as u64;
                chain_segs.push(seg);
                chain_names.push(dref.file.clone());
            }
            // Partitions the rotation did not touch (same base file,
            // same chain) carry their accounting over verbatim — a
            // publish touching one partition costs O(that partition),
            // not O(every chained partition).
            let unchanged: Option<&GenView> = prev
                .filter(|p| p.base_files[pid] == base_file && p.delta_files[pid] == chain_names);
            // Merged accounting. With a non-empty chain, replay the
            // chain over a `(src, dst) -> count` multiset — exact
            // surviving-edge counts (a tombstone zeroes its key) without
            // materializing the merge; the first `load()` does the only
            // real merge.
            let survivors: Option<HashMap<(VertexId, VertexId), u64>> =
                if chain_segs.is_empty() || unchanged.is_some() {
                    None
                } else {
                    let mut counts: HashMap<(VertexId, VertexId), u64> = HashMap::new();
                    for e in segment.edges() {
                        *counts.entry((e.src, e.dst)).or_insert(0) += 1;
                    }
                    for seg in &chain_segs {
                        for r in seg.records() {
                            if r.is_insert() {
                                *counts.entry((r.src, r.dst)).or_insert(0) += 1;
                            } else {
                                counts.remove(&(r.src, r.dst));
                            }
                        }
                    }
                    Some(counts)
                };
            let count = match (&unchanged, &survivors) {
                (Some(p), _) => p.merged_edges[pid],
                (None, Some(c)) => c.values().sum::<u64>(),
                (None, None) => segment.num_edges as u64,
            };
            let chain_payload: u64 = chain_segs.iter().map(|s| s.payload_bytes()).sum();
            let load = if let Some(p) = unchanged {
                p.load_bytes[pid]
            } else if shards {
                // Interval load = the merged shard payload plus the base
                // manifest's sliding-window overhead (windows are not
                // re-derived for mutated stores) plus the chain itself.
                // Saturating: load_bytes < byte_len only on a corrupt
                // manifest, which must not wrap the accounting.
                entry.load_bytes.saturating_sub(entry.byte_len)
                    + count * EDGE_BYTES as u64
                    + chain_payload
            } else {
                count * EDGE_BYTES as u64
            };
            if shards {
                // Exact per-vertex activity, as `ChiSource` computes it —
                // over the merged view. Reuse the previous generation's
                // set when neither the base nor the chain changed.
                let reusable = prev
                    .filter(|p| p.base_files[pid] == base_file && p.delta_files[pid] == chain_names)
                    .and_then(|p| p.srcs.as_ref().map(|s| Arc::clone(&s[pid])));
                let set = match reusable {
                    Some(set) => set,
                    None => {
                        let mut sv: Vec<VertexId> = match &survivors {
                            Some(c) => c
                                .iter()
                                .filter(|&(_, &n)| n > 0)
                                .map(|(&(src, _), _)| src)
                                .collect(),
                            None => segment.edges().iter().map(|e| e.src).collect(),
                        };
                        sv.sort_unstable();
                        sv.dedup();
                        Arc::new(sv)
                    }
                };
                srcs.push(set);
            }
            segments.push(segment);
            base_files.push(base_file);
            deltas.push(chain_segs);
            delta_files.push(chain_names);
            merged_edges.push(count);
            load_bytes.push(load);
        }
        let graph_bytes = merged_edges.iter().map(|&n| n * EDGE_BYTES as u64).sum();
        Ok(GenView {
            generation,
            compactions: gen_manifest.map(|gm| gm.compactions).unwrap_or(0),
            segments,
            base_files,
            deltas,
            delta_files,
            merged_edges,
            load_bytes,
            graph_bytes,
            delta_bytes,
            delta_records,
            srcs: shards.then_some(srcs),
        })
    }

    /// Materializes partition `pid`'s merged view: base records, the
    /// delta chain applied in order, restored to `Convert()`'s stable
    /// source order — bit-identical to a from-scratch conversion of the
    /// mutated graph.
    fn merged(&self, pid: usize) -> Vec<Edge> {
        let base = self.segments[pid].edges();
        if self.deltas[pid].is_empty() {
            return base.to_vec();
        }
        let mut out = base.to_vec();
        for seg in &self.deltas[pid] {
            delta::apply_delta(&mut out, seg.records());
        }
        // Stable, so the per-source order (base order, then inserts in
        // publish order) matches what Grid/Shards::convert produces.
        out.sort_by_key(|e| e.src);
        out
    }

    /// Bytes the residency model charges for partition `pid`'s files
    /// (base payload + delta chain payload).
    fn resident_charge(&self, pid: usize) -> u64 {
        (self.segments[pid].num_edges * EDGE_BYTES) as u64
            + self.deltas[pid].iter().map(|s| s.payload_bytes()).sum::<u64>()
    }

    /// Issues `MADV_WILLNEED` for every mapping behind partition `pid`.
    fn advise_willneed(&self, pid: usize) {
        if let SegmentData::Mapped(view) = &self.segments[pid].data {
            view.advise_willneed();
        }
        for seg in &self.deltas[pid] {
            if let DeltaData::Mapped(view) = &seg.data {
                view.advise_willneed();
            }
        }
    }

    /// Releases partition `pid`'s mappings with `MADV_DONTNEED`. Returns
    /// whether anything was actually released (decoded fallbacks cannot
    /// be).
    fn release(&self, pid: usize) -> bool {
        let mut released = match &self.segments[pid].data {
            SegmentData::Mapped(view) => view.advise_dontneed(),
            SegmentData::Decoded(_) => false,
        };
        for seg in &self.deltas[pid] {
            if let DeltaData::Mapped(view) = &seg.data {
                released |= view.advise_dontneed();
            }
        }
        released
    }
}

/// Current / incoming generation views plus the sweep pin count that
/// gates adoption.
struct Views {
    current: Arc<GenView>,
    /// A generation picked up by `refresh` while sweeps were pinned;
    /// adopted at the last unpin.
    incoming: Option<Arc<GenView>>,
    pins: usize,
}

/// Per-partition memoization slot, keyed by the generation it holds.
struct CacheSlot {
    generation: u64,
    weak: Weak<Vec<Edge>>,
}

/// Shared machinery of the two disk sources.
struct DiskStore {
    dir: PathBuf,
    manifest: Manifest,
    views: RwLock<Views>,
    rotations: AtomicU64,
    /// Per-partition memoized materialization: jobs running concurrently
    /// share one `Arc` per partition; once every holder drops it the
    /// memory is returned and only the mapping remains. Keyed by
    /// generation so a rotation invalidates stale copies.
    cache: Vec<Mutex<CacheSlot>>,
    /// Per-partition "advised since last load" flags plus the global
    /// readahead counters.
    advised: Vec<AtomicBool>,
    pf_issued: AtomicU64,
    pf_hits: AtomicU64,
    pf_advise_ns: AtomicU64,
    /// Feedback-controlled prefetch depth (see
    /// [`crate::AdaptiveWindow`]); consulted through
    /// [`PrefetchTarget::prefetch_window`] unless adaptivity is off.
    window: AdaptiveWindow,
    adaptive: AtomicBool,
    /// Memory budget in bytes; 0 = unlimited (no eviction, counters only).
    budget: AtomicU64,
    /// Per-partition residency model: a partition is resident from the
    /// moment a load or readahead hint touches its segment until the
    /// budget enforcement releases it with `MADV_DONTNEED`.
    resident: Vec<AtomicBool>,
    /// What each resident partition was charged at touch time, so a
    /// release after a rotation (which may change the partition's byte
    /// size) subtracts exactly what was added.
    resident_charged: Vec<AtomicU64>,
    resident_bytes: AtomicU64,
    evicted_bytes: AtomicU64,
    evictions: AtomicU64,
    /// Lazy-LRU eviction order: `(pid, seq)` in touch order; an entry is
    /// live only while `seq` matches `last_touch[pid]` (re-touching a
    /// partition invalidates its older entries instead of searching the
    /// queue). The sweep loads partitions in the §4 order, so the queue
    /// front is the ground already behind the frontier.
    touch_order: Mutex<VecDeque<(usize, u64)>>,
    last_touch: Vec<AtomicU64>,
    touch_seq: AtomicU64,
}

impl DiskStore {
    fn open(dir: &Path) -> Result<DiskStore> {
        let manifest = Manifest::read_from_dir(dir)?;
        let generation = delta::read_current_generation(dir)?;
        let view = Arc::new(GenView::build(dir, &manifest, generation, None)?);
        let parts = manifest.partitions.len();
        let cache = (0..parts)
            .map(|_| Mutex::new(CacheSlot { generation: u64::MAX, weak: Weak::new() }))
            .collect();
        let advised = (0..parts).map(|_| AtomicBool::new(false)).collect();
        let resident = (0..parts).map(|_| AtomicBool::new(false)).collect();
        let resident_charged = (0..parts).map(|_| AtomicU64::new(0)).collect();
        let last_touch = (0..parts).map(|_| AtomicU64::new(0)).collect();
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            manifest,
            views: RwLock::new(Views { current: view, incoming: None, pins: 0 }),
            rotations: AtomicU64::new(0),
            cache,
            advised,
            pf_issued: AtomicU64::new(0),
            pf_hits: AtomicU64::new(0),
            pf_advise_ns: AtomicU64::new(0),
            window: AdaptiveWindow::new(DEFAULT_MAX_PREFETCH_LOOKAHEAD),
            adaptive: AtomicBool::new(true),
            budget: AtomicU64::new(0),
            resident,
            resident_charged,
            resident_bytes: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            touch_order: Mutex::new(VecDeque::new()),
            last_touch,
            touch_seq: AtomicU64::new(0),
        })
    }

    fn num_partitions(&self) -> usize {
        self.manifest.partitions.len()
    }

    /// The generation view loads currently resolve against. Stable for
    /// the duration of a pinned busy period: `refresh` defers adoption
    /// while pins are held.
    fn view(&self) -> Arc<GenView> {
        Arc::clone(&self.views.read().unwrap_or_else(|e| e.into_inner()).current)
    }

    /// Runs `f` against the current view under the read guard — the hot
    /// per-partition queries (activity, byte accounting) avoid the Arc
    /// refcount round-trip `view()` pays; readers never block each other.
    fn with_view<R>(&self, f: impl FnOnce(&GenView) -> R) -> R {
        f(&self.views.read().unwrap_or_else(|e| e.into_inner()).current)
    }

    /// Pins the current generation for a sweep (counted; sweeps may
    /// overlap across runtimes sharing the handle).
    fn sweep_begin(&self) {
        self.views.write().unwrap_or_else(|e| e.into_inner()).pins += 1;
    }

    /// Releases a sweep pin; the last unpin adopts any generation that
    /// arrived mid-sweep.
    fn sweep_end(&self) {
        let mut views = self.views.write().unwrap_or_else(|e| e.into_inner());
        debug_assert!(views.pins > 0, "sweep_end without a matching sweep_begin");
        views.pins = views.pins.saturating_sub(1);
        if views.pins == 0 {
            if let Some(incoming) = views.incoming.take() {
                views.current = incoming;
                self.rotations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Polls the store's `CURRENT` pointer and resolves any newer
    /// generation. Returns `true` when a new generation was picked up
    /// (adopted immediately, or staged for adoption at the last sweep
    /// unpin). The old generation's mappings are retired when the last
    /// reader drops its `Arc`.
    fn refresh(&self) -> Result<bool> {
        let disk_gen = delta::read_current_generation(&self.dir)?;
        let (known, prev) = {
            let views = self.views.read().unwrap_or_else(|e| e.into_inner());
            let latest = views.incoming.as_ref().unwrap_or(&views.current);
            (latest.generation, Arc::clone(latest))
        };
        if disk_gen == known {
            return Ok(false);
        }
        if disk_gen < known {
            return Err(GraphError::Format(format!(
                "{}: CURRENT moved backwards ({} -> {disk_gen})",
                self.dir.display(),
                known
            )));
        }
        let built = Arc::new(GenView::build(&self.dir, &self.manifest, disk_gen, Some(&prev))?);
        let mut views = self.views.write().unwrap_or_else(|e| e.into_inner());
        // The build ran outside the lock: a concurrent refresher (two
        // runtimes sharing one handle) may have installed this — or a
        // newer — generation meanwhile. Never replace newer with older,
        // and count each adoption exactly once.
        let known_now = views.incoming.as_ref().unwrap_or(&views.current).generation;
        if built.generation > known_now {
            if views.pins == 0 {
                views.current = built;
                views.incoming = None;
                self.rotations.fetch_add(1, Ordering::Relaxed);
            } else {
                views.incoming = Some(built);
            }
        }
        Ok(true)
    }

    fn generation(&self) -> u64 {
        self.views.read().unwrap_or_else(|e| e.into_inner()).current.generation
    }

    fn delta_stats(&self) -> DeltaStats {
        let view = self.view();
        DeltaStats {
            generation: view.generation,
            rotations: self.rotations.load(Ordering::Relaxed),
            delta_bytes: view.delta_bytes,
            delta_records: view.delta_records,
            compactions: view.compactions,
        }
    }

    /// Marks `pid`'s files as paged in (by a load or a readahead hint)
    /// and records its position in the eviction order. The queue is kept
    /// bounded: stale entries (a later touch superseded them) are
    /// compacted away once they dominate, and with no budget configured —
    /// where nothing would ever pop the queue — it is skipped entirely.
    fn touch(&self, pid: usize, view: &GenView) {
        if self.budget.load(Ordering::Relaxed) > 0 {
            let seq = self.touch_seq.fetch_add(1, Ordering::Relaxed) + 1;
            self.last_touch[pid].store(seq, Ordering::Relaxed);
            let mut order = self.touch_order.lock().unwrap_or_else(|e| e.into_inner());
            order.push_back((pid, seq));
            if order.len() > self.num_partitions() * 4 + 64 {
                // At most one entry per partition is live; everything
                // else is superseded history.
                order.retain(|&(p, s)| self.last_touch[p].load(Ordering::Relaxed) == s);
            }
        }
        if !self.resident[pid].swap(true, Ordering::AcqRel) {
            let charge = view.resident_charge(pid);
            self.resident_charged[pid].store(charge, Ordering::Relaxed);
            self.resident_bytes.fetch_add(charge, Ordering::Relaxed);
        }
    }

    /// Releases resident segments behind the sweep frontier (oldest touch
    /// first) until the model fits the budget again. `current` — the
    /// partition being streamed right now — is never released.
    fn enforce_budget(&self, current: usize, view: &GenView) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        let mut held_current = None;
        while self.resident_bytes.load(Ordering::Relaxed) > budget {
            let entry = self.touch_order.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
            let Some((pid, seq)) = entry else { break };
            if self.last_touch[pid].load(Ordering::Relaxed) != seq {
                continue; // Stale entry: the partition was re-touched later.
            }
            if pid == current {
                // At most one live entry per pid: hold it aside, restore
                // it after the scan so it ages normally.
                held_current = Some((pid, seq));
                continue;
            }
            if !self.resident[pid].load(Ordering::Acquire) {
                continue;
            }
            if view.release(pid) {
                self.resident[pid].store(false, Ordering::Release);
                let charge = self.resident_charged[pid].load(Ordering::Relaxed);
                self.resident_bytes.fetch_sub(charge, Ordering::Relaxed);
                self.evicted_bytes.fetch_add(charge, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                // A pending WILLNEED hint for released pages is stale:
                // the next load must count as a miss and re-grow the
                // window.
                self.advised[pid].store(false, Ordering::Release);
            }
            // Unevictable segments (decoded fallbacks) stay resident and
            // simply leave the queue.
        }
        if let Some(entry) = held_current {
            self.touch_order.lock().unwrap_or_else(|e| e.into_inner()).push_front(entry);
        }
    }

    /// Infallible load: real I/O failures on the mapped files surface as
    /// SIGBUS (outside this model's scope); injected failpoints are only
    /// checked on the fallible path. Kept for direct callers (figure
    /// harnesses, out-degree scans) that run outside a serving runtime.
    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        match self.load_impl(pid, false) {
            Ok(edges) => edges,
            Err(_) => unreachable!("infallible load path returned an error"),
        }
    }

    /// Fallible load for the serving runtimes: `read:load` guards the
    /// whole operation, `read:merged` the materialization of a cache-miss
    /// merged view. An error leaves the cache slot and residency counters
    /// consistent — the next load retries from scratch.
    fn try_load(&self, pid: usize) -> Result<Arc<Vec<Edge>>> {
        self.load_impl(pid, true)
    }

    fn load_impl(&self, pid: usize, fallible: bool) -> Result<Arc<Vec<Edge>>> {
        if fallible {
            failpoint::hit("read:load")?;
        }
        let view = self.view();
        let mut slot = self.cache[pid].lock().unwrap_or_else(|e| e.into_inner());
        let cached = if slot.generation == view.generation { slot.weak.upgrade() } else { None };
        let advised = self.advised[pid].swap(false, Ordering::AcqRel);
        if advised {
            self.pf_hits.fetch_add(1, Ordering::Relaxed);
        }
        // The feedback controller observes a load only when it actually
        // steers readahead: adaptivity on, a prefetcher has issued at
        // least one hint (deterministic mode never spawns one — the
        // reported window must not drift to max meaninglessly), and the
        // load really reads the mapping (live-cache serves do no I/O).
        let adaptive = self.adaptive.load(Ordering::Relaxed)
            && self.pf_issued.load(Ordering::Relaxed) > 0
            && cached.is_none();
        if adaptive {
            if advised {
                self.window.on_hit();
            } else {
                self.window.on_miss();
            }
        }
        self.touch(pid, &view);
        self.enforce_budget(pid, &view);
        let budget = self.budget.load(Ordering::Relaxed);
        if adaptive
            && budget > 0
            && self.resident_bytes.load(Ordering::Relaxed).saturating_mul(8) >= budget * 7
        {
            // Paged-in bytes approach the budget: rein the readahead in
            // before it feeds the eviction it then pays for.
            self.window.on_pressure();
        }
        if let Some(live) = cached {
            return Ok(live);
        }
        if fallible {
            failpoint::hit("read:merged")?;
        }
        let materialized = Arc::new(view.merged(pid));
        slot.generation = view.generation;
        slot.weak = Arc::downgrade(&materialized);
        Ok(materialized)
    }

    /// Issues a readahead hint for `pid`'s files, at most once per load
    /// cycle (the flag re-arms when the partition is next loaded).
    /// Prefetch is advisory: an injected (or real) failure here degrades
    /// to "no hint" — the next load simply counts as a window miss.
    fn advise(&self, pid: usize) {
        if pid >= self.num_partitions() || self.advised[pid].swap(true, Ordering::AcqRel) {
            return;
        }
        if failpoint::hit("read:prefetch").is_err() {
            self.advised[pid].store(false, Ordering::Release);
            return;
        }
        let start = Instant::now();
        let view = self.view();
        view.advise_willneed(pid);
        self.touch(pid, &view);
        self.pf_advise_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.pf_issued.fetch_add(1, Ordering::Relaxed);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        PrefetchStats {
            issued: self.pf_issued.load(Ordering::Relaxed),
            hits: self.pf_hits.load(Ordering::Relaxed),
            advise_ns: self.pf_advise_ns.load(Ordering::Relaxed),
        }
    }

    fn prefetch_window(&self) -> usize {
        if self.adaptive.load(Ordering::Relaxed) {
            self.window.current()
        } else {
            usize::MAX
        }
    }

    fn set_memory_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    fn set_adaptive_prefetch(&self, enabled: bool) {
        self.adaptive.store(enabled, Ordering::Relaxed);
    }

    fn set_prefetch_max(&self, max: usize) {
        self.window.set_max(max);
    }

    fn residency_stats(&self) -> ResidencyStats {
        ResidencyStats {
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            budget_bytes: self.budget.load(Ordering::Relaxed),
            prefetch_window: self.window.current() as u64,
        }
    }

    fn out_degrees(&self) -> Vec<u32> {
        let view = self.view();
        let mut deg = vec![0u32; self.manifest.num_vertices as usize];
        for pid in 0..self.num_partitions() {
            if view.deltas[pid].is_empty() {
                for e in view.segments[pid].edges() {
                    deg[e.src as usize] += 1;
                }
            } else {
                for e in view.merged(pid) {
                    deg[e.src as usize] += 1;
                }
            }
        }
        deg
    }
}

impl std::fmt::Debug for DiskGridSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskGridSource")
            .field("dir", &self.store.dir)
            .field("p", &self.p)
            .field("generation", &self.store.generation())
            .field("partitions", &self.store.num_partitions())
            .finish()
    }
}

/// A grid-layout store on disk, exposed to GraphM. Drop-in replacement for
/// the in-memory `GridSource`.
pub struct DiskGridSource {
    store: DiskStore,
    p: usize,
    order: Vec<usize>,
}

impl DiskGridSource {
    /// Opens a store directory written by [`Convert::grid`](crate::Convert::grid),
    /// resolved at the generation its `CURRENT` pointer names (0 — the
    /// bare base store — when none exists).
    pub fn open(dir: &Path) -> Result<DiskGridSource> {
        let store = DiskStore::open(dir)?;
        let p = match store.manifest.layout {
            StoreLayout::Grid { p } => p as usize,
            other => {
                return Err(GraphError::Format(format!(
                    "{}: expected a grid store, found {other:?}",
                    dir.display()
                )))
            }
        };
        if store.num_partitions() != p * p {
            return Err(GraphError::Format(format!(
                "{}: grid p = {p} implies {} partitions, manifest has {}",
                dir.display(),
                p * p,
                store.num_partitions()
            )));
        }
        let order = store.manifest.order.iter().map(|&v| v as usize).collect();
        Ok(DiskGridSource { store, p, order })
    }

    /// Opens `dir` through the process-wide share registry: while any
    /// previously returned handle is alive, every `open_shared` of the
    /// same (canonicalized) directory returns a clone of the same `Arc`,
    /// so N workbenches/daemon threads over one store share one mapping,
    /// one manifest, and one per-partition materialization cache instead
    /// of N. Stores are single-writer/multi-reader: `Convert` writes the
    /// base once and a `DeltaWriter` only ever *adds* files before
    /// flipping `CURRENT` (see `docs/ARCHITECTURE.md`), which is what
    /// makes the shared handle sound.
    pub fn open_shared(dir: &Path) -> Result<Arc<DiskGridSource>> {
        static REGISTRY: OnceLock<ShareRegistry<DiskGridSource>> = OnceLock::new();
        REGISTRY.get_or_init(ShareRegistry::new).open_shared(dir, || DiskGridSource::open(dir))
    }

    /// Grid dimension `P`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The store's base manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.store.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.store.dir
    }

    /// A copy of partition `pid`'s **base-segment** records for the
    /// currently served generation (delta overlays are visible through
    /// [`PartitionSource::load`], which materializes the merged view).
    /// Owned rather than borrowed so the handle never has to pin a
    /// retired generation's mappings — and its unlinked files — alive.
    pub fn edges(&self, pid: usize) -> Vec<Edge> {
        self.store.view().segments[pid].edges().to_vec()
    }

    /// Out-degrees of the currently served generation's merged view,
    /// streamed from the mapped segments (PageRank-family jobs need them;
    /// no `EdgeList` is ever materialized).
    pub fn out_degrees(&self) -> Vec<u32> {
        self.store.out_degrees()
    }

    /// Polls the store's `CURRENT` pointer and rotates to any newer
    /// generation. Returns `true` when one was picked up. While a sweep
    /// pin is held ([`PartitionSource::sweep_begin`]) adoption is
    /// deferred to the last unpin, so in-flight sweeps keep their
    /// generation. Runtimes that preprocessed this source (chunk tables,
    /// out-degrees) must be rebuilt after a rotation — the daemon does
    /// this between rounds.
    pub fn refresh_generation(&self) -> Result<bool> {
        self.store.refresh()
    }

    /// The generation loads currently resolve against.
    pub fn generation(&self) -> u64 {
        self.store.generation()
    }

    /// Delta/rotation counters (see [`DeltaStats`]).
    pub fn delta_stats(&self) -> DeltaStats {
        self.store.delta_stats()
    }

    /// Sets the page-cache budget in bytes (0 = unlimited): once modeled
    /// residency exceeds it, loads release segments behind the sweep
    /// frontier with `madvise(MADV_DONTNEED)`.
    pub fn set_memory_budget(&self, bytes: u64) {
        self.store.set_memory_budget(bytes);
    }

    /// Enables/disables the adaptive prefetch window (on by default;
    /// disabled = advise the full announced lookahead, the pre-adaptive
    /// behaviour).
    pub fn set_adaptive_prefetch(&self, enabled: bool) {
        self.store.set_adaptive_prefetch(enabled);
    }

    /// Raises/lowers the adaptive window's upper bound (default
    /// [`crate::DEFAULT_MAX_PREFETCH_LOOKAHEAD`]) — keep it in sync with
    /// the runtime's announced lookahead so a deeper announcement can
    /// actually be used.
    pub fn set_prefetch_max_lookahead(&self, max: usize) {
        self.store.set_prefetch_max(max);
    }

    /// Residency/eviction counters (see [`ResidencyStats`]).
    pub fn residency_stats(&self) -> ResidencyStats {
        self.store.residency_stats()
    }
}

impl PrefetchTarget for DiskGridSource {
    fn advise(&self, pid: usize) {
        self.store.advise(pid);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        self.store.prefetch_stats()
    }

    fn prefetch_window(&self) -> usize {
        self.store.prefetch_window()
    }
}

impl PartitionSource for DiskGridSource {
    fn num_partitions(&self) -> usize {
        self.store.num_partitions()
    }

    fn num_vertices(&self) -> VertexId {
        self.store.manifest.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        self.store.load(pid)
    }

    fn try_load(&self, pid: usize) -> Result<Arc<Vec<Edge>>> {
        self.store.try_load(pid)
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.store.with_view(|v| v.load_bytes[pid] as usize)
    }

    fn graph_bytes(&self) -> usize {
        self.store.with_view(|v| v.graph_bytes as usize)
    }

    fn order(&self) -> Vec<usize> {
        self.order.clone()
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        if self.store.with_view(|v| v.merged_edges[pid] == 0) {
            return false;
        }
        let e = &self.store.manifest.partitions[pid];
        e.src_lo < e.src_hi && active.any_in_range(e.src_lo as usize, e.src_hi as usize)
    }

    fn sweep_begin(&self) {
        self.store.sweep_begin();
    }

    fn sweep_end(&self) {
        self.store.sweep_end();
    }
}

impl std::fmt::Debug for DiskShardSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskShardSource")
            .field("dir", &self.store.dir)
            .field("generation", &self.store.generation())
            .field("partitions", &self.store.num_partitions())
            .finish()
    }
}

/// A shard-layout store on disk, exposed to GraphM. Drop-in replacement
/// for the in-memory `ChiSource`.
pub struct DiskShardSource {
    store: DiskStore,
}

impl DiskShardSource {
    /// Opens a store directory written by [`Convert::shards`](crate::Convert::shards),
    /// resolved at the generation its `CURRENT` pointer names.
    pub fn open(dir: &Path) -> Result<DiskShardSource> {
        let store = DiskStore::open(dir)?;
        match store.manifest.layout {
            StoreLayout::Shards { .. } => {}
            other => {
                return Err(GraphError::Format(format!(
                    "{}: expected a shard store, found {other:?}",
                    dir.display()
                )))
            }
        }
        Ok(DiskShardSource { store })
    }

    /// Opens `dir` through the process-wide share registry (the shard
    /// counterpart of [`DiskGridSource::open_shared`]).
    pub fn open_shared(dir: &Path) -> Result<Arc<DiskShardSource>> {
        static REGISTRY: OnceLock<ShareRegistry<DiskShardSource>> = OnceLock::new();
        REGISTRY.get_or_init(ShareRegistry::new).open_shared(dir, || DiskShardSource::open(dir))
    }

    /// The store's base manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.store.manifest
    }

    /// A copy of shard `pid`'s base-segment records for the currently
    /// served generation (see [`DiskGridSource::edges`]).
    pub fn edges(&self, pid: usize) -> Vec<Edge> {
        self.store.view().segments[pid].edges().to_vec()
    }

    /// Out-degrees of the merged view, streamed from the mapped segments.
    pub fn out_degrees(&self) -> Vec<u32> {
        self.store.out_degrees()
    }

    /// Polls `CURRENT` and rotates; see
    /// [`DiskGridSource::refresh_generation`].
    pub fn refresh_generation(&self) -> Result<bool> {
        self.store.refresh()
    }

    /// The generation loads currently resolve against.
    pub fn generation(&self) -> u64 {
        self.store.generation()
    }

    /// Delta/rotation counters (see [`DeltaStats`]).
    pub fn delta_stats(&self) -> DeltaStats {
        self.store.delta_stats()
    }

    /// Sets the page-cache budget in bytes (0 = unlimited); see
    /// [`DiskGridSource::set_memory_budget`].
    pub fn set_memory_budget(&self, bytes: u64) {
        self.store.set_memory_budget(bytes);
    }

    /// Enables/disables the adaptive prefetch window; see
    /// [`DiskGridSource::set_adaptive_prefetch`].
    pub fn set_adaptive_prefetch(&self, enabled: bool) {
        self.store.set_adaptive_prefetch(enabled);
    }

    /// Raises/lowers the adaptive window's upper bound; see
    /// [`DiskGridSource::set_prefetch_max_lookahead`].
    pub fn set_prefetch_max_lookahead(&self, max: usize) {
        self.store.set_prefetch_max(max);
    }

    /// Residency/eviction counters (see [`ResidencyStats`]).
    pub fn residency_stats(&self) -> ResidencyStats {
        self.store.residency_stats()
    }
}

impl PrefetchTarget for DiskShardSource {
    fn advise(&self, pid: usize) {
        self.store.advise(pid);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        self.store.prefetch_stats()
    }

    fn prefetch_window(&self) -> usize {
        self.store.prefetch_window()
    }
}

impl PartitionSource for DiskShardSource {
    fn num_partitions(&self) -> usize {
        self.store.num_partitions()
    }

    fn num_vertices(&self) -> VertexId {
        self.store.manifest.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        self.store.load(pid)
    }

    fn try_load(&self, pid: usize) -> Result<Arc<Vec<Edge>>> {
        self.store.try_load(pid)
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.store.with_view(|v| v.load_bytes[pid] as usize)
    }

    fn graph_bytes(&self) -> usize {
        self.store.with_view(|v| v.graph_bytes as usize)
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        // Clone the shard's Arc'd source set under the guard, scan outside.
        let srcs = self.store.with_view(|v| {
            Arc::clone(&v.srcs.as_ref().expect("shard stores always carry source sets")[pid])
        });
        srcs.iter().any(|&v| active.get(v as usize))
    }

    fn sweep_begin(&self) {
        self.store.sweep_begin();
    }

    fn sweep_end(&self) {
        self.store.sweep_end();
    }
}
