//! Disk-resident `PartitionSource` implementations.
//!
//! [`DiskGridSource`] and [`DiskShardSource`] mirror the in-memory
//! `GridSource` / `ChiSource` adapters exactly — same partition order,
//! same activity semantics, same byte accounting (taken from the manifest
//! instead of recomputed) — so `run_scheme`, the `SharingRuntime`, and the
//! §4 scheduler produce bit-identical reports on disk-resident graphs.
//!
//! Segments stay mapped, not loaded: [`edges`](DiskGridSource::edges) is a
//! zero-copy `&[Edge]` view into the mapping (the 12-byte `#[repr(C)]`
//! record layout matches the file format on little-endian hosts), and
//! `load` materializes an `Arc<Vec<Edge>>` only on demand, memoized
//! through a `Weak` so concurrent jobs share one copy while any of them
//! holds it — the in-memory half of the paper's "one copy of the graph
//! structure".

use crate::mmap::FileView;
use crate::prefetch::{AdaptiveWindow, DEFAULT_MAX_PREFETCH_LOOKAHEAD};
use graphm_core::PartitionSource;
use graphm_graph::segment::{validate_segment, Manifest, StoreLayout, SEGMENT_HEADER_BYTES};
use graphm_graph::{AtomicBitmap, Edge, GraphError, Result, VertexId, EDGE_BYTES};
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// Readahead counters for a disk store (see [`PrefetchTarget`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// `madvise(MADV_WILLNEED)` hints issued (deduplicated: one per
    /// partition per load cycle).
    pub issued: u64,
    /// Loads that found their partition already advised — the prefetcher
    /// won the race against the consumer.
    pub hits: u64,
    /// Wall nanoseconds spent issuing hints (the prefetch thread's cost,
    /// hidden off the streaming path).
    pub advise_ns: u64,
}

/// A partition store that can read partitions ahead of their load. The
/// [`Prefetcher`](crate::Prefetcher) thread drives this with the upcoming
/// window of the scheduler's loading order.
pub trait PrefetchTarget: Send + Sync {
    /// Hints that partition `pid` will be loaded soon.
    fn advise(&self, pid: usize);

    /// Counters accumulated so far.
    fn prefetch_stats(&self) -> PrefetchStats;

    /// Current prefetch depth: how many of the announced upcoming
    /// partitions the [`Prefetcher`](crate::Prefetcher) should actually
    /// advise. Adaptive targets return their feedback-controlled window;
    /// the default (`usize::MAX`) advises everything announced.
    fn prefetch_window(&self) -> usize {
        usize::MAX
    }
}

/// Page-cache residency model of a disk store: which segment bytes the
/// store believes are paged in (touched by a load or a readahead hint and
/// not yet released), and how much has been evicted back behind the sweep
/// frontier via `madvise(MADV_DONTNEED)` to honour the memory budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResidencyStats {
    /// Segment bytes currently modeled as resident.
    pub resident_bytes: u64,
    /// Total segment bytes released (`MADV_DONTNEED`) so far.
    pub evicted_bytes: u64,
    /// Number of partition evictions performed.
    pub evictions: u64,
    /// Configured memory budget in bytes (0 = unlimited; no eviction).
    pub budget_bytes: u64,
    /// Current adaptive prefetch window depth.
    pub prefetch_window: u64,
}

/// Process-wide registry of live shared openers, keyed by canonical store
/// directory. Holds `Weak`s so a store unmaps once every handle drops.
struct ShareRegistry<T> {
    live: Mutex<HashMap<PathBuf, Weak<T>>>,
}

impl<T> ShareRegistry<T> {
    fn new() -> ShareRegistry<T> {
        ShareRegistry { live: Mutex::new(HashMap::new()) }
    }

    /// Returns the live handle for `dir` or opens one with `open`. The
    /// key is the canonicalized directory, so `./store` and an absolute
    /// path to it share a mapping.
    ///
    /// `open` runs *outside* the registry lock — opening validates every
    /// record (O(E)), and holding the one global lock across that would
    /// serialize unrelated store opens. Two threads racing to open the
    /// same cold store may both do the work; the loser adopts the
    /// winner's handle and drops its own.
    fn open_shared(&self, dir: &Path, open: impl FnOnce() -> Result<T>) -> Result<Arc<T>> {
        let key = std::fs::canonicalize(dir)?;
        {
            let live = self.live.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(existing) = live.get(&key).and_then(Weak::upgrade) {
                return Ok(existing);
            }
        }
        let opened = Arc::new(open()?);
        let mut live = self.live.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(raced) = live.get(&key).and_then(Weak::upgrade) {
            return Ok(raced);
        }
        live.retain(|_, w| w.strong_count() > 0);
        live.insert(key, Arc::downgrade(&opened));
        Ok(opened)
    }
}

/// One mapped (or, on exotic platforms, decoded) segment.
enum SegmentData {
    /// Zero-copy: the file mapping itself, records reinterpreted in place.
    Mapped(FileView),
    /// Eagerly decoded records (big-endian hosts, or unmapped non-empty
    /// views whose buffers lack `Edge` alignment).
    Decoded(Vec<Edge>),
}

struct Segment {
    data: SegmentData,
    num_edges: usize,
}

impl Segment {
    fn open(path: &Path, expect_edges: u64) -> Result<Segment> {
        if cfg!(target_endian = "little") {
            let view = FileView::open(&File::open(path)?)?;
            let num_edges =
                validate_segment(view.as_slice(), Some(expect_edges), &path.display().to_string())?
                    as usize;
            let payload = &view.as_slice()[SEGMENT_HEADER_BYTES..];
            let aligned = (payload.as_ptr() as usize).is_multiple_of(std::mem::align_of::<Edge>());
            if view.is_mapped() || num_edges == 0 || aligned {
                Ok(Segment { data: SegmentData::Mapped(view), num_edges })
            } else {
                // Owned fallback buffer without Edge alignment: decode.
                let edges = graphm_graph::segment::read_segment(path)?;
                Ok(Segment { data: SegmentData::Decoded(edges), num_edges })
            }
        } else {
            let edges = graphm_graph::segment::read_segment(path)?;
            if edges.len() as u64 != expect_edges {
                return Err(GraphError::Format(format!(
                    "{}: manifest says {expect_edges} edges, segment holds {}",
                    path.display(),
                    edges.len()
                )));
            }
            let num_edges = edges.len();
            Ok(Segment { data: SegmentData::Decoded(edges), num_edges })
        }
    }

    fn edges(&self) -> &[Edge] {
        match &self.data {
            SegmentData::Mapped(view) => {
                if self.num_edges == 0 {
                    return &[];
                }
                let bytes = &view.as_slice()
                    [SEGMENT_HEADER_BYTES..SEGMENT_HEADER_BYTES + self.num_edges * EDGE_BYTES];
                // SAFETY: validated at open — the range is in bounds, the
                // pointer is 4-byte aligned (page-aligned mapping + 16-byte
                // header; the unaligned owned case was decoded instead),
                // `Edge` is `#[repr(C)] { u32, u32, f32 }` with no padding
                // and no invalid bit patterns, and the file's little-endian
                // layout matches the host's (big-endian hosts decode).
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const Edge, self.num_edges) }
            }
            SegmentData::Decoded(edges) => edges,
        }
    }
}

/// Shared machinery of the two disk sources.
struct DiskStore {
    dir: PathBuf,
    manifest: Manifest,
    segments: Vec<Segment>,
    /// Per-partition memoized materialization: jobs running concurrently
    /// share one `Arc` per partition; once every holder drops it the
    /// memory is returned and only the mapping remains.
    cache: Vec<Mutex<Weak<Vec<Edge>>>>,
    /// Per-partition "advised since last load" flags plus the global
    /// readahead counters.
    advised: Vec<AtomicBool>,
    pf_issued: AtomicU64,
    pf_hits: AtomicU64,
    pf_advise_ns: AtomicU64,
    /// Feedback-controlled prefetch depth (see
    /// [`crate::AdaptiveWindow`]); consulted through
    /// [`PrefetchTarget::prefetch_window`] unless adaptivity is off.
    window: AdaptiveWindow,
    adaptive: AtomicBool,
    /// Memory budget in bytes; 0 = unlimited (no eviction, counters only).
    budget: AtomicU64,
    /// Per-partition residency model: a partition is resident from the
    /// moment a load or readahead hint touches its segment until the
    /// budget enforcement releases it with `MADV_DONTNEED`.
    resident: Vec<AtomicBool>,
    resident_bytes: AtomicU64,
    evicted_bytes: AtomicU64,
    evictions: AtomicU64,
    /// Lazy-LRU eviction order: `(pid, seq)` in touch order; an entry is
    /// live only while `seq` matches `last_touch[pid]` (re-touching a
    /// partition invalidates its older entries instead of searching the
    /// queue). The sweep loads partitions in the §4 order, so the queue
    /// front is the ground already behind the frontier.
    touch_order: Mutex<VecDeque<(usize, u64)>>,
    last_touch: Vec<AtomicU64>,
    touch_seq: AtomicU64,
}

impl DiskStore {
    fn open(dir: &Path) -> Result<DiskStore> {
        let manifest = Manifest::read_from_dir(dir)?;
        let mut segments = Vec::with_capacity(manifest.partitions.len());
        for entry in &manifest.partitions {
            segments.push(Segment::open(&dir.join(&entry.file), entry.num_edges)?);
        }
        // Records are untrusted: every endpoint must be in range before any
        // job indexes its vertex-state arrays with them (same guarantee
        // `storage::read_edge_list` gives, as a typed error, not a panic).
        let nv = manifest.num_vertices;
        for seg in &segments {
            for e in seg.edges() {
                if e.src >= nv {
                    return Err(GraphError::VertexOutOfRange { vertex: e.src, num_vertices: nv });
                }
                if e.dst >= nv {
                    return Err(GraphError::VertexOutOfRange { vertex: e.dst, num_vertices: nv });
                }
            }
        }
        let cache = (0..segments.len()).map(|_| Mutex::new(Weak::new())).collect();
        let advised = (0..segments.len()).map(|_| AtomicBool::new(false)).collect();
        let resident = (0..segments.len()).map(|_| AtomicBool::new(false)).collect();
        let last_touch = (0..segments.len()).map(|_| AtomicU64::new(0)).collect();
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            manifest,
            segments,
            cache,
            advised,
            pf_issued: AtomicU64::new(0),
            pf_hits: AtomicU64::new(0),
            pf_advise_ns: AtomicU64::new(0),
            window: AdaptiveWindow::new(DEFAULT_MAX_PREFETCH_LOOKAHEAD),
            adaptive: AtomicBool::new(true),
            budget: AtomicU64::new(0),
            resident,
            resident_bytes: AtomicU64::new(0),
            evicted_bytes: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            touch_order: Mutex::new(VecDeque::new()),
            last_touch,
            touch_seq: AtomicU64::new(0),
        })
    }

    /// Segment bytes charged to the residency model for `pid`.
    fn seg_bytes(&self, pid: usize) -> u64 {
        self.manifest.partitions[pid].byte_len
    }

    /// Marks `pid`'s segment as paged in (by a load or a readahead hint)
    /// and records its position in the eviction order. The queue is kept
    /// bounded: stale entries (a later touch superseded them) are
    /// compacted away once they dominate, and with no budget configured —
    /// where nothing would ever pop the queue — it is skipped entirely.
    fn touch(&self, pid: usize) {
        if self.budget.load(Ordering::Relaxed) > 0 {
            let seq = self.touch_seq.fetch_add(1, Ordering::Relaxed) + 1;
            self.last_touch[pid].store(seq, Ordering::Relaxed);
            let mut order = self.touch_order.lock().unwrap_or_else(|e| e.into_inner());
            order.push_back((pid, seq));
            if order.len() > self.segments.len() * 4 + 64 {
                // At most one entry per partition is live; everything
                // else is superseded history.
                order.retain(|&(p, s)| self.last_touch[p].load(Ordering::Relaxed) == s);
            }
        }
        if !self.resident[pid].swap(true, Ordering::AcqRel) {
            self.resident_bytes.fetch_add(self.seg_bytes(pid), Ordering::Relaxed);
        }
    }

    /// Releases resident segments behind the sweep frontier (oldest touch
    /// first) until the model fits the budget again. `current` — the
    /// partition being streamed right now — is never released.
    fn enforce_budget(&self, current: usize) {
        let budget = self.budget.load(Ordering::Relaxed);
        if budget == 0 {
            return;
        }
        let mut held_current = None;
        while self.resident_bytes.load(Ordering::Relaxed) > budget {
            let entry = self.touch_order.lock().unwrap_or_else(|e| e.into_inner()).pop_front();
            let Some((pid, seq)) = entry else { break };
            if self.last_touch[pid].load(Ordering::Relaxed) != seq {
                continue; // Stale entry: the partition was re-touched later.
            }
            if pid == current {
                // At most one live entry per pid: hold it aside, restore
                // it after the scan so it ages normally.
                held_current = Some((pid, seq));
                continue;
            }
            if !self.resident[pid].load(Ordering::Acquire) {
                continue;
            }
            let released = match &self.segments[pid].data {
                SegmentData::Mapped(view) => view.advise_dontneed(),
                SegmentData::Decoded(_) => false,
            };
            if released {
                self.resident[pid].store(false, Ordering::Release);
                self.resident_bytes.fetch_sub(self.seg_bytes(pid), Ordering::Relaxed);
                self.evicted_bytes.fetch_add(self.seg_bytes(pid), Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                // A pending WILLNEED hint for released pages is stale:
                // the next load must count as a miss and re-grow the
                // window.
                self.advised[pid].store(false, Ordering::Release);
            }
            // Unevictable segments (decoded fallbacks) stay resident and
            // simply leave the queue.
        }
        if let Some(entry) = held_current {
            self.touch_order.lock().unwrap_or_else(|e| e.into_inner()).push_front(entry);
        }
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        let mut slot = self.cache[pid].lock().unwrap_or_else(|e| e.into_inner());
        let cached = slot.upgrade();
        let advised = self.advised[pid].swap(false, Ordering::AcqRel);
        if advised {
            self.pf_hits.fetch_add(1, Ordering::Relaxed);
        }
        // The feedback controller observes a load only when it actually
        // steers readahead: adaptivity on, a prefetcher has issued at
        // least one hint (deterministic mode never spawns one — the
        // reported window must not drift to max meaninglessly), and the
        // load really reads the mapping (live-cache serves do no I/O).
        let adaptive = self.adaptive.load(Ordering::Relaxed)
            && self.pf_issued.load(Ordering::Relaxed) > 0
            && cached.is_none();
        if adaptive {
            if advised {
                self.window.on_hit();
            } else {
                self.window.on_miss();
            }
        }
        self.touch(pid);
        self.enforce_budget(pid);
        let budget = self.budget.load(Ordering::Relaxed);
        if adaptive
            && budget > 0
            && self.resident_bytes.load(Ordering::Relaxed).saturating_mul(8) >= budget * 7
        {
            // Paged-in bytes approach the budget: rein the readahead in
            // before it feeds the eviction it then pays for.
            self.window.on_pressure();
        }
        if let Some(live) = cached {
            return live;
        }
        let materialized = Arc::new(self.segments[pid].edges().to_vec());
        *slot = Arc::downgrade(&materialized);
        materialized
    }

    /// Issues a readahead hint for `pid`'s segment, at most once per load
    /// cycle (the flag re-arms when the partition is next loaded).
    fn advise(&self, pid: usize) {
        if pid >= self.segments.len() || self.advised[pid].swap(true, Ordering::AcqRel) {
            return;
        }
        let start = Instant::now();
        if let SegmentData::Mapped(view) = &self.segments[pid].data {
            view.advise_willneed();
        }
        self.touch(pid);
        self.pf_advise_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.pf_issued.fetch_add(1, Ordering::Relaxed);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        PrefetchStats {
            issued: self.pf_issued.load(Ordering::Relaxed),
            hits: self.pf_hits.load(Ordering::Relaxed),
            advise_ns: self.pf_advise_ns.load(Ordering::Relaxed),
        }
    }

    fn prefetch_window(&self) -> usize {
        if self.adaptive.load(Ordering::Relaxed) {
            self.window.current()
        } else {
            usize::MAX
        }
    }

    fn set_memory_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    fn set_adaptive_prefetch(&self, enabled: bool) {
        self.adaptive.store(enabled, Ordering::Relaxed);
    }

    fn set_prefetch_max(&self, max: usize) {
        self.window.set_max(max);
    }

    fn residency_stats(&self) -> ResidencyStats {
        ResidencyStats {
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
            evicted_bytes: self.evicted_bytes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            budget_bytes: self.budget.load(Ordering::Relaxed),
            prefetch_window: self.window.current() as u64,
        }
    }

    fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.manifest.num_vertices as usize];
        for seg in &self.segments {
            for e in seg.edges() {
                deg[e.src as usize] += 1;
            }
        }
        deg
    }
}

impl std::fmt::Debug for DiskGridSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskGridSource")
            .field("dir", &self.store.dir)
            .field("p", &self.p)
            .field("partitions", &self.store.segments.len())
            .finish()
    }
}

/// A grid-layout store on disk, exposed to GraphM. Drop-in replacement for
/// the in-memory `GridSource`.
pub struct DiskGridSource {
    store: DiskStore,
    p: usize,
    order: Vec<usize>,
}

impl DiskGridSource {
    /// Opens a store directory written by [`Convert::grid`](crate::Convert::grid).
    pub fn open(dir: &Path) -> Result<DiskGridSource> {
        let store = DiskStore::open(dir)?;
        let p = match store.manifest.layout {
            StoreLayout::Grid { p } => p as usize,
            other => {
                return Err(GraphError::Format(format!(
                    "{}: expected a grid store, found {other:?}",
                    dir.display()
                )))
            }
        };
        if store.segments.len() != p * p {
            return Err(GraphError::Format(format!(
                "{}: grid p = {p} implies {} partitions, manifest has {}",
                dir.display(),
                p * p,
                store.segments.len()
            )));
        }
        let order = store.manifest.order.iter().map(|&v| v as usize).collect();
        Ok(DiskGridSource { store, p, order })
    }

    /// Opens `dir` through the process-wide share registry: while any
    /// previously returned handle is alive, every `open_shared` of the
    /// same (canonicalized) directory returns a clone of the same `Arc`,
    /// so N workbenches/daemon threads over one store share one mapping,
    /// one manifest, and one per-partition materialization cache instead
    /// of N. Stores are single-writer/multi-reader: `Convert` writes a
    /// directory once, readers never mutate it (see
    /// `docs/ARCHITECTURE.md`), which is what makes the shared handle
    /// sound.
    pub fn open_shared(dir: &Path) -> Result<Arc<DiskGridSource>> {
        static REGISTRY: OnceLock<ShareRegistry<DiskGridSource>> = OnceLock::new();
        REGISTRY.get_or_init(ShareRegistry::new).open_shared(dir, || DiskGridSource::open(dir))
    }

    /// Grid dimension `P`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The store's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.store.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.store.dir
    }

    /// Zero-copy view of partition `pid`'s records inside the mapping.
    pub fn edges(&self, pid: usize) -> &[Edge] {
        self.store.segments[pid].edges()
    }

    /// Out-degrees, streamed from the mapped segments (PageRank-family
    /// jobs need them; no `EdgeList` is ever materialized).
    pub fn out_degrees(&self) -> Vec<u32> {
        self.store.out_degrees()
    }

    /// Sets the page-cache budget in bytes (0 = unlimited): once modeled
    /// residency exceeds it, loads release segments behind the sweep
    /// frontier with `madvise(MADV_DONTNEED)`.
    pub fn set_memory_budget(&self, bytes: u64) {
        self.store.set_memory_budget(bytes);
    }

    /// Enables/disables the adaptive prefetch window (on by default;
    /// disabled = advise the full announced lookahead, the pre-adaptive
    /// behaviour).
    pub fn set_adaptive_prefetch(&self, enabled: bool) {
        self.store.set_adaptive_prefetch(enabled);
    }

    /// Raises/lowers the adaptive window's upper bound (default
    /// [`crate::DEFAULT_MAX_PREFETCH_LOOKAHEAD`]) — keep it in sync with
    /// the runtime's announced lookahead so a deeper announcement can
    /// actually be used.
    pub fn set_prefetch_max_lookahead(&self, max: usize) {
        self.store.set_prefetch_max(max);
    }

    /// Residency/eviction counters (see [`ResidencyStats`]).
    pub fn residency_stats(&self) -> ResidencyStats {
        self.store.residency_stats()
    }
}

impl PrefetchTarget for DiskGridSource {
    fn advise(&self, pid: usize) {
        self.store.advise(pid);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        self.store.prefetch_stats()
    }

    fn prefetch_window(&self) -> usize {
        self.store.prefetch_window()
    }
}

impl PartitionSource for DiskGridSource {
    fn num_partitions(&self) -> usize {
        self.store.segments.len()
    }

    fn num_vertices(&self) -> VertexId {
        self.store.manifest.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        self.store.load(pid)
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.store.manifest.partitions[pid].load_bytes as usize
    }

    fn graph_bytes(&self) -> usize {
        self.store.manifest.graph_bytes() as usize
    }

    fn order(&self) -> Vec<usize> {
        self.order.clone()
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        if self.store.segments[pid].num_edges == 0 {
            return false;
        }
        let e = &self.store.manifest.partitions[pid];
        e.src_lo < e.src_hi && active.any_in_range(e.src_lo as usize, e.src_hi as usize)
    }
}

impl std::fmt::Debug for DiskShardSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskShardSource")
            .field("dir", &self.store.dir)
            .field("partitions", &self.store.segments.len())
            .finish()
    }
}

/// A shard-layout store on disk, exposed to GraphM. Drop-in replacement
/// for the in-memory `ChiSource`.
pub struct DiskShardSource {
    store: DiskStore,
    /// Distinct source vertices per shard, rebuilt from the mapped records
    /// at open — the exact activity semantics of `ChiSource`.
    srcs: Vec<Vec<VertexId>>,
}

impl DiskShardSource {
    /// Opens a store directory written by [`Convert::shards`](crate::Convert::shards).
    pub fn open(dir: &Path) -> Result<DiskShardSource> {
        let store = DiskStore::open(dir)?;
        match store.manifest.layout {
            StoreLayout::Shards { .. } => {}
            other => {
                return Err(GraphError::Format(format!(
                    "{}: expected a shard store, found {other:?}",
                    dir.display()
                )))
            }
        }
        let srcs = store
            .segments
            .iter()
            .map(|seg| {
                let mut sv: Vec<VertexId> = seg.edges().iter().map(|e| e.src).collect();
                sv.sort_unstable();
                sv.dedup();
                sv
            })
            .collect();
        Ok(DiskShardSource { store, srcs })
    }

    /// Opens `dir` through the process-wide share registry (the shard
    /// counterpart of [`DiskGridSource::open_shared`]).
    pub fn open_shared(dir: &Path) -> Result<Arc<DiskShardSource>> {
        static REGISTRY: OnceLock<ShareRegistry<DiskShardSource>> = OnceLock::new();
        REGISTRY.get_or_init(ShareRegistry::new).open_shared(dir, || DiskShardSource::open(dir))
    }

    /// The store's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.store.manifest
    }

    /// Zero-copy view of shard `pid`'s records inside the mapping.
    pub fn edges(&self, pid: usize) -> &[Edge] {
        self.store.segments[pid].edges()
    }

    /// Out-degrees, streamed from the mapped segments.
    pub fn out_degrees(&self) -> Vec<u32> {
        self.store.out_degrees()
    }

    /// Sets the page-cache budget in bytes (0 = unlimited); see
    /// [`DiskGridSource::set_memory_budget`].
    pub fn set_memory_budget(&self, bytes: u64) {
        self.store.set_memory_budget(bytes);
    }

    /// Enables/disables the adaptive prefetch window; see
    /// [`DiskGridSource::set_adaptive_prefetch`].
    pub fn set_adaptive_prefetch(&self, enabled: bool) {
        self.store.set_adaptive_prefetch(enabled);
    }

    /// Raises/lowers the adaptive window's upper bound; see
    /// [`DiskGridSource::set_prefetch_max_lookahead`].
    pub fn set_prefetch_max_lookahead(&self, max: usize) {
        self.store.set_prefetch_max(max);
    }

    /// Residency/eviction counters (see [`ResidencyStats`]).
    pub fn residency_stats(&self) -> ResidencyStats {
        self.store.residency_stats()
    }
}

impl PrefetchTarget for DiskShardSource {
    fn advise(&self, pid: usize) {
        self.store.advise(pid);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        self.store.prefetch_stats()
    }

    fn prefetch_window(&self) -> usize {
        self.store.prefetch_window()
    }
}

impl PartitionSource for DiskShardSource {
    fn num_partitions(&self) -> usize {
        self.store.segments.len()
    }

    fn num_vertices(&self) -> VertexId {
        self.store.manifest.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        self.store.load(pid)
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.store.manifest.partitions[pid].load_bytes as usize
    }

    fn graph_bytes(&self) -> usize {
        self.store.manifest.graph_bytes() as usize
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        self.srcs[pid].iter().any(|&v| active.get(v as usize))
    }
}
