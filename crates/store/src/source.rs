//! Disk-resident `PartitionSource` implementations.
//!
//! [`DiskGridSource`] and [`DiskShardSource`] mirror the in-memory
//! `GridSource` / `ChiSource` adapters exactly — same partition order,
//! same activity semantics, same byte accounting (taken from the manifest
//! instead of recomputed) — so `run_scheme`, the `SharingRuntime`, and the
//! §4 scheduler produce bit-identical reports on disk-resident graphs.
//!
//! Segments stay mapped, not loaded: [`edges`](DiskGridSource::edges) is a
//! zero-copy `&[Edge]` view into the mapping (the 12-byte `#[repr(C)]`
//! record layout matches the file format on little-endian hosts), and
//! `load` materializes an `Arc<Vec<Edge>>` only on demand, memoized
//! through a `Weak` so concurrent jobs share one copy while any of them
//! holds it — the in-memory half of the paper's "one copy of the graph
//! structure".

use crate::mmap::FileView;
use graphm_core::PartitionSource;
use graphm_graph::segment::{validate_segment, Manifest, StoreLayout, SEGMENT_HEADER_BYTES};
use graphm_graph::{AtomicBitmap, Edge, GraphError, Result, VertexId, EDGE_BYTES};
use std::collections::HashMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// Readahead counters for a disk store (see [`PrefetchTarget`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// `madvise(MADV_WILLNEED)` hints issued (deduplicated: one per
    /// partition per load cycle).
    pub issued: u64,
    /// Loads that found their partition already advised — the prefetcher
    /// won the race against the consumer.
    pub hits: u64,
    /// Wall nanoseconds spent issuing hints (the prefetch thread's cost,
    /// hidden off the streaming path).
    pub advise_ns: u64,
}

/// A partition store that can read partitions ahead of their load. The
/// [`Prefetcher`](crate::Prefetcher) thread drives this with the upcoming
/// window of the scheduler's loading order.
pub trait PrefetchTarget: Send + Sync {
    /// Hints that partition `pid` will be loaded soon.
    fn advise(&self, pid: usize);

    /// Counters accumulated so far.
    fn prefetch_stats(&self) -> PrefetchStats;
}

/// Process-wide registry of live shared openers, keyed by canonical store
/// directory. Holds `Weak`s so a store unmaps once every handle drops.
struct ShareRegistry<T> {
    live: Mutex<HashMap<PathBuf, Weak<T>>>,
}

impl<T> ShareRegistry<T> {
    fn new() -> ShareRegistry<T> {
        ShareRegistry { live: Mutex::new(HashMap::new()) }
    }

    /// Returns the live handle for `dir` or opens one with `open`. The
    /// key is the canonicalized directory, so `./store` and an absolute
    /// path to it share a mapping.
    ///
    /// `open` runs *outside* the registry lock — opening validates every
    /// record (O(E)), and holding the one global lock across that would
    /// serialize unrelated store opens. Two threads racing to open the
    /// same cold store may both do the work; the loser adopts the
    /// winner's handle and drops its own.
    fn open_shared(&self, dir: &Path, open: impl FnOnce() -> Result<T>) -> Result<Arc<T>> {
        let key = std::fs::canonicalize(dir)?;
        {
            let live = self.live.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(existing) = live.get(&key).and_then(Weak::upgrade) {
                return Ok(existing);
            }
        }
        let opened = Arc::new(open()?);
        let mut live = self.live.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(raced) = live.get(&key).and_then(Weak::upgrade) {
            return Ok(raced);
        }
        live.retain(|_, w| w.strong_count() > 0);
        live.insert(key, Arc::downgrade(&opened));
        Ok(opened)
    }
}

/// One mapped (or, on exotic platforms, decoded) segment.
enum SegmentData {
    /// Zero-copy: the file mapping itself, records reinterpreted in place.
    Mapped(FileView),
    /// Eagerly decoded records (big-endian hosts, or unmapped non-empty
    /// views whose buffers lack `Edge` alignment).
    Decoded(Vec<Edge>),
}

struct Segment {
    data: SegmentData,
    num_edges: usize,
}

impl Segment {
    fn open(path: &Path, expect_edges: u64) -> Result<Segment> {
        if cfg!(target_endian = "little") {
            let view = FileView::open(&File::open(path)?)?;
            let num_edges =
                validate_segment(view.as_slice(), Some(expect_edges), &path.display().to_string())?
                    as usize;
            let payload = &view.as_slice()[SEGMENT_HEADER_BYTES..];
            let aligned = (payload.as_ptr() as usize).is_multiple_of(std::mem::align_of::<Edge>());
            if view.is_mapped() || num_edges == 0 || aligned {
                Ok(Segment { data: SegmentData::Mapped(view), num_edges })
            } else {
                // Owned fallback buffer without Edge alignment: decode.
                let edges = graphm_graph::segment::read_segment(path)?;
                Ok(Segment { data: SegmentData::Decoded(edges), num_edges })
            }
        } else {
            let edges = graphm_graph::segment::read_segment(path)?;
            if edges.len() as u64 != expect_edges {
                return Err(GraphError::Format(format!(
                    "{}: manifest says {expect_edges} edges, segment holds {}",
                    path.display(),
                    edges.len()
                )));
            }
            let num_edges = edges.len();
            Ok(Segment { data: SegmentData::Decoded(edges), num_edges })
        }
    }

    fn edges(&self) -> &[Edge] {
        match &self.data {
            SegmentData::Mapped(view) => {
                if self.num_edges == 0 {
                    return &[];
                }
                let bytes = &view.as_slice()
                    [SEGMENT_HEADER_BYTES..SEGMENT_HEADER_BYTES + self.num_edges * EDGE_BYTES];
                // SAFETY: validated at open — the range is in bounds, the
                // pointer is 4-byte aligned (page-aligned mapping + 16-byte
                // header; the unaligned owned case was decoded instead),
                // `Edge` is `#[repr(C)] { u32, u32, f32 }` with no padding
                // and no invalid bit patterns, and the file's little-endian
                // layout matches the host's (big-endian hosts decode).
                unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const Edge, self.num_edges) }
            }
            SegmentData::Decoded(edges) => edges,
        }
    }
}

/// Shared machinery of the two disk sources.
struct DiskStore {
    dir: PathBuf,
    manifest: Manifest,
    segments: Vec<Segment>,
    /// Per-partition memoized materialization: jobs running concurrently
    /// share one `Arc` per partition; once every holder drops it the
    /// memory is returned and only the mapping remains.
    cache: Vec<Mutex<Weak<Vec<Edge>>>>,
    /// Per-partition "advised since last load" flags plus the global
    /// readahead counters.
    advised: Vec<AtomicBool>,
    pf_issued: AtomicU64,
    pf_hits: AtomicU64,
    pf_advise_ns: AtomicU64,
}

impl DiskStore {
    fn open(dir: &Path) -> Result<DiskStore> {
        let manifest = Manifest::read_from_dir(dir)?;
        let mut segments = Vec::with_capacity(manifest.partitions.len());
        for entry in &manifest.partitions {
            segments.push(Segment::open(&dir.join(&entry.file), entry.num_edges)?);
        }
        // Records are untrusted: every endpoint must be in range before any
        // job indexes its vertex-state arrays with them (same guarantee
        // `storage::read_edge_list` gives, as a typed error, not a panic).
        let nv = manifest.num_vertices;
        for seg in &segments {
            for e in seg.edges() {
                if e.src >= nv {
                    return Err(GraphError::VertexOutOfRange { vertex: e.src, num_vertices: nv });
                }
                if e.dst >= nv {
                    return Err(GraphError::VertexOutOfRange { vertex: e.dst, num_vertices: nv });
                }
            }
        }
        let cache = (0..segments.len()).map(|_| Mutex::new(Weak::new())).collect();
        let advised = (0..segments.len()).map(|_| AtomicBool::new(false)).collect();
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            manifest,
            segments,
            cache,
            advised,
            pf_issued: AtomicU64::new(0),
            pf_hits: AtomicU64::new(0),
            pf_advise_ns: AtomicU64::new(0),
        })
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        if self.advised[pid].swap(false, Ordering::AcqRel) {
            self.pf_hits.fetch_add(1, Ordering::Relaxed);
        }
        let mut slot = self.cache[pid].lock().unwrap_or_else(|e| e.into_inner());
        if let Some(live) = slot.upgrade() {
            return live;
        }
        let materialized = Arc::new(self.segments[pid].edges().to_vec());
        *slot = Arc::downgrade(&materialized);
        materialized
    }

    /// Issues a readahead hint for `pid`'s segment, at most once per load
    /// cycle (the flag re-arms when the partition is next loaded).
    fn advise(&self, pid: usize) {
        if pid >= self.segments.len() || self.advised[pid].swap(true, Ordering::AcqRel) {
            return;
        }
        let start = Instant::now();
        if let SegmentData::Mapped(view) = &self.segments[pid].data {
            view.advise_willneed();
        }
        self.pf_advise_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.pf_issued.fetch_add(1, Ordering::Relaxed);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        PrefetchStats {
            issued: self.pf_issued.load(Ordering::Relaxed),
            hits: self.pf_hits.load(Ordering::Relaxed),
            advise_ns: self.pf_advise_ns.load(Ordering::Relaxed),
        }
    }

    fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.manifest.num_vertices as usize];
        for seg in &self.segments {
            for e in seg.edges() {
                deg[e.src as usize] += 1;
            }
        }
        deg
    }
}

impl std::fmt::Debug for DiskGridSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskGridSource")
            .field("dir", &self.store.dir)
            .field("p", &self.p)
            .field("partitions", &self.store.segments.len())
            .finish()
    }
}

/// A grid-layout store on disk, exposed to GraphM. Drop-in replacement for
/// the in-memory `GridSource`.
pub struct DiskGridSource {
    store: DiskStore,
    p: usize,
    order: Vec<usize>,
}

impl DiskGridSource {
    /// Opens a store directory written by [`Convert::grid`](crate::Convert::grid).
    pub fn open(dir: &Path) -> Result<DiskGridSource> {
        let store = DiskStore::open(dir)?;
        let p = match store.manifest.layout {
            StoreLayout::Grid { p } => p as usize,
            other => {
                return Err(GraphError::Format(format!(
                    "{}: expected a grid store, found {other:?}",
                    dir.display()
                )))
            }
        };
        if store.segments.len() != p * p {
            return Err(GraphError::Format(format!(
                "{}: grid p = {p} implies {} partitions, manifest has {}",
                dir.display(),
                p * p,
                store.segments.len()
            )));
        }
        let order = store.manifest.order.iter().map(|&v| v as usize).collect();
        Ok(DiskGridSource { store, p, order })
    }

    /// Opens `dir` through the process-wide share registry: while any
    /// previously returned handle is alive, every `open_shared` of the
    /// same (canonicalized) directory returns a clone of the same `Arc`,
    /// so N workbenches/daemon threads over one store share one mapping,
    /// one manifest, and one per-partition materialization cache instead
    /// of N. Stores are single-writer/multi-reader: `Convert` writes a
    /// directory once, readers never mutate it (see
    /// `docs/ARCHITECTURE.md`), which is what makes the shared handle
    /// sound.
    pub fn open_shared(dir: &Path) -> Result<Arc<DiskGridSource>> {
        static REGISTRY: OnceLock<ShareRegistry<DiskGridSource>> = OnceLock::new();
        REGISTRY.get_or_init(ShareRegistry::new).open_shared(dir, || DiskGridSource::open(dir))
    }

    /// Grid dimension `P`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The store's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.store.manifest
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.store.dir
    }

    /// Zero-copy view of partition `pid`'s records inside the mapping.
    pub fn edges(&self, pid: usize) -> &[Edge] {
        self.store.segments[pid].edges()
    }

    /// Out-degrees, streamed from the mapped segments (PageRank-family
    /// jobs need them; no `EdgeList` is ever materialized).
    pub fn out_degrees(&self) -> Vec<u32> {
        self.store.out_degrees()
    }
}

impl PrefetchTarget for DiskGridSource {
    fn advise(&self, pid: usize) {
        self.store.advise(pid);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        self.store.prefetch_stats()
    }
}

impl PartitionSource for DiskGridSource {
    fn num_partitions(&self) -> usize {
        self.store.segments.len()
    }

    fn num_vertices(&self) -> VertexId {
        self.store.manifest.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        self.store.load(pid)
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.store.manifest.partitions[pid].load_bytes as usize
    }

    fn graph_bytes(&self) -> usize {
        self.store.manifest.graph_bytes() as usize
    }

    fn order(&self) -> Vec<usize> {
        self.order.clone()
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        if self.store.segments[pid].num_edges == 0 {
            return false;
        }
        let e = &self.store.manifest.partitions[pid];
        e.src_lo < e.src_hi && active.any_in_range(e.src_lo as usize, e.src_hi as usize)
    }
}

impl std::fmt::Debug for DiskShardSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskShardSource")
            .field("dir", &self.store.dir)
            .field("partitions", &self.store.segments.len())
            .finish()
    }
}

/// A shard-layout store on disk, exposed to GraphM. Drop-in replacement
/// for the in-memory `ChiSource`.
pub struct DiskShardSource {
    store: DiskStore,
    /// Distinct source vertices per shard, rebuilt from the mapped records
    /// at open — the exact activity semantics of `ChiSource`.
    srcs: Vec<Vec<VertexId>>,
}

impl DiskShardSource {
    /// Opens a store directory written by [`Convert::shards`](crate::Convert::shards).
    pub fn open(dir: &Path) -> Result<DiskShardSource> {
        let store = DiskStore::open(dir)?;
        match store.manifest.layout {
            StoreLayout::Shards { .. } => {}
            other => {
                return Err(GraphError::Format(format!(
                    "{}: expected a shard store, found {other:?}",
                    dir.display()
                )))
            }
        }
        let srcs = store
            .segments
            .iter()
            .map(|seg| {
                let mut sv: Vec<VertexId> = seg.edges().iter().map(|e| e.src).collect();
                sv.sort_unstable();
                sv.dedup();
                sv
            })
            .collect();
        Ok(DiskShardSource { store, srcs })
    }

    /// Opens `dir` through the process-wide share registry (the shard
    /// counterpart of [`DiskGridSource::open_shared`]).
    pub fn open_shared(dir: &Path) -> Result<Arc<DiskShardSource>> {
        static REGISTRY: OnceLock<ShareRegistry<DiskShardSource>> = OnceLock::new();
        REGISTRY.get_or_init(ShareRegistry::new).open_shared(dir, || DiskShardSource::open(dir))
    }

    /// The store's manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.store.manifest
    }

    /// Zero-copy view of shard `pid`'s records inside the mapping.
    pub fn edges(&self, pid: usize) -> &[Edge] {
        self.store.segments[pid].edges()
    }

    /// Out-degrees, streamed from the mapped segments.
    pub fn out_degrees(&self) -> Vec<u32> {
        self.store.out_degrees()
    }
}

impl PrefetchTarget for DiskShardSource {
    fn advise(&self, pid: usize) {
        self.store.advise(pid);
    }

    fn prefetch_stats(&self) -> PrefetchStats {
        self.store.prefetch_stats()
    }
}

impl PartitionSource for DiskShardSource {
    fn num_partitions(&self) -> usize {
        self.store.segments.len()
    }

    fn num_vertices(&self) -> VertexId {
        self.store.manifest.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        self.store.load(pid)
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.store.manifest.partitions[pid].load_bytes as usize
    }

    fn graph_bytes(&self) -> usize {
        self.store.manifest.graph_bytes() as usize
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        self.srcs[pid].iter().any(|&v| active.get(v as usize))
    }
}
