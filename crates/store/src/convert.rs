//! `Convert()` — preprocessing an edge list into the on-disk store.
//!
//! §3.1 of the paper: GraphM keeps the original graph data in secondary
//! storage and converts it once into the host engine's format. This module
//! is that step made durable: it grid- or shard-partitions the graph with
//! the exact code the in-memory engines use ([`Grid::convert`] /
//! [`Shards::convert`]), then writes one segment file per partition plus a
//! manifest, producing a directory the `Disk*Source` readers mmap.

use graphm_graph::segment::{write_segment, Manifest, ManifestEntry, StoreLayout};
use graphm_graph::{EdgeList, GraphError, Grid, Result, Shards};
use std::path::Path;

/// Builder for the on-disk conversion.
///
/// ```no_run
/// use graphm_store::Convert;
/// # let graph = graphm_graph::EdgeList::new(0);
/// let manifest = Convert::grid(8).write(&graph, std::path::Path::new("/data/twitter.gm")).unwrap();
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Convert {
    layout: StoreLayout,
}

/// Segment file name for partition `pid`.
pub fn segment_file_name(pid: usize) -> String {
    format!("part-{pid:05}.seg")
}

impl Convert {
    /// Convert into GridGraph's `p × p` grid layout.
    pub fn grid(p: usize) -> Convert {
        assert!(p >= 1 && p <= u32::MAX as usize, "grid requires 1 <= p <= u32::MAX");
        Convert { layout: StoreLayout::Grid { p: p as u32 } }
    }

    /// Convert into GraphChi's `p`-shard layout.
    pub fn shards(p: usize) -> Convert {
        assert!(p >= 1 && p <= u32::MAX as usize, "shards require 1 <= p <= u32::MAX");
        Convert { layout: StoreLayout::Shards { p: p as u32 } }
    }

    /// The layout this builder converts into.
    pub fn layout(&self) -> StoreLayout {
        self.layout
    }

    /// Partitions `graph`, writes segments + manifest into `dir` (created
    /// if missing), and returns the manifest.
    pub fn write(&self, graph: &EdgeList, dir: &Path) -> Result<Manifest> {
        std::fs::create_dir_all(dir)?;
        let manifest = match self.layout {
            StoreLayout::Grid { p } => self.write_grid(graph, dir, p as usize)?,
            StoreLayout::Shards { p } => self.write_shards(graph, dir, p as usize)?,
        };
        manifest.write_to_dir(dir)?;
        Ok(manifest)
    }

    fn write_grid(&self, graph: &EdgeList, dir: &Path, p: usize) -> Result<Manifest> {
        let grid = Grid::convert(graph, p);
        let mut partitions = Vec::with_capacity(grid.num_blocks());
        for idx in 0..grid.num_blocks() {
            let (row, _) = grid.block_coords(idx);
            let (src_lo, src_hi) = grid.ranges().bounds(row);
            let block = grid.block_by_index(idx);
            let file = segment_file_name(idx);
            let byte_len = write_segment(block, &dir.join(&file))?;
            partitions.push(ManifestEntry {
                file,
                num_edges: block.len() as u64,
                byte_len,
                src_lo,
                src_hi,
                // A grid block's load is exactly its payload.
                load_bytes: byte_len,
            });
        }
        Ok(Manifest {
            layout: StoreLayout::Grid { p: p as u32 },
            num_vertices: graph.num_vertices,
            partitions,
            order: grid.streaming_order().into_iter().map(to_u32).collect(),
        })
    }

    fn write_shards(&self, graph: &EdgeList, dir: &Path, p: usize) -> Result<Manifest> {
        let shards = Shards::convert(graph, p);
        let mut partitions = Vec::with_capacity(shards.num_shards());
        for s in 0..shards.num_shards() {
            let edges = shards.shard(s);
            let file = segment_file_name(s);
            let byte_len = write_segment(edges, &dir.join(&file))?;
            // Shards are source-sorted, so observed bounds are a tight
            // summary; exact per-vertex activity is reconstructed from the
            // mapped records at open time.
            let (src_lo, src_hi) = match (edges.first(), edges.last()) {
                (Some(first), Some(last)) => (first.src, last.src + 1),
                _ => (0, 0),
            };
            partitions.push(ManifestEntry {
                file,
                num_edges: edges.len() as u64,
                byte_len,
                src_lo,
                src_hi,
                // GraphChi drags sliding windows in with the memory shard.
                load_bytes: shards.interval_load_bytes(s) as u64,
            });
        }
        Ok(Manifest {
            layout: StoreLayout::Shards { p: p as u32 },
            num_vertices: graph.num_vertices,
            partitions,
            order: (0..shards.num_shards()).map(to_u32).collect(),
        })
    }
}

fn to_u32(v: usize) -> u32 {
    u32::try_from(v).expect("partition count fits u32")
}

/// Convenience: converts and returns an error when the target directory
/// already holds a manifest for a *different kind* of layout (protects
/// against silently mixing grid and shard stores in one directory;
/// re-converting the same kind at a different `p` is allowed).
pub fn convert_fresh(builder: Convert, graph: &EdgeList, dir: &Path) -> Result<Manifest> {
    if dir.join(graphm_graph::segment::MANIFEST_FILE).exists() {
        let existing = Manifest::read_from_dir(dir)?;
        if existing.layout.tag() != builder.layout().tag() {
            return Err(GraphError::Format(format!(
                "store at {} already holds layout {:?}, refusing to overwrite with {:?}",
                dir.display(),
                existing.layout,
                builder.layout()
            )));
        }
    }
    builder.write(graph, dir)
}
