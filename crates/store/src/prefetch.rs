//! The partition readahead thread.
//!
//! The §4 scheduler computes the loading order before every sweep, so the
//! runtime always knows which partitions come next — information an
//! out-of-core system can spend on prefetch (GraphD hides disk latency
//! under compute exactly this way). A [`Prefetcher`] owns one background
//! thread that drains a window of upcoming partition ids and issues
//! `madvise(MADV_WILLNEED)` on their segments through
//! [`PrefetchTarget`], so the kernel reads the next
//! partitions in while jobs are still streaming the current one. Because
//! segments are read with plain sequential `mmap` views, the streaming
//! access itself stays purely sequential (the LiveGraph argument); only
//! the *hint* runs ahead.
//!
//! The window is **replaced**, not appended, on every request: the
//! runtime announces a sliding window per partition advance, and stale
//! entries from an overtaken window are worthless.
//!
//! Wire it to a runtime with [`Prefetcher::hook`]:
//!
//! ```
//! use graphm_store::{Convert, DiskGridSource, Prefetcher, PrefetchTarget};
//! use std::sync::Arc;
//!
//! let g = graphm_graph::generators::rmat(
//!     300, 2000, graphm_graph::generators::RmatParams::GRAPH500, 3);
//! let dir = std::env::temp_dir().join(format!("graphm-prefetch-doc-{}", std::process::id()));
//! Convert::grid(2).write(&g, &dir).unwrap();
//! let source = DiskGridSource::open_shared(&dir).unwrap();
//!
//! let prefetcher = Prefetcher::spawn(Arc::clone(&source) as Arc<dyn PrefetchTarget>);
//! let rt = graphm_core::SharingRuntime::new(
//!     source.clone(), graphm_core::SchedulingPolicy::Prioritized, 2);
//! rt.set_prefetch(prefetcher.hook(), 4);
//! # drop(rt);
//! # drop(prefetcher);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::source::PrefetchTarget;
use graphm_core::PrefetchHook;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Shared {
    queue: Mutex<VecDeque<usize>>,
    cv: Condvar,
    stop: AtomicBool,
}

impl Shared {
    fn replace_window(&self, pids: &[usize]) {
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.clear();
        queue.extend(pids.iter().copied());
        drop(queue);
        self.cv.notify_all();
    }
}

/// A background readahead thread over one disk store. Dropping it stops
/// and joins the thread.
pub struct Prefetcher {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns the readahead thread over `target`.
    pub fn spawn(target: Arc<dyn PrefetchTarget>) -> Prefetcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("graphm-prefetch".to_string())
            .spawn(move || loop {
                let pid = {
                    let mut queue = thread_shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if thread_shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        match queue.pop_front() {
                            Some(pid) => break pid,
                            None => {
                                queue =
                                    thread_shared.cv.wait(queue).unwrap_or_else(|e| e.into_inner())
                            }
                        }
                    }
                };
                target.advise(pid);
            })
            .expect("spawn prefetch thread");
        Prefetcher { shared, handle: Some(handle) }
    }

    /// Replaces the pending window with `pids` (soonest first).
    pub fn request(&self, pids: &[usize]) {
        self.shared.replace_window(pids);
    }

    /// A hook suitable for `SharingRuntime::set_prefetch`: each call
    /// replaces the pending window. The hook only enqueues — it never
    /// touches the store on the caller's thread.
    pub fn hook(&self) -> PrefetchHook {
        let shared = Arc::clone(&self.shared);
        Arc::new(move |pids: &[usize]| shared.replace_window(pids))
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Convert, DiskGridSource};
    use graphm_core::PartitionSource;
    use std::time::{Duration, Instant};

    fn store_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-prefetch-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn advises_requested_partitions_and_counts_hits() {
        let g = graphm_graph::generators::rmat(
            200,
            1600,
            graphm_graph::generators::RmatParams::GRAPH500,
            7,
        );
        let dir = store_dir("hits");
        Convert::grid(2).write(&g, &dir).unwrap();
        let source = DiskGridSource::open(&dir).map(Arc::new).unwrap();
        let n = source.num_partitions();

        let prefetcher = Prefetcher::spawn(Arc::clone(&source) as Arc<dyn PrefetchTarget>);
        let pids: Vec<usize> = (0..n).collect();
        prefetcher.request(&pids);
        let deadline = Instant::now() + Duration::from_secs(10);
        while source.prefetch_stats().issued < n as u64 {
            assert!(Instant::now() < deadline, "prefetch thread stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Every subsequent load finds its partition advised.
        for pid in 0..n {
            let _ = source.load(pid);
        }
        let stats = source.prefetch_stats();
        assert_eq!(stats.issued, n as u64);
        assert_eq!(stats.hits, n as u64);

        // Deduplication: advising an already-advised partition is free,
        // and the flag re-arms only after a load.
        prefetcher.request(&[0, 0, 0]);
        let deadline = Instant::now() + Duration::from_secs(10);
        while source.prefetch_stats().issued < n as u64 + 1 {
            assert!(Instant::now() < deadline, "re-advise did not land");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(source.prefetch_stats().issued, n as u64 + 1);

        drop(prefetcher); // joins cleanly
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_replacement_keeps_latest() {
        let g = graphm_graph::generators::rmat(
            100,
            900,
            graphm_graph::generators::RmatParams::GRAPH500,
            1,
        );
        let dir = store_dir("window");
        Convert::grid(2).write(&g, &dir).unwrap();
        let source = DiskGridSource::open(&dir).map(Arc::new).unwrap();
        let prefetcher = Prefetcher::spawn(Arc::clone(&source) as Arc<dyn PrefetchTarget>);
        // Hammer replacements; the thread must neither crash nor wedge.
        for round in 0..200usize {
            prefetcher.request(&[round % 4, (round + 1) % 4]);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while source.prefetch_stats().issued == 0 {
            assert!(Instant::now() < deadline, "no advise ever landed");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(prefetcher);
        std::fs::remove_dir_all(&dir).ok();
    }
}
