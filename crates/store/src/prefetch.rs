//! The partition readahead thread.
//!
//! The §4 scheduler computes the loading order before every sweep, so the
//! runtime always knows which partitions come next — information an
//! out-of-core system can spend on prefetch (GraphD hides disk latency
//! under compute exactly this way). A [`Prefetcher`] owns one background
//! thread that drains a window of upcoming partition ids and issues
//! `madvise(MADV_WILLNEED)` on their segments through
//! [`PrefetchTarget`], so the kernel reads the next
//! partitions in while jobs are still streaming the current one. Because
//! segments are read with plain sequential `mmap` views, the streaming
//! access itself stays purely sequential (the LiveGraph argument); only
//! the *hint* runs ahead.
//!
//! The window is **replaced**, not appended, on every request: the
//! runtime announces a sliding window per partition advance, and stale
//! entries from an overtaken window are worthless. The runtime announces
//! its *maximum* lookahead; the prefetcher keeps only the target's
//! current [`AdaptiveWindow`] prefix of it, so the effective depth is
//! feedback-controlled (grow on misses, shrink on saturated hits or
//! memory-budget pressure) instead of a fixed knob.
//!
//! Wire it to a runtime with [`Prefetcher::hook`]:
//!
//! ```
//! use graphm_store::{Convert, DiskGridSource, Prefetcher, PrefetchTarget};
//! use std::sync::Arc;
//!
//! let g = graphm_graph::generators::rmat(
//!     300, 2000, graphm_graph::generators::RmatParams::GRAPH500, 3);
//! let dir = std::env::temp_dir().join(format!("graphm-prefetch-doc-{}", std::process::id()));
//! Convert::grid(2).write(&g, &dir).unwrap();
//! let source = DiskGridSource::open_shared(&dir).unwrap();
//!
//! let prefetcher = Prefetcher::spawn(Arc::clone(&source) as Arc<dyn PrefetchTarget>);
//! let rt = graphm_core::SharingRuntime::new(
//!     source.clone(), graphm_core::SchedulingPolicy::Prioritized, 2);
//! rt.set_prefetch(prefetcher.hook(), 4);
//! # drop(rt);
//! # drop(prefetcher);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::source::PrefetchTarget;
use graphm_core::PrefetchHook;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Lower bound of the adaptive prefetch window: one partition in flight
/// plus one being advised — shrinking below this would make the
/// readahead thread pointless.
pub const MIN_PREFETCH_WINDOW: usize = 2;

/// Default upper bound of the adaptive window (and the depth the
/// wall-clock runtime announces).
pub const DEFAULT_MAX_PREFETCH_LOOKAHEAD: usize = 16;

/// Consecutive prefetch hits before the window shrinks by one step —
/// saturated hits mean the window is at least deep enough, so spending
/// less readahead (and less page-cache residency) is free.
pub const HIT_SATURATION: usize = 8;

/// Feedback controller for the prefetch depth, replacing the fixed
/// `prefetch_lookahead` knob: **grow on misses** (the consumer reached a
/// partition before its hint — the window was too shallow), **shrink when
/// hits saturate** ([`HIT_SATURATION`] consecutive pre-advised loads) or
/// when paged-in bytes approach the memory budget (`on_pressure`). The
/// window always stays within `[MIN_PREFETCH_WINDOW, max]`.
///
/// The transition function is monotone in the miss rate: flipping any
/// hit of an observation trace to a miss can only leave the resulting
/// window equal or larger (pinned by a property test). State is one
/// packed atomic, so observers on the load path never contend on a lock.
pub struct AdaptiveWindow {
    max: AtomicU64,
    /// Low 32 bits: current window; high 32 bits: consecutive-hit run.
    state: AtomicU64,
}

impl AdaptiveWindow {
    /// A controller bounded by `max` (clamped to at least
    /// [`MIN_PREFETCH_WINDOW`]), starting shallow at the minimum — cold
    /// misses grow it within one sweep.
    pub fn new(max: usize) -> AdaptiveWindow {
        let max = max.max(MIN_PREFETCH_WINDOW);
        AdaptiveWindow {
            max: AtomicU64::new(max as u64),
            state: AtomicU64::new(MIN_PREFETCH_WINDOW as u64),
        }
    }

    /// The configured upper bound.
    pub fn max(&self) -> usize {
        self.max.load(Ordering::Relaxed) as usize
    }

    /// Reconfigures the upper bound (clamped to at least
    /// [`MIN_PREFETCH_WINDOW`]); a current window above the new bound is
    /// clamped down on the next update.
    pub fn set_max(&self, max: usize) {
        self.max.store(max.max(MIN_PREFETCH_WINDOW) as u64, Ordering::Relaxed);
        // Clamp the live window immediately so `current()` never exceeds
        // the configured bound.
        self.update(|win, run| (win.min(self.max()), run));
    }

    /// Current window depth.
    pub fn current(&self) -> usize {
        (self.state.load(Ordering::Relaxed) & 0xffff_ffff) as usize
    }

    fn update(&self, f: impl Fn(usize, usize) -> (usize, usize)) {
        let mut cur = self.state.load(Ordering::Relaxed);
        loop {
            let (win, run) = ((cur & 0xffff_ffff) as usize, (cur >> 32) as usize);
            let (nwin, nrun) = f(win, run);
            let next = ((nrun as u64) << 32) | nwin as u64;
            match self.state.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// A load missed its hint: grow one step, reset the hit run.
    pub fn on_miss(&self) {
        self.update(|win, _| ((win + 1).min(self.max()), 0));
    }

    /// A load found its partition pre-advised: after
    /// [`HIT_SATURATION`] consecutive hits, shrink one step.
    pub fn on_hit(&self) {
        self.update(|win, run| {
            if run + 1 >= HIT_SATURATION {
                (win.saturating_sub(1).max(MIN_PREFETCH_WINDOW), 0)
            } else {
                (win, run + 1)
            }
        });
    }

    /// Paged-in bytes are approaching the memory budget: shrink one step
    /// so readahead stops feeding the pressure it would then evict.
    pub fn on_pressure(&self) {
        self.update(|win, _| (win.saturating_sub(1).max(MIN_PREFETCH_WINDOW), 0));
    }
}

struct Shared {
    queue: Mutex<VecDeque<usize>>,
    cv: Condvar,
    stop: AtomicBool,
    /// Consulted at every window replacement for the target's current
    /// adaptive depth (non-adaptive targets report `usize::MAX`).
    target: Arc<dyn PrefetchTarget>,
}

impl Shared {
    fn replace_window(&self, pids: &[usize]) {
        let limit = self.target.prefetch_window().max(1);
        let mut queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.clear();
        queue.extend(pids.iter().copied().take(limit));
        drop(queue);
        self.cv.notify_all();
    }
}

/// A background readahead thread over one disk store. Dropping it stops
/// and joins the thread.
pub struct Prefetcher {
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawns the readahead thread over `target`.
    pub fn spawn(target: Arc<dyn PrefetchTarget>) -> Prefetcher {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            target: Arc::clone(&target),
        });
        let thread_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("graphm-prefetch".to_string())
            .spawn(move || loop {
                let pid = {
                    let mut queue = thread_shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if thread_shared.stop.load(Ordering::Acquire) {
                            return;
                        }
                        match queue.pop_front() {
                            Some(pid) => break pid,
                            None => {
                                queue =
                                    thread_shared.cv.wait(queue).unwrap_or_else(|e| e.into_inner())
                            }
                        }
                    }
                };
                target.advise(pid);
            })
            .expect("spawn prefetch thread");
        Prefetcher { shared, handle: Some(handle) }
    }

    /// Replaces the pending window with `pids` (soonest first).
    pub fn request(&self, pids: &[usize]) {
        self.shared.replace_window(pids);
    }

    /// A hook suitable for `SharingRuntime::set_prefetch`: each call
    /// replaces the pending window. The hook only enqueues — it never
    /// touches the store on the caller's thread.
    pub fn hook(&self) -> PrefetchHook {
        let shared = Arc::clone(&self.shared);
        Arc::new(move |pids: &[usize]| shared.replace_window(pids))
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod window_properties {
    use super::*;
    use proptest::prelude::*;

    /// Replays a trace (`true` = miss, `false` = hit) into a fresh
    /// controller and returns the final window.
    fn replay(max: usize, trace: &[bool]) -> usize {
        let w = AdaptiveWindow::new(max);
        for &miss in trace {
            if miss {
                w.on_miss();
            } else {
                w.on_hit();
            }
        }
        w.current()
    }

    proptest! {
        /// Satellite property: the adaptive window stays within
        /// `[MIN_PREFETCH_WINDOW, max]` for every trace, and is monotone
        /// in the miss rate — flipping any subset of hits to misses never
        /// shrinks the resulting window.
        #[test]
        fn window_bounded_and_monotone_in_miss_rate(
            max in 2usize..40,
            trace in proptest::collection::vec(any::<bool>(), 0..200),
            flips in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let base = replay(max, &trace);
            prop_assert!(base >= MIN_PREFETCH_WINDOW);
            prop_assert!(base <= max.max(MIN_PREFETCH_WINDOW));
            // Pointwise-dominating trace: every miss stays a miss, some
            // hits become misses.
            let dominated: Vec<bool> = trace
                .iter()
                .enumerate()
                .map(|(i, &m)| m || flips.get(i).copied().unwrap_or(false))
                .collect();
            let dominated_window = replay(max, &dominated);
            prop_assert!(
                dominated_window >= base,
                "more misses must not shrink the window: {dominated_window} < {base}"
            );
        }

        /// Pressure only ever shrinks, and never below the floor.
        #[test]
        fn pressure_shrinks_to_floor(
            max in 2usize..40,
            misses in 0usize..80,
            pressures in 0usize..80,
        ) {
            let w = AdaptiveWindow::new(max);
            for _ in 0..misses {
                w.on_miss();
            }
            let grown = w.current();
            for _ in 0..pressures {
                w.on_pressure();
            }
            prop_assert!(w.current() <= grown);
            prop_assert!(w.current() >= MIN_PREFETCH_WINDOW);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Convert, DiskGridSource};
    use graphm_core::PartitionSource;
    use std::time::{Duration, Instant};

    fn store_dir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-prefetch-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    #[test]
    fn advises_requested_partitions_and_counts_hits() {
        let g = graphm_graph::generators::rmat(
            200,
            1600,
            graphm_graph::generators::RmatParams::GRAPH500,
            7,
        );
        let dir = store_dir("hits");
        Convert::grid(2).write(&g, &dir).unwrap();
        let source = DiskGridSource::open(&dir).map(Arc::new).unwrap();
        let n = source.num_partitions();

        // Fixed-depth behaviour: adaptivity off advises the whole window.
        source.set_adaptive_prefetch(false);
        let prefetcher = Prefetcher::spawn(Arc::clone(&source) as Arc<dyn PrefetchTarget>);
        let pids: Vec<usize> = (0..n).collect();
        prefetcher.request(&pids);
        let deadline = Instant::now() + Duration::from_secs(10);
        while source.prefetch_stats().issued < n as u64 {
            assert!(Instant::now() < deadline, "prefetch thread stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Every subsequent load finds its partition advised.
        for pid in 0..n {
            let _ = source.load(pid);
        }
        let stats = source.prefetch_stats();
        assert_eq!(stats.issued, n as u64);
        assert_eq!(stats.hits, n as u64);

        // Deduplication: advising an already-advised partition is free,
        // and the flag re-arms only after a load.
        prefetcher.request(&[0, 0, 0]);
        let deadline = Instant::now() + Duration::from_secs(10);
        while source.prefetch_stats().issued < n as u64 + 1 {
            assert!(Instant::now() < deadline, "re-advise did not land");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(source.prefetch_stats().issued, n as u64 + 1);

        drop(prefetcher); // joins cleanly
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn adaptive_window_truncates_announcements() {
        let g = graphm_graph::generators::rmat(
            220,
            1800,
            graphm_graph::generators::RmatParams::GRAPH500,
            9,
        );
        let dir = store_dir("adaptive");
        Convert::grid(3).write(&g, &dir).unwrap();
        let source = DiskGridSource::open(&dir).map(Arc::new).unwrap();
        let n = source.num_partitions();
        assert!(n > MIN_PREFETCH_WINDOW + 1);
        // Cold store, no loads yet: the adaptive window sits at its
        // minimum, so announcing everything advises only that prefix.
        assert_eq!(source.prefetch_window(), MIN_PREFETCH_WINDOW);
        let prefetcher = Prefetcher::spawn(Arc::clone(&source) as Arc<dyn PrefetchTarget>);
        let pids: Vec<usize> = (0..n).collect();
        prefetcher.request(&pids);
        let deadline = Instant::now() + Duration::from_secs(10);
        while source.prefetch_stats().issued < MIN_PREFETCH_WINDOW as u64 {
            assert!(Instant::now() < deadline, "prefetch thread stalled");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Settle, then confirm nothing past the window was advised.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(source.prefetch_stats().issued, MIN_PREFETCH_WINDOW as u64);
        // Misses (unadvised loads) grow the window.
        for pid in 0..n {
            let _ = source.load(pid);
        }
        assert!(source.prefetch_window() > MIN_PREFETCH_WINDOW);
        drop(prefetcher);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn window_replacement_keeps_latest() {
        let g = graphm_graph::generators::rmat(
            100,
            900,
            graphm_graph::generators::RmatParams::GRAPH500,
            1,
        );
        let dir = store_dir("window");
        Convert::grid(2).write(&g, &dir).unwrap();
        let source = DiskGridSource::open(&dir).map(Arc::new).unwrap();
        let prefetcher = Prefetcher::spawn(Arc::clone(&source) as Arc<dyn PrefetchTarget>);
        // Hammer replacements; the thread must neither crash nor wedge.
        for round in 0..200usize {
            prefetcher.request(&[round % 4, (round + 1) % 4]);
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while source.prefetch_stats().issued == 0 {
            assert!(Instant::now() < deadline, "no advise ever landed");
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(prefetcher);
        std::fs::remove_dir_all(&dir).ok();
    }
}
