//! The **writer lease**: exclusive, epoch-fenced write access to a store
//! directory.
//!
//! The delta store is single-writer by contract, but nothing used to
//! *enforce* it — two `DeltaWriter`s on one directory would silently
//! interleave generations. The lease makes the contract mechanical:
//!
//! * **Exclusion** — an `EPOCH` file created with `O_EXCL`. While the
//!   holder's heartbeat is fresh, a second acquire fails with the typed
//!   [`GraphError::LeaseHeld`].
//! * **Liveness** — the holder re-stamps a heartbeat timestamp into the
//!   file (a publish heartbeats implicitly). A holder that crashes stops
//!   heartbeating; once the heartbeat is older than the TTL, a new writer
//!   may *take over* by bumping the epoch.
//! * **Fencing** — every `CURRENT` flip calls [`WriterLease::validate`]
//!   first. A holder whose epoch has been superseded gets
//!   [`GraphError::EpochFenced`] instead of corrupting the store; a
//!   holder whose file vanished gets [`GraphError::LeaseLost`].
//!
//! ## `EPOCH` file format (40 bytes, little-endian)
//!
//! ```text
//! magic "GMEPOCH1" | epoch u64 | pid u64 | heartbeat_unix_ms u64 | nonce u64
//! ```
//!
//! The nonce distinguishes two holders that happen to share an epoch
//! number (e.g. two racing takeovers): after writing the file, the
//! acquirer re-reads it and keeps the lease only if its own nonce came
//! back.

use graphm_graph::{GraphError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Magic bytes opening the `EPOCH` file.
pub const EPOCH_MAGIC: &[u8; 8] = b"GMEPOCH1";

/// Name of the lease file inside a store directory.
pub const EPOCH_FILE: &str = "EPOCH";

/// Total size of the lease file.
pub const EPOCH_FILE_BYTES: usize = 40;

/// Tuning for lease acquisition.
#[derive(Clone, Copy, Debug)]
pub struct LeaseConfig {
    /// How stale a holder's heartbeat must be before another writer may
    /// take over. `Duration::ZERO` means *always* take over (used by
    /// recovery paths that know the previous holder is dead).
    pub ttl: Duration,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig { ttl: Duration::from_secs(30) }
    }
}

impl LeaseConfig {
    /// A config that unconditionally fences the previous holder —
    /// for recovering a store whose writer is known dead.
    pub fn force_takeover() -> Self {
        LeaseConfig { ttl: Duration::ZERO }
    }
}

/// The decoded contents of an `EPOCH` file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EpochRecord {
    epoch: u64,
    pid: u64,
    heartbeat_ms: u64,
    nonce: u64,
}

impl EpochRecord {
    fn encode(&self) -> [u8; EPOCH_FILE_BYTES] {
        let mut buf = [0u8; EPOCH_FILE_BYTES];
        buf[..8].copy_from_slice(EPOCH_MAGIC);
        buf[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        buf[16..24].copy_from_slice(&self.pid.to_le_bytes());
        buf[24..32].copy_from_slice(&self.heartbeat_ms.to_le_bytes());
        buf[32..40].copy_from_slice(&self.nonce.to_le_bytes());
        buf
    }

    fn decode(path: &Path, bytes: &[u8]) -> Result<EpochRecord> {
        if bytes.len() != EPOCH_FILE_BYTES || &bytes[..8] != EPOCH_MAGIC {
            return Err(GraphError::Format(format!(
                "{}: bad EPOCH file ({} bytes)",
                path.display(),
                bytes.len()
            )));
        }
        Ok(EpochRecord {
            epoch: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            pid: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
            heartbeat_ms: u64::from_le_bytes(bytes[24..32].try_into().unwrap()),
            nonce: u64::from_le_bytes(bytes[32..40].try_into().unwrap()),
        })
    }
}

fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

/// A cheap process-local nonce: wall-clock entropy mixed with the pid and
/// a per-process counter through SplitMix64. Uniqueness only needs to
/// hold across the handful of writers that ever race for one store.
fn fresh_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut z = now_ms()
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(std::process::id() as u64)
        .wrapping_add(COUNTER.fetch_add(1, Ordering::Relaxed) << 32);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn write_epoch_file(dir: &Path, rec: &EpochRecord) -> Result<()> {
    // tmp + rename so a reader never sees a half-written lease.
    let tmp = dir.join("EPOCH.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&rec.encode())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(EPOCH_FILE))?;
    if let Ok(d) = File::open(dir) {
        d.sync_all().ok();
    }
    Ok(())
}

fn read_epoch_file(dir: &Path) -> Result<Option<EpochRecord>> {
    let path = dir.join(EPOCH_FILE);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
            Ok(Some(EpochRecord::decode(&path, &bytes)?))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// A held writer lease on one store directory. Dropping the lease
/// releases it (removes `EPOCH` if still ours); a crashed holder instead
/// leaves the file behind for TTL-based takeover.
#[derive(Debug)]
pub struct WriterLease {
    dir: PathBuf,
    epoch: u64,
    nonce: u64,
    released: bool,
}

impl WriterLease {
    /// Acquires the lease on `dir`.
    ///
    /// * No `EPOCH` file → creates it with `O_EXCL` at epoch 1.
    /// * File held with a fresh heartbeat → [`GraphError::LeaseHeld`].
    /// * File held but heartbeat older than `config.ttl` → *takeover*:
    ///   writes epoch + 1 with a new nonce, then re-reads to confirm this
    ///   acquirer won any takeover race.
    pub fn acquire(dir: &Path, config: LeaseConfig) -> Result<WriterLease> {
        let nonce = fresh_nonce();
        let rec = match read_epoch_file(dir)? {
            None => {
                let rec = EpochRecord {
                    epoch: 1,
                    pid: std::process::id() as u64,
                    heartbeat_ms: now_ms(),
                    nonce,
                };
                // O_EXCL: exactly one concurrent creator wins.
                match OpenOptions::new().write(true).create_new(true).open(dir.join(EPOCH_FILE)) {
                    Ok(mut f) => {
                        f.write_all(&rec.encode())?;
                        f.sync_all()?;
                        if let Ok(d) = File::open(dir) {
                            d.sync_all().ok();
                        }
                        rec
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                        return Err(GraphError::LeaseHeld {
                            holder: "another writer created the lease concurrently".to_string(),
                        });
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Some(prev) => {
                let age_ms = now_ms().saturating_sub(prev.heartbeat_ms);
                if Duration::from_millis(age_ms) < config.ttl {
                    return Err(GraphError::LeaseHeld {
                        holder: format!(
                            "epoch {} pid {} (heartbeat {age_ms} ms ago, ttl {} ms)",
                            prev.epoch,
                            prev.pid,
                            config.ttl.as_millis()
                        ),
                    });
                }
                // Stale: fence the old holder by bumping the epoch.
                let rec = EpochRecord {
                    epoch: prev.epoch + 1,
                    pid: std::process::id() as u64,
                    heartbeat_ms: now_ms(),
                    nonce,
                };
                write_epoch_file(dir, &rec)?;
                // Confirm we won any racing takeover: our nonce must have
                // survived the rename.
                match read_epoch_file(dir)? {
                    Some(cur) if cur.nonce == nonce => rec,
                    Some(cur) => {
                        return Err(GraphError::LeaseHeld {
                            holder: format!(
                                "lost takeover race to epoch {} pid {}",
                                cur.epoch, cur.pid
                            ),
                        });
                    }
                    None => {
                        return Err(GraphError::LeaseLost {
                            what: "EPOCH file vanished during takeover".to_string(),
                        });
                    }
                }
            }
        };
        Ok(WriterLease { dir: dir.to_path_buf(), epoch: rec.epoch, nonce, released: false })
    }

    /// The epoch this lease holds.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-stamps the heartbeat, proving liveness. Fails with the fencing
    /// errors if the lease changed hands.
    pub fn heartbeat(&self) -> Result<()> {
        self.validate()?;
        write_epoch_file(
            &self.dir,
            &EpochRecord {
                epoch: self.epoch,
                pid: std::process::id() as u64,
                heartbeat_ms: now_ms(),
                nonce: self.nonce,
            },
        )
    }

    /// Checks that this lease is still the store's current writer. Called
    /// before every `CURRENT` flip — the fence that turns a concurrent-
    /// writer race into a typed error instead of interleaved generations.
    pub fn validate(&self) -> Result<()> {
        match read_epoch_file(&self.dir)? {
            Some(cur) if cur.epoch == self.epoch && cur.nonce == self.nonce => Ok(()),
            Some(cur) if cur.epoch > self.epoch => {
                Err(GraphError::EpochFenced { held: self.epoch, current: cur.epoch })
            }
            Some(cur) => Err(GraphError::LeaseLost {
                what: format!(
                    "EPOCH file rewritten (epoch {} nonce {:#x}, ours {:#x})",
                    cur.epoch, cur.nonce, self.nonce
                ),
            }),
            None => Err(GraphError::LeaseLost { what: "EPOCH file removed".to_string() }),
        }
    }

    /// Leaks the lease *without* releasing it, simulating a holder that
    /// crashed: the `EPOCH` file stays on disk and blocks fresh acquires
    /// until the TTL expires (or a `force_takeover` recovery).
    pub fn abandon(mut self) {
        self.released = true;
    }
}

impl Drop for WriterLease {
    fn drop(&mut self) {
        if self.released {
            return;
        }
        // Release only if the file is still ours — never clobber a
        // successor's lease.
        if let Ok(Some(cur)) = read_epoch_file(&self.dir) {
            if cur.epoch == self.epoch && cur.nonce == self.nonce {
                std::fs::remove_file(self.dir.join(EPOCH_FILE)).ok();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-lease-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn second_acquire_fails_while_held() {
        let dir = tmpdir("exclusive");
        let lease = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap();
        assert_eq!(lease.epoch(), 1);
        let err = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap_err();
        assert!(matches!(err, GraphError::LeaseHeld { .. }), "{err}");
        drop(lease);
        // Released: a fresh acquire starts over at epoch 1.
        let lease = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap();
        assert_eq!(lease.epoch(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lease_is_taken_over_with_bumped_epoch() {
        let dir = tmpdir("takeover");
        let lease = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap();
        lease.abandon(); // crash: EPOCH stays behind
        let err = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap_err();
        assert!(matches!(err, GraphError::LeaseHeld { .. }), "fresh heartbeat blocks: {err}");
        let lease2 = WriterLease::acquire(&dir, LeaseConfig::force_takeover()).unwrap();
        assert_eq!(lease2.epoch(), 2, "takeover fences by bumping the epoch");
        assert!(lease2.validate().is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fenced_holder_sees_typed_errors() {
        let dir = tmpdir("fenced");
        let old = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap();
        // A recovery takeover happens underneath the old holder.
        let new = WriterLease::acquire(&dir, LeaseConfig::force_takeover()).unwrap();
        let err = old.validate().unwrap_err();
        assert!(
            matches!(err, GraphError::EpochFenced { held: 1, current: 2 }),
            "old holder is fenced: {err}"
        );
        let err = old.heartbeat().unwrap_err();
        assert!(matches!(err, GraphError::EpochFenced { .. }), "{err}");
        assert!(new.validate().is_ok(), "new holder is unaffected");
        drop(old); // must NOT clobber the successor's lease
        assert!(new.validate().is_ok(), "fenced drop leaves the successor's file alone");
        drop(new);
        assert!(
            read_epoch_file(&dir).unwrap().is_none(),
            "the rightful holder's drop releases the lease"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lost_lease_is_detected() {
        let dir = tmpdir("lost");
        let lease = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap();
        std::fs::remove_file(dir.join(EPOCH_FILE)).unwrap();
        let err = lease.validate().unwrap_err();
        assert!(matches!(err, GraphError::LeaseLost { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn heartbeat_keeps_lease_fresh() {
        let dir = tmpdir("heartbeat");
        let lease = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap();
        lease.heartbeat().unwrap();
        assert!(lease.validate().is_ok());
        let rec = read_epoch_file(&dir).unwrap().unwrap();
        assert_eq!(rec.epoch, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_epoch_file_is_a_format_error() {
        let dir = tmpdir("corrupt");
        std::fs::write(dir.join(EPOCH_FILE), b"garbage").unwrap();
        let err = WriterLease::acquire(&dir, LeaseConfig::default()).unwrap_err();
        assert!(matches!(err, GraphError::Format(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
