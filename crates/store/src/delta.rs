//! The delta store's **single writer**: batching mutations, publishing
//! generations, compacting, and retiring old files.
//!
//! A [`DeltaWriter`] owns the mutation side of the
//! single-writer/multi-reader contract (`docs/ARCHITECTURE.md`): it
//! routes edge insertions/deletions to their partitions with the exact
//! arithmetic `Convert()` used (grid block by `(row(src), col(dst))`,
//! shard by destination interval), batches them in memory, and
//! [`publish`](DeltaWriter::publish)es the batch as one new generation —
//! per-partition append-only delta segments, a cumulative generation
//! manifest, then an atomic `CURRENT` flip. Readers
//! (`DiskGridSource::refresh_generation`) pick the new generation up
//! between sweeps; nothing a writer does ever modifies a file a reader
//! may hold mapped.
//!
//! When the accumulated delta payload trips the [`CompactionPolicy`], the
//! writer [`compact`](DeltaWriter::compact)s: folds base + chain into
//! fresh base segments (restoring `Convert()`'s source order, so the
//! folded base is bit-identical to a from-scratch conversion of the
//! mutated graph) and publishes a generation with empty chains.
//! [`retire_older_generations`](DeltaWriter::retire_older_generations)
//! then deletes files no longer referenced by the current generation —
//! safe on Unix even while readers hold them, because an open mapping
//! survives the unlink.
//!
//! ## Durability and exclusion
//!
//! Two mechanisms harden the writer beyond the happy path:
//!
//! * A **group-commit write-ahead log** ([`crate::wal`]). `publish` first
//!   appends the whole pending batch to `wal.log` with one fsync — the
//!   batch's durability point — then writes segments, the generation
//!   manifest, and the `CURRENT` flip, then checkpoints the log. A
//!   writer that crashes anywhere after the WAL sync recovers at the
//!   next [`DeltaWriter::open`]: committed-but-unpublished entries are
//!   replayed into a fresh publish of the same generation, byte-for-byte
//!   identical to the one the crash interrupted (routing is
//!   deterministic and the log preserves order).
//! * A **writer lease** ([`crate::lease`]). `open` acquires the store's
//!   `EPOCH` file; a second live writer fails with
//!   [`GraphError::LeaseHeld`], and every flip validates the lease
//!   first, so a fenced writer gets [`GraphError::EpochFenced`] /
//!   [`GraphError::LeaseLost`] instead of racing the `CURRENT` pointer.

use crate::lease::{LeaseConfig, WriterLease};
use crate::wal::{Wal, WalStats};
use graphm_graph::delta::{
    apply_delta, compacted_segment_file_name, delta_file_name, read_current_generation,
    read_delta_segment, write_current_generation, write_delta_segment, DeltaFileRef, DeltaRecord,
    GenManifest, GenPartition,
};
use graphm_graph::segment::{read_segment, write_segment, Manifest, StoreLayout};
use graphm_graph::{Edge, GraphError, Result, VertexId, VertexRanges, EDGE_BYTES};
use std::path::{Path, PathBuf};

/// When the writer folds its delta chains back into base segments.
/// Either trigger fires a compaction at the end of a publish; zero
/// disables that trigger. [`DeltaWriter::compact`] can always be called
/// explicitly.
#[derive(Clone, Copy, Debug)]
pub struct CompactionPolicy {
    /// Compact once total delta payload across the store exceeds this
    /// many bytes (0 = no byte trigger).
    pub max_delta_bytes: u64,
    /// Compact once total delta payload exceeds this fraction of the
    /// base payload (0.0 = no ratio trigger).
    pub max_delta_ratio: f64,
}

impl Default for CompactionPolicy {
    /// 64 MiB of deltas or half the base size, whichever trips first.
    fn default() -> CompactionPolicy {
        CompactionPolicy { max_delta_bytes: 64 << 20, max_delta_ratio: 0.5 }
    }
}

impl CompactionPolicy {
    /// A policy that never auto-compacts.
    pub fn never() -> CompactionPolicy {
        CompactionPolicy { max_delta_bytes: 0, max_delta_ratio: 0.0 }
    }
}

/// The mutation side of a disk store. See the module docs.
///
/// ```no_run
/// use graphm_store::DeltaWriter;
/// let mut writer = DeltaWriter::open(std::path::Path::new("/data/twitter.gm")).unwrap();
/// writer.insert(7, 9, 1.0).unwrap();
/// writer.delete(3, 4).unwrap();
/// let generation = writer.publish().unwrap();
/// assert!(generation >= 1);
/// ```
pub struct DeltaWriter {
    dir: PathBuf,
    manifest: Manifest,
    gen: GenManifest,
    ranges: VertexRanges,
    pending: Vec<Vec<DeltaRecord>>,
    pending_records: usize,
    policy: CompactionPolicy,
    lease: WriterLease,
    wal: Wal,
}

impl DeltaWriter {
    /// Opens the writer over a store directory with the default lease
    /// config, resuming from whatever generation `CURRENT` names. One
    /// writer per store at a time — enforced by the writer lease: a
    /// second open while a live writer's heartbeat is fresh fails with
    /// [`GraphError::LeaseHeld`].
    pub fn open(dir: &Path) -> Result<DeltaWriter> {
        DeltaWriter::open_with(dir, LeaseConfig::default())
    }

    /// [`open`](DeltaWriter::open) with an explicit [`LeaseConfig`] —
    /// recovery tooling passes [`LeaseConfig::force_takeover`] to fence a
    /// writer known to be dead without waiting out the TTL.
    ///
    /// After acquiring the lease this replays the write-ahead log:
    /// batches the crashed previous writer committed (WAL-synced) but
    /// never published are re-published here, so the open writer always
    /// starts from a store that honors every durable commit.
    pub fn open_with(dir: &Path, lease_config: LeaseConfig) -> Result<DeltaWriter> {
        let lease = WriterLease::acquire(dir, lease_config)?;
        let manifest = Manifest::read_from_dir(dir)?;
        let generation = read_current_generation(dir)?;
        let gen = if generation == 0 {
            synthesize_gen0(&manifest)
        } else {
            let gm = GenManifest::read_from_dir(dir, generation)?;
            if gm.layout != manifest.layout
                || gm.num_vertices != manifest.num_vertices
                || gm.partitions.len() != manifest.partitions.len()
            {
                return Err(GraphError::Format(format!(
                    "{}: generation {generation} does not match the base manifest",
                    dir.display()
                )));
            }
            gm
        };
        let (wal, replayed) = Wal::open(dir)?;
        let p = manifest.layout.p() as usize;
        let ranges = VertexRanges::new(manifest.num_vertices.max(1), p);
        let pending = vec![Vec::new(); manifest.partitions.len()];
        let mut writer = DeltaWriter {
            dir: dir.to_path_buf(),
            manifest,
            gen,
            ranges,
            pending,
            pending_records: 0,
            policy: CompactionPolicy::default(),
            lease,
            wal,
        };
        // Entries targeting a generation at or below CURRENT were already
        // published (crash landed between the flip and the WAL reset);
        // anything above is a durable commit the crash interrupted.
        let unpublished: Vec<_> =
            replayed.into_iter().filter(|b| b.target_gen > writer.gen.generation).collect();
        if !unpublished.is_empty() {
            writer.wal.note_replayed(unpublished.len() as u64);
            for batch in &unpublished {
                for r in &batch.records {
                    // Deterministic routing + preserved order reconstruct
                    // the exact per-partition batches of the interrupted
                    // publish, so the recovered generation is bit-identical.
                    let pid = writer.partition_of(r.src, r.dst);
                    writer.pending[pid].push(*r);
                    writer.pending_records += 1;
                }
            }
            writer.publish_internal(false)?;
        } else {
            // Nothing to replay: checkpoint so a stale committed-and-
            // published tail does not linger in the log.
            writer.wal.reset()?;
        }
        Ok(writer)
    }

    /// Replaces the auto-compaction policy (default: 64 MiB or 50% of the
    /// base, see [`CompactionPolicy`]).
    pub fn with_policy(mut self, policy: CompactionPolicy) -> DeltaWriter {
        self.policy = policy;
        self
    }

    /// The generation the store currently points at.
    pub fn generation(&self) -> u64 {
        self.gen.generation
    }

    /// The store directory this writer owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Vertex count of the store (fixed for its lifetime; mutations must
    /// stay within it).
    pub fn num_vertices(&self) -> VertexId {
        self.manifest.num_vertices
    }

    /// Mutations batched but not yet published.
    pub fn pending_mutations(&self) -> usize {
        self.pending_records
    }

    /// Published (on-disk) delta payload bytes of the current generation.
    pub fn delta_bytes(&self) -> u64 {
        self.gen.delta_bytes()
    }

    /// Base payload bytes of the current generation.
    pub fn base_bytes(&self) -> u64 {
        self.gen.partitions.iter().map(|p| p.base_num_edges * EDGE_BYTES as u64).sum()
    }

    /// Cumulative compactions folded into the base.
    pub fn compactions(&self) -> u64 {
        self.gen.compactions
    }

    /// The partition `Convert()` placed (and a delta must place) an edge
    /// in: grid block `(row(src), col(dst))`, or the shard of `dst`'s
    /// interval.
    pub fn partition_of(&self, src: VertexId, dst: VertexId) -> usize {
        match self.manifest.layout {
            StoreLayout::Grid { p } => {
                self.ranges.range_of(src) * p as usize + self.ranges.range_of(dst)
            }
            StoreLayout::Shards { .. } => self.ranges.range_of(dst),
        }
    }

    fn check_bounds(&self, src: VertexId, dst: VertexId) -> Result<()> {
        let nv = self.manifest.num_vertices;
        for v in [src, dst] {
            if v >= nv {
                return Err(GraphError::VertexOutOfRange { vertex: v, num_vertices: nv });
            }
        }
        Ok(())
    }

    /// Batches an edge insertion.
    pub fn insert(&mut self, src: VertexId, dst: VertexId, weight: f32) -> Result<()> {
        self.check_bounds(src, dst)?;
        let pid = self.partition_of(src, dst);
        self.pending[pid].push(DeltaRecord::insert(src, dst, weight));
        self.pending_records += 1;
        Ok(())
    }

    /// Batches a deletion tombstone: every `(src, dst)` edge — in the
    /// base or inserted by an earlier delta — leaves the merged view.
    pub fn delete(&mut self, src: VertexId, dst: VertexId) -> Result<()> {
        self.check_bounds(src, dst)?;
        let pid = self.partition_of(src, dst);
        self.pending[pid].push(DeltaRecord::delete(src, dst));
        self.pending_records += 1;
        Ok(())
    }

    /// Publishes the pending batch as a new generation. The sequence is
    /// WAL-first: heartbeat the lease, append the whole batch to the
    /// write-ahead log (one fsync — the durability point), write one
    /// delta segment per touched partition, the cumulative generation
    /// manifest, validate the lease, atomically flip `CURRENT`, then
    /// checkpoint the WAL. Returns the generation readers will rotate to
    /// (unchanged when nothing was pending). Runs a compaction afterwards
    /// if the [`CompactionPolicy`] trips.
    ///
    /// A crash after the WAL sync loses nothing: the next
    /// [`DeltaWriter::open`] replays the committed batch into the
    /// identical generation. A crash before it rolls the batch back
    /// entirely — the store still reads as the previous generation.
    pub fn publish(&mut self) -> Result<u64> {
        self.publish_internal(true)
    }

    /// The publish body. `wal_append == false` is the WAL-recovery path:
    /// the pending records came *out of* the log, so re-appending them
    /// would double them on a second crash.
    fn publish_internal(&mut self, wal_append: bool) -> Result<u64> {
        if self.pending_records == 0 {
            return Ok(self.gen.generation);
        }
        self.lease.heartbeat()?;
        let next = self.gen.generation + 1;
        if wal_append {
            // Partition-major flatten: replay re-routes records through
            // the same deterministic partition_of, so this order rebuilds
            // identical per-partition batches.
            let flat: Vec<DeltaRecord> =
                self.pending.iter().flat_map(|p| p.iter().copied()).collect();
            self.wal.append(next, &flat)?;
        }
        let mut partitions = self.gen.partitions.clone();
        for (pid, records) in self.pending.iter().enumerate() {
            if records.is_empty() {
                continue;
            }
            let file = delta_file_name(next, pid);
            write_delta_segment(records, &self.dir.join(&file))?;
            partitions[pid].deltas.push(DeltaFileRef { file, num_records: records.len() as u64 });
        }
        let gm = GenManifest {
            generation: next,
            compactions: self.gen.compactions,
            layout: self.manifest.layout,
            num_vertices: self.manifest.num_vertices,
            partitions,
        };
        gm.write_to_dir(&self.dir)?;
        // The fence: never flip CURRENT on a lease another writer took.
        self.lease.validate()?;
        write_current_generation(&self.dir, next)?;
        self.gen = gm;
        for p in &mut self.pending {
            p.clear();
        }
        self.pending_records = 0;
        // The flip is durable; the logged batch is superseded.
        self.wal.reset()?;
        if self.should_compact() {
            return self.compact();
        }
        Ok(next)
    }

    fn should_compact(&self) -> bool {
        let delta = self.gen.delta_bytes();
        if delta == 0 {
            return false;
        }
        if self.policy.max_delta_bytes > 0 && delta > self.policy.max_delta_bytes {
            return true;
        }
        let base = self.base_bytes();
        self.policy.max_delta_ratio > 0.0
            && base > 0
            && delta as f64 > self.policy.max_delta_ratio * base as f64
    }

    /// Folds every partition's delta chain into a fresh base segment
    /// (skipping partitions with empty chains, whose base files carry
    /// over) and publishes the result as a new generation with zero delta
    /// bytes. Merged content is unchanged — the fold applies the chain
    /// and restores `Convert()`'s stable source order, exactly what the
    /// readers' merged view does. No-op (returns the current generation)
    /// when there is nothing to fold.
    pub fn compact(&mut self) -> Result<u64> {
        if self.pending_records > 0 {
            // Fold everything the caller has asked for so far, not a
            // surprising subset.
            self.publish_pending_only()?;
        }
        if self.gen.delta_bytes() == 0 {
            return Ok(self.gen.generation);
        }
        let next = self.gen.generation + 1;
        let mut partitions = Vec::with_capacity(self.gen.partitions.len());
        for (pid, part) in self.gen.partitions.iter().enumerate() {
            if part.deltas.is_empty() {
                partitions.push(part.clone());
                continue;
            }
            let mut edges = read_segment(&self.dir.join(&part.base_file))?;
            for dref in &part.deltas {
                let records = read_delta_segment(&self.dir.join(&dref.file))?;
                apply_delta(&mut edges, &records);
            }
            edges.sort_by_key(|e: &Edge| e.src);
            let file = compacted_segment_file_name(next, pid);
            let path = self.dir.join(&file);
            write_segment(&edges, &path)?;
            // Same durability rule as publish(): the folded base must be
            // on disk before CURRENT durably references it.
            std::fs::File::open(&path)?.sync_all()?;
            partitions.push(GenPartition {
                base_file: file,
                base_num_edges: edges.len() as u64,
                deltas: Vec::new(),
            });
        }
        let gm = GenManifest {
            generation: next,
            compactions: self.gen.compactions + 1,
            layout: self.manifest.layout,
            num_vertices: self.manifest.num_vertices,
            partitions,
        };
        gm.write_to_dir(&self.dir)?;
        // Same fence as publish: a compaction flip must also lose to a
        // newer epoch rather than race it. (No WAL involvement — the fold
        // re-encodes already-durable data; a crashed compaction is simply
        // re-runnable.)
        self.lease.validate()?;
        write_current_generation(&self.dir, next)?;
        self.gen = gm;
        Ok(next)
    }

    /// Drops every batched-but-unpublished mutation (e.g. after one batch
    /// in a group failed to apply, so the group must not publish).
    pub fn discard_pending(&mut self) {
        for p in &mut self.pending {
            p.clear();
        }
        self.pending_records = 0;
    }

    /// Write-ahead log counters since open.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// The epoch this writer's lease holds.
    pub fn lease_epoch(&self) -> u64 {
        self.lease.epoch()
    }

    /// Simulates this writer crashing: consumes it *without* releasing
    /// the lease or checkpointing the WAL, exactly the on-disk state a
    /// killed process leaves behind. Crash/recovery tests pair this with
    /// [`DeltaWriter::open_with`] + [`LeaseConfig::force_takeover`].
    pub fn crash(self) {
        let DeltaWriter { lease, .. } = self;
        lease.abandon();
    }

    /// `publish` without the policy check (used by `compact` to flush
    /// pending mutations before folding, avoiding mutual recursion).
    fn publish_pending_only(&mut self) -> Result<u64> {
        let policy = std::mem::replace(&mut self.policy, CompactionPolicy::never());
        let result = self.publish();
        self.policy = policy;
        result
    }

    /// Deletes files no longer referenced by the current generation:
    /// older generation manifests, delta segments off the current chains,
    /// and compacted base segments superseded since. The original
    /// `Convert()` output (`manifest.bin` + `part-NNNNN.seg`) is always
    /// kept — it is the generation-0 base other tooling may expect.
    /// Returns the number of files removed.
    ///
    /// Safe while readers are live on Unix: a reader's `mmap` keeps the
    /// unlinked file's data reachable until the mapping drops. Readers
    /// *opening* mid-retire re-resolve `CURRENT`, which only references
    /// surviving files.
    pub fn retire_older_generations(&self) -> Result<usize> {
        let current = self.gen.generation;
        let mut referenced: std::collections::HashSet<String> = std::collections::HashSet::new();
        for part in &self.gen.partitions {
            referenced.insert(part.base_file.clone());
            for d in &part.deltas {
                referenced.insert(d.file.clone());
            }
        }
        let mut removed = 0usize;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = if let Some(gen) = parse_gen_manifest_name(name) {
                gen < current
            } else if name == "CURRENT.tmp" || name == "EPOCH.tmp" {
                // Orphans of a crash between temp-write and rename. Never
                // `wal.log` or `EPOCH` themselves — those are live
                // infrastructure, not generation data.
                true
            } else {
                let delta_seg = name.starts_with("delta-") && name.ends_with(".dseg");
                let compacted_base =
                    name.starts_with("part-") && name.contains("-g") && name.ends_with(".seg");
                (delta_seg || compacted_base) && !referenced.contains(name)
            };
            if stale {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

/// What generation 0 — the bare base store — looks like as a generation
/// manifest: the original segment files, empty chains.
fn synthesize_gen0(manifest: &Manifest) -> GenManifest {
    GenManifest {
        generation: 0,
        compactions: 0,
        layout: manifest.layout,
        num_vertices: manifest.num_vertices,
        partitions: manifest
            .partitions
            .iter()
            .map(|e| GenPartition {
                base_file: e.file.clone(),
                base_num_edges: e.num_edges,
                deltas: Vec::new(),
            })
            .collect(),
    }
}

/// Parses `gen-NNNNNN.mf` into its generation number.
fn parse_gen_manifest_name(name: &str) -> Option<u64> {
    // Keep in sync with `gen_manifest_file_name`; parse by shape, not
    // width, so retirement still recognizes generations past 999999.
    name.strip_prefix("gen-")?.strip_suffix(".mf")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::delta::gen_manifest_file_name;

    #[test]
    fn gen_manifest_names_parse_back() {
        assert_eq!(parse_gen_manifest_name(&gen_manifest_file_name(3)), Some(3));
        assert_eq!(parse_gen_manifest_name(&gen_manifest_file_name(1_234_567)), Some(1_234_567));
        assert_eq!(parse_gen_manifest_name("gen-x.mf"), None);
        assert_eq!(parse_gen_manifest_name("manifest.bin"), None);
    }
}
