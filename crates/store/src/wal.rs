//! The delta store's **write-ahead log**: group-commit durability in
//! front of delta-segment publication.
//!
//! A publish used to be durable only once every delta segment, the
//! generation manifest, and the `CURRENT` flip had individually synced —
//! a crash anywhere before the flip silently dropped the batch. The WAL
//! moves the durability point to **one** append + fsync at the front of
//! the publish: once [`Wal::append_group`] returns, the batch survives
//! any crash, because [`Wal::open`] replays committed-but-unpublished
//! entries into a fresh generation (see `DeltaWriter::open`).
//!
//! ## File format (`wal.log`)
//!
//! ```text
//! header   : magic "GMWAL001"                                  (8 bytes)
//! frame    : len u32 | crc32 u32 | payload                     (repeated)
//! payload  : seq u64 | target_gen u64 | count u32 | pad u32
//!            | count × DeltaRecord (16 bytes each)
//! ```
//!
//! All fields little-endian. `len` is the payload byte length; `crc32`
//! is IEEE CRC-32 over the payload. A frame is **committed** iff its
//! full `len` bytes are present and the checksum matches — replay stops
//! at the first frame that isn't (torn tail from a crashed append, or a
//! corrupted record) and truncates the file back to the last committed
//! frame, so the log never re-reports garbage. There is deliberately no
//! per-frame sync flag: group commit batches any number of frames ahead
//! of a single `fdatasync`.
//!
//! ## Checkpointing
//!
//! After a generation flip lands durably, the whole log is superseded
//! (the generation manifest + segments now carry the data), so
//! [`Wal::reset`] truncates it back to the header. Replay tolerates the
//! crash window between flip and reset by dropping entries whose
//! `target_gen` is already ≤ `CURRENT`.

use graphm_graph::delta::{DeltaRecord, DELTA_RECORD_BYTES};
use graphm_graph::{failpoint, GraphError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening the write-ahead log.
pub const WAL_MAGIC: &[u8; 8] = b"GMWAL001";

/// Name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// Fixed frame prefix: `len` (4) + `crc32` (4).
pub const WAL_FRAME_HEADER_BYTES: usize = 8;

/// Fixed payload prefix: `seq` (8) + `target_gen` (8) + `count` (4) +
/// `pad` (4).
pub const WAL_PAYLOAD_HEADER_BYTES: usize = 24;

/// One committed WAL entry: a mutation batch bound for `target_gen`.
#[derive(Clone, Debug, PartialEq)]
pub struct WalBatch {
    /// Monotone sequence number (order of append).
    pub seq: u64,
    /// The generation this batch was being published as when appended.
    pub target_gen: u64,
    /// The mutations, in application order.
    pub records: Vec<DeltaRecord>,
}

/// Cumulative WAL counters (since open).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Mutation records appended.
    pub records: u64,
    /// Batches (frames) appended.
    pub batches: u64,
    /// fsyncs issued — the group-commit win is `batches / syncs > 1`.
    pub syncs: u64,
    /// Frame bytes appended.
    pub bytes: u64,
    /// Batches replayed at open (committed by a crashed writer).
    pub replayed_batches: u64,
    /// Torn/corrupt tail bytes truncated at open.
    pub truncated_bytes: u64,
}

/// IEEE CRC-32, table-driven, dependency-free.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb88320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// Serializes one frame (header + payload) for `batch`.
fn encode_frame(seq: u64, target_gen: u64, records: &[DeltaRecord]) -> Vec<u8> {
    let payload_len = WAL_PAYLOAD_HEADER_BYTES + records.len() * DELTA_RECORD_BYTES;
    let mut frame = Vec::with_capacity(WAL_FRAME_HEADER_BYTES + payload_len);
    frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // crc placeholder
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(&target_gen.to_le_bytes());
    frame.extend_from_slice(&(records.len() as u32).to_le_bytes());
    frame.extend_from_slice(&[0u8; 4]); // pad
    for r in records {
        frame.extend_from_slice(&r.src.to_le_bytes());
        frame.extend_from_slice(&r.dst.to_le_bytes());
        frame.extend_from_slice(&r.weight.to_le_bytes());
        frame.extend_from_slice(&r.op.to_le_bytes());
    }
    let crc = crc32(&frame[WAL_FRAME_HEADER_BYTES..]);
    frame[4..8].copy_from_slice(&crc.to_le_bytes());
    frame
}

/// Decodes the committed prefix of a WAL byte image (everything after
/// the magic): returns the committed batches plus the byte length of the
/// valid prefix *including* the header. Never panics — any framing
/// violation (short header, truncated payload, checksum mismatch,
/// inconsistent count, unknown op) ends the committed prefix at the
/// frame's start.
pub fn replay_wal_bytes(bytes: &[u8]) -> (Vec<WalBatch>, usize) {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return (Vec::new(), 0);
    }
    let mut batches = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let frame_start = pos;
        if bytes.len() - pos < WAL_FRAME_HEADER_BYTES {
            return (batches, frame_start);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        pos += WAL_FRAME_HEADER_BYTES;
        if len < WAL_PAYLOAD_HEADER_BYTES
            || !(len - WAL_PAYLOAD_HEADER_BYTES).is_multiple_of(DELTA_RECORD_BYTES)
            || bytes.len() - pos < len
        {
            return (batches, frame_start);
        }
        let payload = &bytes[pos..pos + len];
        if crc32(payload) != crc {
            return (batches, frame_start);
        }
        let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
        let target_gen = u64::from_le_bytes(payload[8..16].try_into().unwrap());
        let count = u32::from_le_bytes(payload[16..20].try_into().unwrap()) as usize;
        if count != (len - WAL_PAYLOAD_HEADER_BYTES) / DELTA_RECORD_BYTES {
            return (batches, frame_start);
        }
        let mut records = Vec::with_capacity(count);
        let mut ok = true;
        for i in 0..count {
            let at = WAL_PAYLOAD_HEADER_BYTES + i * DELTA_RECORD_BYTES;
            let rec = DeltaRecord {
                src: u32::from_le_bytes(payload[at..at + 4].try_into().unwrap()),
                dst: u32::from_le_bytes(payload[at + 4..at + 8].try_into().unwrap()),
                weight: f32::from_le_bytes(payload[at + 8..at + 12].try_into().unwrap()),
                op: u32::from_le_bytes(payload[at + 12..at + 16].try_into().unwrap()),
            };
            if rec.op > graphm_graph::delta::DELTA_OP_DELETE {
                ok = false;
                break;
            }
            records.push(rec);
        }
        if !ok {
            return (batches, frame_start);
        }
        pos += len;
        batches.push(WalBatch { seq, target_gen, records });
    }
}

/// The open write-ahead log of one store directory. One per
/// `DeltaWriter`; the writer lease is what makes that exclusive.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    stats: WalStats,
}

impl Wal {
    /// Opens (or creates) `dir/wal.log`, replays its committed entries,
    /// and truncates any torn/corrupt tail so the next append lands on a
    /// clean frame boundary. Returns the log positioned at its end plus
    /// the committed batches in append order — the caller decides which
    /// are already published (by `target_gen` vs `CURRENT`) and replays
    /// the rest.
    pub fn open(dir: &Path) -> Result<(Wal, Vec<WalBatch>)> {
        let path = dir.join(WAL_FILE);
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut stats = WalStats::default();
        let (batches, valid_len) = if bytes.is_empty() {
            // Fresh log: write the header now so every later append is
            // pure frame bytes.
            file.write_all(WAL_MAGIC)?;
            file.sync_data()?;
            (Vec::new(), WAL_MAGIC.len())
        } else {
            let (batches, valid_len) = replay_wal_bytes(&bytes);
            if valid_len == 0 {
                return Err(GraphError::Format(format!(
                    "{}: bad write-ahead log magic",
                    path.display()
                )));
            }
            (batches, valid_len)
        };
        if valid_len < bytes.len() {
            stats.truncated_bytes = (bytes.len() - valid_len) as u64;
            file.set_len(valid_len as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len as u64))?;
        let next_seq = batches.last().map(|b| b.seq + 1).unwrap_or(0);
        Ok((Wal { file, path, next_seq, stats }, batches))
    }

    /// Appends a *commit group* — any number of batches — with a single
    /// fsync. This is the durability point of a publish: once this
    /// returns, every batch in the group survives a crash. Returns the
    /// sequence number of the first batch.
    pub fn append_group(&mut self, target_gen: u64, batches: &[&[DeltaRecord]]) -> Result<u64> {
        let first_seq = self.next_seq;
        let mut buf = Vec::new();
        for records in batches {
            buf.extend_from_slice(&encode_frame(self.next_seq, target_gen, records));
            self.next_seq += 1;
            self.stats.batches += 1;
            self.stats.records += records.len() as u64;
        }
        self.file.write_all(&buf)?;
        self.stats.bytes += buf.len() as u64;
        failpoint::hit("wal.frame.written")?;
        // The one fsync the whole group shares.
        self.file.sync_data()?;
        self.stats.syncs += 1;
        failpoint::hit("wal.synced")?;
        Ok(first_seq)
    }

    /// Appends one batch (a group of one).
    pub fn append(&mut self, target_gen: u64, records: &[DeltaRecord]) -> Result<u64> {
        self.append_group(target_gen, &[records])
    }

    /// Checkpoints the log: truncates back to the bare header. Call only
    /// after the generation consuming the logged batches has durably
    /// flipped `CURRENT` — a crash in between is safe because replay
    /// drops entries whose `target_gen` is already current.
    pub fn reset(&mut self) -> Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.seek(SeekFrom::Start(WAL_MAGIC.len() as u64))?;
        failpoint::hit("wal.reset.truncated")?;
        self.file.sync_data()?;
        failpoint::hit("wal.reset.synced")?;
        Ok(())
    }

    /// Counters since open (plus what open itself replayed/truncated).
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Records `n` batches as replayed at open (bookkeeping for stats;
    /// called by the recovering writer).
    pub fn note_replayed(&mut self, n: u64) {
        self.stats.replayed_batches += n;
    }

    /// The log file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-wal-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_replay_round_trip_and_reset() {
        let dir = tmpdir("roundtrip");
        let (mut wal, replayed) = Wal::open(&dir).unwrap();
        assert!(replayed.is_empty());
        let a = vec![DeltaRecord::insert(1, 2, 0.5), DeltaRecord::delete(3, 4)];
        let b = vec![DeltaRecord::insert(5, 6, -1.0)];
        assert_eq!(wal.append_group(7, &[&a, &b]).unwrap(), 0);
        assert_eq!(wal.append(8, &[]).unwrap(), 2, "empty batches frame fine");
        let stats = wal.stats();
        assert_eq!(stats.batches, 3);
        assert_eq!(stats.records, 3);
        assert_eq!(stats.syncs, 2, "the group shared one fsync");
        drop(wal);

        let (mut wal, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[0], WalBatch { seq: 0, target_gen: 7, records: a });
        assert_eq!(replayed[1], WalBatch { seq: 1, target_gen: 7, records: b });
        assert_eq!(replayed[2].records.len(), 0);
        assert_eq!(wal.append(9, &[DeltaRecord::insert(0, 1, 1.0)]).unwrap(), 3, "seq resumes");

        wal.reset().unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert!(replayed.is_empty(), "reset checkpoints the log");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_truncates_torn_tail() {
        let dir = tmpdir("torn");
        let (mut wal, _) = Wal::open(&dir).unwrap();
        wal.append(1, &[DeltaRecord::insert(1, 2, 1.0)]).unwrap();
        wal.append(2, &[DeltaRecord::insert(3, 4, 1.0), DeltaRecord::delete(1, 2)]).unwrap();
        drop(wal);
        let path = dir.join(WAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Tear the last frame mid-payload.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let (wal, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 1, "only the committed prefix survives");
        assert!(wal.stats().truncated_bytes > 0);
        drop(wal);
        // The truncation is persistent and the file is frame-aligned again.
        let (mut wal, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(wal.stats().truncated_bytes, 0);
        wal.append(2, &[DeltaRecord::insert(9, 9, 9.0)]).unwrap();
        drop(wal);
        let (_, replayed) = Wal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_bad_magic() {
        let dir = tmpdir("magic");
        std::fs::write(dir.join(WAL_FILE), b"NOTMAGIC").unwrap();
        assert!(matches!(Wal::open(&dir).unwrap_err(), GraphError::Format(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Builds a deterministic record from an opaque u64 (so property
    /// cases cover inserts, deletes, weights, and vertex ids).
    fn record_from_seed(x: u64) -> DeltaRecord {
        let src = (x >> 32) as u32 & 0xffff;
        let dst = (x >> 16) as u32 & 0xffff;
        if x & 1 == 0 {
            DeltaRecord::insert(src, dst, (x & 0xff) as f32 * 0.25)
        } else {
            DeltaRecord::delete(src, dst)
        }
    }

    proptest! {
        /// Arbitrary batch sequences round-trip bit-exactly through
        /// append_group + replay.
        #[test]
        fn prop_wal_round_trips(seeds in proptest::collection::vec(any::<u64>(), 0..40),
                                splits in 1usize..6) {
            let dir = tmpdir(&format!("prop-rt-{splits}-{}", seeds.len()));
            let records: Vec<DeltaRecord> = seeds.iter().map(|&s| record_from_seed(s)).collect();
            let chunks: Vec<&[DeltaRecord]> =
                records.chunks(splits).collect::<Vec<_>>();
            let (mut wal, _) = Wal::open(&dir).unwrap();
            if !chunks.is_empty() {
                wal.append_group(3, &chunks).unwrap();
            }
            drop(wal);
            let (_, replayed) = Wal::open(&dir).unwrap();
            let back: Vec<DeltaRecord> =
                replayed.iter().flat_map(|b| b.records.iter().copied()).collect();
            prop_assert_eq!(back.len(), records.len());
            for (a, b) in back.iter().zip(&records) {
                prop_assert_eq!((a.src, a.dst, a.op), (b.src, b.dst, b.op));
                prop_assert_eq!(a.weight.to_bits(), b.weight.to_bits());
            }
            for (i, b) in replayed.iter().enumerate() {
                prop_assert_eq!(b.seq, i as u64);
                prop_assert_eq!(b.target_gen, 3);
            }
            std::fs::remove_dir_all(&dir).ok();
        }

        /// Truncating the image at any byte yields a clean prefix replay:
        /// some leading whole batches, never a panic or partial batch.
        #[test]
        fn prop_wal_truncation_yields_clean_prefix(
            seeds in proptest::collection::vec(any::<u64>(), 1..30),
            cut_seed in any::<u64>(),
        ) {
            let dir = tmpdir(&format!("prop-cut-{}", seeds.len()));
            let batches: Vec<Vec<DeltaRecord>> =
                seeds.chunks(3).map(|c| c.iter().map(|&s| record_from_seed(s)).collect()).collect();
            let refs: Vec<&[DeltaRecord]> = batches.iter().map(|b| b.as_slice()).collect();
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append_group(1, &refs).unwrap();
            drop(wal);
            let full = std::fs::read(dir.join(WAL_FILE)).unwrap();
            let cut = (cut_seed % (full.len() as u64 + 1)) as usize;
            let (replayed, valid) = replay_wal_bytes(&full[..cut]);
            prop_assert!(valid <= cut);
            // Every replayed batch is a bit-exact whole input batch, in
            // order from the front.
            prop_assert!(replayed.len() <= batches.len());
            for (got, want) in replayed.iter().zip(&batches) {
                prop_assert_eq!(&got.records, want);
            }
            // And an uncut image replays everything.
            let (all, valid_all) = replay_wal_bytes(&full);
            prop_assert_eq!(all.len(), batches.len());
            prop_assert_eq!(valid_all, full.len());
            std::fs::remove_dir_all(&dir).ok();
        }

        /// Flipping any single byte never panics, and replay still yields
        /// a prefix of the original batches (the corrupted frame and
        /// everything after it drop out).
        #[test]
        fn prop_wal_corruption_yields_clean_prefix(
            seeds in proptest::collection::vec(any::<u64>(), 1..30),
            flip_seed in any::<u64>(),
        ) {
            let dir = tmpdir(&format!("prop-flip-{}", seeds.len()));
            let batches: Vec<Vec<DeltaRecord>> =
                seeds.chunks(4).map(|c| c.iter().map(|&s| record_from_seed(s)).collect()).collect();
            let refs: Vec<&[DeltaRecord]> = batches.iter().map(|b| b.as_slice()).collect();
            let (mut wal, _) = Wal::open(&dir).unwrap();
            wal.append_group(1, &refs).unwrap();
            drop(wal);
            let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
            let at = (flip_seed % bytes.len() as u64) as usize;
            bytes[at] ^= 0x40;
            let (replayed, valid) = replay_wal_bytes(&bytes);
            prop_assert!(valid <= bytes.len());
            prop_assert!(replayed.len() <= batches.len());
            for (got, want) in replayed.iter().zip(&batches) {
                // A batch that replays must be untouched (the flipped
                // byte, wherever it landed, is past the valid prefix) —
                // unless the flip missed every replayed frame, in which
                // case all batches replay bit-exactly anyway. Both cases
                // reduce to: replayed batches match the originals.
                prop_assert_eq!(&got.records, want);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
