//! Read-only memory mapping without external crates.
//!
//! The build environment cannot fetch `memmap2`, so on 64-bit Unix this
//! module binds `mmap`/`munmap` from the C library directly (always linked
//! on the glibc/musl targets this workspace builds for). The gate is
//! 64-bit-only because the hand-declared prototype types `offset` as
//! `i64`, which matches `off_t` only on LP64 targets; 32-bit unix would
//! need `mmap64` or `_FILE_OFFSET_BITS` awareness. Elsewhere — and for
//! empty files, which `mmap` rejects — it falls back to reading the file
//! into an owned buffer behind the same API.

use std::fs::File;
use std::io;

/// A read-only view of a whole file: mapped when the platform allows,
/// owned otherwise. Either way `as_slice` is the file's contents.
pub enum FileView {
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(MappedRegion),
    Owned(Vec<u8>),
}

impl FileView {
    /// Maps (or reads) `file` in its entirety.
    pub fn open(file: &File) -> io::Result<FileView> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(FileView::Owned(Vec::new()));
        }
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map on this platform",
            ));
        }
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            MappedRegion::map(file, len as usize).map(FileView::Mapped)
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len as usize);
            let mut f = file.try_clone()?;
            f.read_to_end(&mut buf)?;
            Ok(FileView::Owned(buf))
        }
    }

    /// The file's bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            FileView::Mapped(m) => m.as_slice(),
            FileView::Owned(v) => v,
        }
    }

    /// Whether this view is a real memory mapping (used by tests and the
    /// bench banner).
    pub fn is_mapped(&self) -> bool {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            FileView::Mapped(_) => true,
            FileView::Owned(_) => false,
        }
    }

    /// Asks the kernel to page the whole view in ahead of use
    /// (`madvise(MADV_WILLNEED)`). Returns whether a readahead hint was
    /// actually issued — owned views are already resident and report
    /// `false`.
    pub fn advise_willneed(&self) -> bool {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            FileView::Mapped(m) => m.advise_willneed(),
            FileView::Owned(_) => false,
        }
    }

    /// Releases the view's pages back to the kernel
    /// (`madvise(MADV_DONTNEED)`): the next access refaults them from the
    /// backing file. Sound here because every mapping this module creates
    /// is `PROT_READ` over an immutable store segment (single-writer /
    /// multi-reader contract) — there are never dirty private pages to
    /// lose. Returns whether pages were actually released — owned views
    /// cannot be evicted and report `false`.
    pub fn advise_dontneed(&self) -> bool {
        match self {
            #[cfg(all(unix, target_pointer_width = "64"))]
            FileView::Mapped(m) => m.advise_dontneed(),
            FileView::Owned(_) => false,
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
pub use unix::MappedRegion;

#[cfg(all(unix, target_pointer_width = "64"))]
mod unix {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;
    use std::ptr::NonNull;

    // Raw libc bindings: the C library is linked into every Rust binary on
    // the unix targets we support, so no crate is needed for these two
    // symbols. Constants match Linux and the BSDs (PROT_READ and
    // MAP_PRIVATE are 1 and 2 everywhere POSIX-ish); the i64 offset is
    // correct only for 64-bit off_t, hence the module's LP64-only gate.
    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;
    /// `MADV_WILLNEED` is 3 on Linux, macOS, and the BSDs alike.
    const MADV_WILLNEED: i32 = 3;
    /// `MADV_DONTNEED` is 4 on Linux, macOS, and the BSDs alike.
    const MADV_DONTNEED: i32 = 4;

    /// An owned read-only mapping of a whole file.
    pub struct MappedRegion {
        ptr: NonNull<u8>,
        len: usize,
    }

    // The region is immutable shared memory; the pointer never escapes
    // except through `as_slice`.
    unsafe impl Send for MappedRegion {}
    unsafe impl Sync for MappedRegion {}

    impl MappedRegion {
        pub(super) fn map(file: &File, len: usize) -> io::Result<MappedRegion> {
            debug_assert!(len > 0, "mmap rejects zero-length mappings");
            let ptr = unsafe {
                mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0)
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            match NonNull::new(ptr as *mut u8) {
                Some(ptr) => Ok(MappedRegion { ptr, len }),
                None => Err(io::Error::other("mmap returned null")),
            }
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: the mapping is PROT_READ, lives until Drop, and is
            // page-aligned; len is the mapped length.
            unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
        }

        /// Issues `madvise(MADV_WILLNEED)` over the whole mapping so the
        /// kernel starts reading it in before the first access. Returns
        /// whether the kernel accepted the hint.
        pub fn advise_willneed(&self) -> bool {
            // SAFETY: ptr/len are the exact values returned by mmap;
            // madvise only hints at access patterns, it never mutates the
            // mapping or invalidates outstanding slices.
            unsafe { madvise(self.ptr.as_ptr() as *mut c_void, self.len, MADV_WILLNEED) == 0 }
        }

        /// Issues `madvise(MADV_DONTNEED)` over the whole mapping,
        /// dropping its resident pages; subsequent accesses refault from
        /// the file. Returns whether the kernel accepted the call.
        pub fn advise_dontneed(&self) -> bool {
            // SAFETY: ptr/len are the exact values returned by mmap. For
            // a PROT_READ file-backed mapping DONTNEED cannot lose data —
            // there are no private dirty pages — it only forces refaults,
            // so outstanding `&[u8]` slices remain valid (reads after the
            // call transparently repopulate from the file).
            unsafe { madvise(self.ptr.as_ptr() as *mut c_void, self.len, MADV_DONTNEED) == 0 }
        }
    }

    impl Drop for MappedRegion {
        fn drop(&mut self) {
            // SAFETY: ptr/len are the exact values returned by mmap.
            unsafe {
                munmap(self.ptr.as_ptr() as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let mut path = std::env::temp_dir();
        path.push(format!("graphm-mmap-test-{}", std::process::id()));
        let payload = b"hello mapped world".repeat(1000);
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let view = FileView::open(&std::fs::File::open(&path).unwrap()).unwrap();
        assert_eq!(view.as_slice(), &payload[..]);
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            assert!(view.is_mapped());
            assert!(view.advise_willneed(), "madvise accepts a whole-mapping WILLNEED");
            assert!(view.advise_dontneed(), "madvise accepts a whole-mapping DONTNEED");
            // Released pages refault from the file: contents unchanged.
            assert_eq!(view.as_slice(), &payload[..]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_owned_empty() {
        let mut path = std::env::temp_dir();
        path.push(format!("graphm-mmap-empty-{}", std::process::id()));
        std::fs::File::create(&path).unwrap();
        let view = FileView::open(&std::fs::File::open(&path).unwrap()).unwrap();
        assert!(view.as_slice().is_empty());
        assert!(!view.is_mapped());
        assert!(!view.advise_willneed(), "owned views have nothing to read ahead");
        assert!(!view.advise_dontneed(), "owned views have nothing to release");
        std::fs::remove_file(&path).ok();
    }
}
