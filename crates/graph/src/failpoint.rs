//! Deterministic crash injection for the durable write path.
//!
//! Every fsync/rename boundary in the delta-publish path calls
//! [`hit`] with a stable point name. In normal operation the calls are
//! free (one thread-local read). A crash test drives them in two modes:
//!
//! 1. **Trace mode** ([`record`] / [`trace`]): a clean publish records the
//!    ordered list of boundaries it crossed, so the test harness can
//!    *enumerate* the crash matrix instead of hard-coding it — a new
//!    fsync added to the publish path automatically grows the matrix.
//! 2. **Armed mode** ([`arm`]): the k-th crossing of one named point
//!    returns an injected I/O error, which aborts the publish exactly as
//!    a crash would — everything before the boundary is on disk,
//!    everything after never happens. The test then reopens the store
//!    and asserts recovery.
//!
//! State is **thread-local**: a `DeltaWriter` performs its whole publish
//! on the calling thread, so parallel tests never see each other's armed
//! points.

use crate::types::{GraphError, Result};
use std::cell::RefCell;

/// What a thread has asked the failpoint layer to do.
#[derive(Default)]
struct FailState {
    /// Ordered crossings recorded since [`record`] (None = not tracing).
    trace: Option<Vec<String>>,
    /// `(point, remaining_skips)` — trip when a crossing of `point` finds
    /// `remaining_skips == 0`.
    armed: Option<(String, usize)>,
}

thread_local! {
    static STATE: RefCell<FailState> = RefCell::new(FailState::default());
}

/// Marker embedded in every injected error message, so tests can tell an
/// injected crash from a real I/O failure.
pub const INJECTED_MARKER: &str = "crash injected at failpoint";

/// Clears all failpoint state on this thread (tracing and armed points).
pub fn reset() {
    STATE.with(|s| *s.borrow_mut() = FailState::default());
}

/// Starts recording boundary crossings on this thread (clearing any
/// previous trace).
pub fn record() {
    STATE.with(|s| s.borrow_mut().trace = Some(Vec::new()));
}

/// The crossings recorded since [`record`], in order.
pub fn trace() -> Vec<String> {
    STATE.with(|s| s.borrow().trace.clone().unwrap_or_default())
}

/// Arms one point on this thread: the `(skip + 1)`-th crossing of `point`
/// fails with an injected I/O error. Re-arming replaces the previous
/// armed point.
pub fn arm(point: &str, skip: usize) {
    STATE.with(|s| s.borrow_mut().armed = Some((point.to_string(), skip)));
}

/// Disarms without touching the trace.
pub fn disarm() {
    STATE.with(|s| s.borrow_mut().armed = None);
}

/// Whether `err` is an injected crash (vs a real I/O failure).
pub fn is_injected(err: &GraphError) -> bool {
    matches!(err, GraphError::Io(e) if e.to_string().contains(INJECTED_MARKER))
}

/// Declares a boundary crossing. Returns the injected error when this
/// thread armed this point (consuming the armed state so recovery code
/// running after the "crash" is not re-tripped).
pub fn hit(point: &str) -> Result<()> {
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if let Some(trace) = st.trace.as_mut() {
            trace.push(point.to_string());
        }
        let tripped = match st.armed.as_mut() {
            Some((armed, skip)) if armed == point => {
                if *skip == 0 {
                    true
                } else {
                    *skip -= 1;
                    false
                }
            }
            _ => false,
        };
        if tripped {
            st.armed = None;
            return Err(GraphError::Io(std::io::Error::other(format!(
                "{INJECTED_MARKER} {point}"
            ))));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_trips_the_selected_occurrence_once() {
        reset();
        record();
        assert!(hit("a").is_ok());
        arm("b", 1);
        assert!(hit("b").is_ok(), "first crossing is skipped");
        let err = hit("b").unwrap_err();
        assert!(is_injected(&err), "second crossing trips: {err}");
        assert!(hit("b").is_ok(), "tripping disarms");
        assert_eq!(trace(), vec!["a", "b", "b", "b"]);
        reset();
        assert!(trace().is_empty());
    }

    #[test]
    fn real_io_errors_are_not_injected() {
        let real = GraphError::Io(std::io::Error::other("disk on fire"));
        assert!(!is_injected(&real));
        assert!(!is_injected(&GraphError::Format("x".into())));
    }
}
