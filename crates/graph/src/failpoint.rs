//! Deterministic crash injection for the durable write path.
//!
//! Every fsync/rename boundary in the delta-publish path calls
//! [`hit`] with a stable point name. In normal operation the calls are
//! free (one thread-local read). A crash test drives them in two modes:
//!
//! 1. **Trace mode** ([`record`] / [`trace`]): a clean publish records the
//!    ordered list of boundaries it crossed, so the test harness can
//!    *enumerate* the crash matrix instead of hard-coding it — a new
//!    fsync added to the publish path automatically grows the matrix.
//! 2. **Armed mode** ([`arm`]): the k-th crossing of one named point
//!    returns an injected I/O error, which aborts the publish exactly as
//!    a crash would — everything before the boundary is on disk,
//!    everything after never happens. The test then reopens the store
//!    and asserts recovery.
//!
//! State is **thread-local**: a `DeltaWriter` performs its whole publish
//! on the calling thread, so parallel tests never see each other's armed
//! points.
//!
//! The *read* path is different: a daemon's store loads happen on
//! runtime, job, and prefetch threads the test never owns. For those,
//! [`arm_global`] arms one point **process-wide**; any thread's next
//! matching crossing trips it (the armed state is consumed atomically, so
//! exactly one crossing fails per arming). Global arming also works from
//! another process's environment via `GRAPHM_FAILPOINT=point[@skip]`,
//! which daemons apply at startup.

use crate::types::{GraphError, Result};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What a thread has asked the failpoint layer to do.
#[derive(Default)]
struct FailState {
    /// Ordered crossings recorded since [`record`] (None = not tracing).
    trace: Option<Vec<String>>,
    /// `(point, remaining_skips)` — trip when a crossing of `point` finds
    /// `remaining_skips == 0`.
    armed: Option<(String, usize)>,
}

thread_local! {
    static STATE: RefCell<FailState> = RefCell::new(FailState::default());
}

/// Process-wide armed point, shared by every thread. `None` in normal
/// operation, so the fast path is one uncontended lock-free-ish check of
/// [`GLOBAL_HITS`] plus the mutex only when a trace or arming is live.
static GLOBAL_ARMED: Mutex<Option<(String, usize)>> = Mutex::new(None);
/// Crossings observed process-wide since the last [`reset_global`]
/// (every `hit` counts, armed or not — cheap liveness signal for tests).
static GLOBAL_HITS: AtomicU64 = AtomicU64::new(0);

/// Marker embedded in every injected error message, so tests can tell an
/// injected crash from a real I/O failure.
pub const INJECTED_MARKER: &str = "crash injected at failpoint";

/// Clears all failpoint state on this thread (tracing and armed points).
pub fn reset() {
    STATE.with(|s| *s.borrow_mut() = FailState::default());
}

/// Starts recording boundary crossings on this thread (clearing any
/// previous trace).
pub fn record() {
    STATE.with(|s| s.borrow_mut().trace = Some(Vec::new()));
}

/// The crossings recorded since [`record`], in order.
pub fn trace() -> Vec<String> {
    STATE.with(|s| s.borrow().trace.clone().unwrap_or_default())
}

/// Arms one point on this thread: the `(skip + 1)`-th crossing of `point`
/// fails with an injected I/O error. Re-arming replaces the previous
/// armed point.
pub fn arm(point: &str, skip: usize) {
    STATE.with(|s| s.borrow_mut().armed = Some((point.to_string(), skip)));
}

/// Disarms without touching the trace.
pub fn disarm() {
    STATE.with(|s| s.borrow_mut().armed = None);
}

/// Arms one point **process-wide**: the `(skip + 1)`-th crossing of
/// `point`, on *any* thread, fails with an injected I/O error. Exactly
/// one crossing trips per arming (the state is consumed under a lock).
pub fn arm_global(point: &str, skip: usize) {
    *GLOBAL_ARMED.lock().unwrap() = Some((point.to_string(), skip));
}

/// Disarms the process-wide point.
pub fn disarm_global() {
    *GLOBAL_ARMED.lock().unwrap() = None;
}

/// Whether a process-wide point is currently armed (not yet tripped).
pub fn global_armed() -> bool {
    GLOBAL_ARMED.lock().unwrap().is_some()
}

/// Crossings observed process-wide since the last [`reset_global`].
pub fn global_hits() -> u64 {
    GLOBAL_HITS.load(Ordering::Relaxed)
}

/// Clears the process-wide armed point and crossing counter.
pub fn reset_global() {
    disarm_global();
    GLOBAL_HITS.store(0, Ordering::Relaxed);
}

/// Applies a `GRAPHM_FAILPOINT=point[@skip]` style spec (used by daemons
/// so an external harness can arm the read path across a process
/// boundary). Returns the parsed `(point, skip)` on success.
pub fn arm_global_from_spec(spec: &str) -> Option<(String, usize)> {
    let (point, skip) = match spec.split_once('@') {
        Some((p, s)) => (p, s.parse::<usize>().ok()?),
        None => (spec, 0),
    };
    if point.is_empty() {
        return None;
    }
    arm_global(point, skip);
    Some((point.to_string(), skip))
}

/// Whether `err` is an injected crash (vs a real I/O failure).
pub fn is_injected(err: &GraphError) -> bool {
    matches!(err, GraphError::Io(e) if e.to_string().contains(INJECTED_MARKER))
}

/// Declares a boundary crossing. Returns the injected error when this
/// thread armed this point (consuming the armed state so recovery code
/// running after the "crash" is not re-tripped).
pub fn hit(point: &str) -> Result<()> {
    GLOBAL_HITS.fetch_add(1, Ordering::Relaxed);
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        if let Some(trace) = st.trace.as_mut() {
            trace.push(point.to_string());
        }
        let tripped = match st.armed.as_mut() {
            Some((armed, skip)) if armed == point => {
                if *skip == 0 {
                    true
                } else {
                    *skip -= 1;
                    false
                }
            }
            _ => false,
        };
        if tripped {
            st.armed = None;
            return Err(GraphError::Io(std::io::Error::other(format!(
                "{INJECTED_MARKER} {point}"
            ))));
        }
        Ok(())
    })?;
    // Process-wide arming: checked after the thread-local state so the
    // write-path crash matrix (thread-local by design) is unaffected.
    let mut global = GLOBAL_ARMED.lock().unwrap();
    let tripped = match global.as_mut() {
        Some((armed, skip)) if armed == point => {
            if *skip == 0 {
                true
            } else {
                *skip -= 1;
                false
            }
        }
        _ => false,
    };
    if tripped {
        *global = None;
        return Err(GraphError::Io(std::io::Error::other(format!("{INJECTED_MARKER} {point}"))));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_trips_the_selected_occurrence_once() {
        reset();
        record();
        assert!(hit("a").is_ok());
        arm("b", 1);
        assert!(hit("b").is_ok(), "first crossing is skipped");
        let err = hit("b").unwrap_err();
        assert!(is_injected(&err), "second crossing trips: {err}");
        assert!(hit("b").is_ok(), "tripping disarms");
        assert_eq!(trace(), vec!["a", "b", "b", "b"]);
        reset();
        assert!(trace().is_empty());
    }

    #[test]
    fn global_arming_trips_once_across_threads() {
        reset_global();
        arm_global("g:point", 1);
        assert!(hit("g:point").is_ok(), "skip crossing passes");
        let from_other_thread = std::thread::spawn(|| hit("g:point")).join().unwrap();
        assert!(is_injected(&from_other_thread.unwrap_err()), "any thread can trip");
        assert!(!global_armed(), "tripping disarms");
        assert!(hit("g:point").is_ok());
        assert!(global_hits() >= 3);
        reset_global();
        assert_eq!(global_hits(), 0);
    }

    #[test]
    fn spec_parsing_arms_point_and_skip() {
        reset_global();
        assert_eq!(arm_global_from_spec("read:load@2"), Some(("read:load".to_string(), 2)));
        assert!(global_armed());
        assert_eq!(arm_global_from_spec("read:load"), Some(("read:load".to_string(), 0)));
        assert_eq!(arm_global_from_spec(""), None);
        assert_eq!(arm_global_from_spec("x@notanumber"), None);
        reset_global();
    }

    #[test]
    fn real_io_errors_are_not_injected() {
        let real = GraphError::Io(std::io::Error::other("disk on fire"));
        assert!(!is_injected(&real));
        assert!(!is_injected(&GraphError::Format("x".into())));
    }
}
