//! The GridGraph 2-level grid format.
//!
//! GridGraph [Zhu et al., ATC '15] buckets edges into a `P × P` grid: edge
//! `(s, t)` lands in block `(row(s), col(t))` where rows/columns are equal
//! vertex ranges. Streaming the blocks column-major confines destination
//! writes to one vertex range at a time (write locality); the active-block
//! bitmap (`should_access_shard` in GridGraph's code) lets jobs skip blocks
//! whose source range has no active vertices.
//!
//! In the GraphM integration, one grid block = one GraphM *partition*; the
//! partition is then logically labelled into LLC-sized chunks by
//! `graphm-core` (Algorithm 1).

use crate::partition::VertexRanges;
use crate::types::{Edge, EdgeList, GraphError, Result, VertexId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// An in-memory grid-partitioned graph.
#[derive(Clone, Debug)]
pub struct Grid {
    ranges: VertexRanges,
    p: usize,
    /// `p * p` blocks, row-major: `blocks[row * p + col]`.
    blocks: Vec<Vec<Edge>>,
}

impl Grid {
    /// Converts an edge list into grid format (`Convert()` for GridGraph).
    ///
    /// Edges within a block are sorted by source vertex (stable), matching
    /// the radix layout GridGraph's preprocessing produces and keeping
    /// Algorithm-1 chunk tables compact.
    pub fn convert(graph: &EdgeList, p: usize) -> Grid {
        assert!(p >= 1, "grid requires p >= 1");
        let ranges = VertexRanges::new(graph.num_vertices.max(1), p);
        let mut blocks: Vec<Vec<Edge>> = vec![Vec::new(); p * p];
        for e in &graph.edges {
            let row = ranges.range_of(e.src);
            let col = ranges.range_of(e.dst);
            blocks[row * p + col].push(*e);
        }
        for b in &mut blocks {
            b.sort_by_key(|e| e.src);
        }
        Grid { ranges, p, blocks }
    }

    /// Grid dimension `P`.
    #[inline]
    pub fn p(&self) -> usize {
        self.p
    }

    /// The vertex ranges that define rows/columns.
    #[inline]
    pub fn ranges(&self) -> &VertexRanges {
        &self.ranges
    }

    /// Number of blocks (`P * P`), the partition count GraphM sees.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.p * self.p
    }

    /// Edges of block `(row, col)`.
    #[inline]
    pub fn block(&self, row: usize, col: usize) -> &[Edge] {
        &self.blocks[row * self.p + col]
    }

    /// Edges of block by flat index (row-major).
    #[inline]
    pub fn block_by_index(&self, idx: usize) -> &[Edge] {
        &self.blocks[idx]
    }

    /// Decomposes a flat block index into `(row, col)`.
    #[inline]
    pub fn block_coords(&self, idx: usize) -> (usize, usize) {
        (idx / self.p, idx % self.p)
    }

    /// The default streaming order of GridGraph: column-major (all blocks
    /// whose destinations fall in column 0, then column 1, ...), which is
    /// the "common order" GraphM regularizes jobs onto before the §4
    /// scheduler reorders it.
    pub fn streaming_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.num_blocks());
        for col in 0..self.p {
            for row in 0..self.p {
                order.push(row * self.p + col);
            }
        }
        order
    }

    /// Total number of edges across all blocks.
    pub fn num_edges(&self) -> usize {
        self.blocks.iter().map(Vec::len).sum()
    }

    /// Total structure bytes (`S_G`).
    pub fn size_bytes(&self) -> usize {
        self.num_edges() * crate::types::EDGE_BYTES
    }
}

const GRID_MAGIC: &[u8; 8] = b"GMGRID01";

/// Writes a grid to a single binary file: header, block offset table,
/// then edge records block-by-block in row-major block order.
pub fn write_grid(grid: &Grid, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(GRID_MAGIC)?;
    w.write_all(&grid.ranges.num_vertices().to_le_bytes())?;
    w.write_all(&(grid.p as u32).to_le_bytes())?;
    // Offset table: cumulative edge counts (u64) for p*p + 1 entries.
    let mut offsets = Vec::with_capacity(grid.num_blocks() + 1);
    let mut acc = 0u64;
    offsets.push(acc);
    for b in &grid.blocks {
        acc += b.len() as u64;
        offsets.push(acc);
    }
    for off in &offsets {
        w.write_all(&off.to_le_bytes())?;
    }
    for b in &grid.blocks {
        for e in b {
            w.write_all(&e.src.to_le_bytes())?;
            w.write_all(&e.dst.to_le_bytes())?;
            w.write_all(&e.weight.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// A grid stored on disk, readable block-at-a-time — the secondary-storage
/// side of the out-of-core engines.
pub struct GridFile {
    file: BufReader<File>,
    num_vertices: VertexId,
    p: usize,
    /// Cumulative edge counts per block (`p * p + 1` entries).
    offsets: Vec<u64>,
    /// Byte position where edge records begin.
    data_start: u64,
}

impl GridFile {
    /// Opens a grid file written by [`write_grid`].
    pub fn open(path: &Path) -> Result<GridFile> {
        let file = File::open(path)?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != GRID_MAGIC {
            return Err(GraphError::Format(format!("bad grid magic in {}", path.display())));
        }
        let mut b4 = [0u8; 4];
        r.read_exact(&mut b4)?;
        let num_vertices = VertexId::from_le_bytes(b4);
        r.read_exact(&mut b4)?;
        let p = u32::from_le_bytes(b4) as usize;
        if p == 0 {
            return Err(GraphError::Format("grid p must be >= 1".into()));
        }
        let mut offsets = Vec::with_capacity(p * p + 1);
        let mut b8 = [0u8; 8];
        for _ in 0..(p * p + 1) {
            r.read_exact(&mut b8)?;
            offsets.push(u64::from_le_bytes(b8));
        }
        let data_start = (8 + 4 + 4 + 8 * (p * p + 1)) as u64;
        Ok(GridFile { file: r, num_vertices, p, offsets, data_start })
    }

    /// Vertex count recorded in the header.
    pub fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    /// Grid dimension `P`.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of edges in block `idx`.
    pub fn block_len(&self, idx: usize) -> usize {
        (self.offsets[idx + 1] - self.offsets[idx]) as usize
    }

    /// Bytes of block `idx` on disk (what loading it costs in I/O).
    pub fn block_bytes(&self, idx: usize) -> usize {
        self.block_len(idx) * crate::types::EDGE_BYTES
    }

    /// Reads block `idx` from disk.
    pub fn read_block(&mut self, idx: usize) -> Result<Vec<Edge>> {
        let count = self.block_len(idx);
        let pos = self.data_start + self.offsets[idx] * crate::types::EDGE_BYTES as u64;
        self.file.seek(SeekFrom::Start(pos))?;
        let mut rec = [0u8; 12];
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            self.file.read_exact(&mut rec)?;
            edges.push(Edge {
                src: VertexId::from_le_bytes(rec[0..4].try_into().unwrap()),
                dst: VertexId::from_le_bytes(rec[4..8].try_into().unwrap()),
                weight: f32::from_le_bytes(rec[8..12].try_into().unwrap()),
            });
        }
        Ok(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn convert_places_edges_correctly() {
        let g = generators::rmat(100, 1000, generators::RmatParams::GRAPH500, 11);
        let grid = Grid::convert(&g, 4);
        assert_eq!(grid.num_edges(), 1000);
        for idx in 0..grid.num_blocks() {
            let (row, col) = grid.block_coords(idx);
            let (rlo, rhi) = grid.ranges().bounds(row);
            let (clo, chi) = grid.ranges().bounds(col);
            for e in grid.block_by_index(idx) {
                assert!(e.src >= rlo && e.src < rhi);
                assert!(e.dst >= clo && e.dst < chi);
            }
            // Sorted by source within a block.
            let b = grid.block_by_index(idx);
            assert!(b.windows(2).all(|w| w[0].src <= w[1].src));
        }
    }

    #[test]
    fn streaming_order_is_column_major() {
        let g = generators::ring(16);
        let grid = Grid::convert(&g, 2);
        assert_eq!(grid.streaming_order(), vec![0, 2, 1, 3]);
    }

    #[test]
    fn grid_file_round_trip() {
        let g = generators::rmat(200, 3000, generators::RmatParams::SOCIAL, 12);
        let grid = Grid::convert(&g, 3);
        let mut path = std::env::temp_dir();
        path.push(format!("graphm-grid-test-{}.bin", std::process::id()));
        write_grid(&grid, &path).unwrap();
        let mut gf = GridFile::open(&path).unwrap();
        assert_eq!(gf.num_vertices(), 200);
        assert_eq!(gf.p(), 3);
        for idx in 0..grid.num_blocks() {
            let from_disk = gf.read_block(idx).unwrap();
            let in_mem = grid.block_by_index(idx);
            assert_eq!(from_disk.len(), in_mem.len(), "block {idx}");
            for (a, b) in from_disk.iter().zip(in_mem) {
                assert_eq!((a.src, a.dst), (b.src, b.dst));
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_block_grid() {
        let g = generators::path(10);
        let grid = Grid::convert(&g, 1);
        assert_eq!(grid.num_blocks(), 1);
        assert_eq!(grid.block(0, 0).len(), 9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    proptest! {
        /// Grid conversion preserves the edge multiset and block placement
        /// respects the ranges.
        #[test]
        fn grid_partitions_edges(n in 1u32..400, m in 0usize..3000, p in 1usize..9, seed in 0u64..500) {
            let g = generators::erdos_renyi(n, m, seed);
            let grid = Grid::convert(&g, p);
            prop_assert_eq!(grid.num_edges(), m);
            let mut orig: Vec<(u32, u32)> = g.edges.iter().map(|e| (e.src, e.dst)).collect();
            let mut got: Vec<(u32, u32)> = (0..grid.num_blocks())
                .flat_map(|i| grid.block_by_index(i).iter().map(|e| (e.src, e.dst)))
                .collect();
            orig.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(orig, got);
        }
    }
}
