//! The on-disk partition-store format: segment files + manifest.
//!
//! This is the output of the store's `Convert()` preprocessing (Figure 5's
//! "converted graph data" box made real): each engine partition — a grid
//! block or a shard — becomes one *segment file* of raw 12-byte edge
//! records behind a small aligned header, and a *manifest* records, per
//! partition, its file, byte count, source-vertex bounds, and charged load
//! bytes, plus the engine's streaming order.
//!
//! Layout invariants the mmap reader relies on:
//!
//! * segment headers are [`SEGMENT_HEADER_BYTES`] (16) bytes, so the record
//!   array starts 4-byte aligned in a page-aligned mapping and can be
//!   reinterpreted as `&[Edge]` in place on little-endian hosts;
//! * all multi-byte fields are little-endian;
//! * every length is validated against the actual file length before any
//!   allocation, so a corrupt header yields a typed
//!   [`GraphError::Truncated`] instead of an abort or a bare I/O error.

use crate::types::{Edge, GraphError, Result, VertexId, EDGE_BYTES};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"GMSEG001";

/// Magic bytes opening the manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"GMMAN001";

/// Fixed segment header size: magic (8) + `num_edges` (8). Keeps the record
/// array 4-byte aligned within the file.
pub const SEGMENT_HEADER_BYTES: usize = 16;

/// File name of the manifest inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.bin";

/// How the partitions of a store were produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreLayout {
    /// GridGraph's `P × P` grid; partitions are blocks in row-major index
    /// order and the manifest order is the column-major streaming order.
    Grid { p: u32 },
    /// GraphChi's source-sorted destination shards; one partition per
    /// interval, in interval order.
    Shards { p: u32 },
}

impl StoreLayout {
    /// Stable numeric tag identifying the layout *kind* (grid vs shards),
    /// independent of `p`. Also the on-disk encoding.
    pub fn tag(self) -> u32 {
        match self {
            StoreLayout::Grid { .. } => 0,
            StoreLayout::Shards { .. } => 1,
        }
    }

    /// Partition parameter: grid dimension `P` or shard count.
    pub fn p(self) -> u32 {
        match self {
            StoreLayout::Grid { p } | StoreLayout::Shards { p } => p,
        }
    }
}

/// One partition's entry in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Segment file name, relative to the store directory.
    pub file: String,
    /// Number of edge records in the segment.
    pub num_edges: u64,
    /// Edge payload bytes (`num_edges * EDGE_BYTES`).
    pub byte_len: u64,
    /// Source-vertex bounds `[src_lo, src_hi)` for activity checks. For
    /// grid blocks these are the block row's range bounds (matching
    /// GridGraph's `should_access_shard`), not the observed min/max.
    pub src_lo: VertexId,
    /// Exclusive upper source bound.
    pub src_hi: VertexId,
    /// Bytes charged when this partition is loaded from secondary storage.
    /// Equals `byte_len` for grid blocks; for shards it also counts the
    /// sliding windows dragged in per interval.
    pub load_bytes: u64,
}

/// The store's table of contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// Partitioning scheme the segments were converted into.
    pub layout: StoreLayout,
    /// Total vertex count.
    pub num_vertices: VertexId,
    /// Per-partition metadata, in partition-index order.
    pub partitions: Vec<ManifestEntry>,
    /// The engine's native partition traversal order.
    pub order: Vec<u32>,
}

impl Manifest {
    /// Total structure bytes across all partitions (`S_G` in Formula 1).
    pub fn graph_bytes(&self) -> u64 {
        self.partitions.iter().map(|e| e.byte_len).sum()
    }

    /// Total edge count across all partitions.
    pub fn num_edges(&self) -> u64 {
        self.partitions.iter().map(|e| e.num_edges).sum()
    }

    /// Writes the manifest into `dir` as [`MANIFEST_FILE`].
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf> {
        let path = dir.join(MANIFEST_FILE);
        let mut w = BufWriter::new(File::create(&path)?);
        w.write_all(MANIFEST_MAGIC)?;
        w.write_all(&self.layout.tag().to_le_bytes())?;
        w.write_all(&self.layout.p().to_le_bytes())?;
        w.write_all(&self.num_vertices.to_le_bytes())?;
        w.write_all(&(self.partitions.len() as u32).to_le_bytes())?;
        for e in &self.partitions {
            let name = e.file.as_bytes();
            if name.len() > u16::MAX as usize {
                return Err(GraphError::Format(format!("segment file name too long: {}", e.file)));
            }
            w.write_all(&(name.len() as u16).to_le_bytes())?;
            w.write_all(name)?;
            w.write_all(&e.num_edges.to_le_bytes())?;
            w.write_all(&e.byte_len.to_le_bytes())?;
            w.write_all(&e.src_lo.to_le_bytes())?;
            w.write_all(&e.src_hi.to_le_bytes())?;
            w.write_all(&e.load_bytes.to_le_bytes())?;
        }
        for pid in &self.order {
            w.write_all(&pid.to_le_bytes())?;
        }
        w.flush()?;
        Ok(path)
    }

    /// Reads a manifest previously written by [`Manifest::write_to_dir`].
    pub fn read_from_dir(dir: &Path) -> Result<Manifest> {
        let path = dir.join(MANIFEST_FILE);
        let available = std::fs::metadata(&path)?.len();
        let mut r = CountingReader::new(BufReader::new(File::open(&path)?), available);
        let mut magic = [0u8; 8];
        r.read_exact_or_truncated(&mut magic, "manifest magic")?;
        if &magic != MANIFEST_MAGIC {
            return Err(GraphError::Format(format!(
                "bad manifest magic in {}: {magic:?}",
                path.display()
            )));
        }
        let tag = r.read_u32("layout tag")?;
        let p = r.read_u32("grid dimension")?;
        let num_vertices = r.read_u32("vertex count")?;
        let layout = match tag {
            0 => StoreLayout::Grid { p },
            1 => StoreLayout::Shards { p },
            t => return Err(GraphError::Format(format!("unknown store layout tag {t}"))),
        };
        let num_partitions = r.read_u32("partition count")? as usize;
        // Each entry is at least 34 bytes; reject counts the file cannot hold
        // before allocating.
        r.check_remaining(num_partitions as u64 * 34, "manifest entries")?;
        let mut partitions = Vec::with_capacity(num_partitions);
        for i in 0..num_partitions {
            let name_len = r.read_u16(&format!("entry {i} name length"))? as usize;
            let mut name = vec![0u8; name_len];
            r.read_exact_or_truncated(&mut name, &format!("entry {i} file name"))?;
            let file = String::from_utf8(name).map_err(|_| {
                GraphError::Format(format!("entry {i}: segment file name is not UTF-8"))
            })?;
            let num_edges = r.read_u64(&format!("entry {i} edge count"))?;
            let byte_len = r.read_u64(&format!("entry {i} byte length"))?;
            let expect_len = num_edges.checked_mul(EDGE_BYTES as u64).ok_or_else(|| {
                GraphError::Format(format!("entry {i}: edge count {num_edges} overflows"))
            })?;
            if byte_len != expect_len {
                return Err(GraphError::Format(format!(
                    "entry {i}: byte length {byte_len} does not match {num_edges} edges"
                )));
            }
            let src_lo = r.read_u32(&format!("entry {i} src_lo"))?;
            let src_hi = r.read_u32(&format!("entry {i} src_hi"))?;
            let load_bytes = r.read_u64(&format!("entry {i} load bytes"))?;
            // Loads charge at least the payload (grid: exactly; shards:
            // plus sliding windows); less means a corrupt manifest, and
            // downstream byte accounting subtracts the two.
            if load_bytes < byte_len {
                return Err(GraphError::Format(format!(
                    "entry {i}: load bytes {load_bytes} below payload {byte_len}"
                )));
            }
            partitions.push(ManifestEntry {
                file,
                num_edges,
                byte_len,
                src_lo,
                src_hi,
                load_bytes,
            });
        }
        r.check_remaining(num_partitions as u64 * 4, "traversal order")?;
        let mut order = Vec::with_capacity(num_partitions);
        let mut seen = vec![false; num_partitions];
        for i in 0..num_partitions {
            let pid = r.read_u32(&format!("order entry {i}"))?;
            if pid as usize >= num_partitions {
                return Err(GraphError::Format(format!(
                    "order entry {i} = {pid} out of range (n = {num_partitions})"
                )));
            }
            // The order must be a permutation: a duplicate would stream one
            // partition twice and silently skip another.
            if std::mem::replace(&mut seen[pid as usize], true) {
                return Err(GraphError::Format(format!(
                    "order entry {i} = {pid} duplicates an earlier entry"
                )));
            }
            order.push(pid);
        }
        Ok(Manifest { layout, num_vertices, partitions, order })
    }
}

/// Writes one partition's edges as a segment file. Returns the payload
/// byte count.
pub fn write_segment(edges: &[Edge], path: &Path) -> Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(SEGMENT_MAGIC)?;
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    for e in edges {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        w.write_all(&e.weight.to_le_bytes())?;
    }
    w.flush()?;
    Ok((edges.len() * EDGE_BYTES) as u64)
}

/// Validates a segment header against the file's real length and the
/// manifest's expectation. Returns the record count.
///
/// `bytes` is the full segment file contents (or its mapped view).
pub fn validate_segment(bytes: &[u8], expect_edges: Option<u64>, what: &str) -> Result<u64> {
    if bytes.len() < SEGMENT_HEADER_BYTES {
        return Err(GraphError::Truncated {
            what: format!("{what}: segment header"),
            needed: SEGMENT_HEADER_BYTES as u64,
            available: bytes.len() as u64,
        });
    }
    if &bytes[..8] != SEGMENT_MAGIC {
        return Err(GraphError::Format(format!("{what}: bad segment magic")));
    }
    let num_edges = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload = (bytes.len() - SEGMENT_HEADER_BYTES) as u64;
    let needed = num_edges
        .checked_mul(EDGE_BYTES as u64)
        .ok_or_else(|| GraphError::Format(format!("{what}: edge count overflows")))?;
    if needed > payload {
        return Err(GraphError::Truncated {
            what: format!("{what}: {num_edges} edge records"),
            needed,
            available: payload,
        });
    }
    if let Some(expect) = expect_edges {
        if expect != num_edges {
            return Err(GraphError::Format(format!(
                "{what}: manifest says {expect} edges, segment header says {num_edges}"
            )));
        }
    }
    Ok(num_edges)
}

/// Reads a segment file eagerly (the non-mmap path; also the portability
/// fallback for big-endian hosts).
pub fn read_segment(path: &Path) -> Result<Vec<Edge>> {
    let available = std::fs::metadata(path)?.len();
    let mut r = BufReader::new(File::open(path)?);
    let mut header = [0u8; SEGMENT_HEADER_BYTES];
    if available < SEGMENT_HEADER_BYTES as u64 {
        return Err(GraphError::Truncated {
            what: format!("{}: segment header", path.display()),
            needed: SEGMENT_HEADER_BYTES as u64,
            available,
        });
    }
    r.read_exact(&mut header)?;
    if &header[..8] != SEGMENT_MAGIC {
        return Err(GraphError::Format(format!("bad segment magic in {}", path.display())));
    }
    let num_edges = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let needed = num_edges
        .checked_mul(EDGE_BYTES as u64)
        .ok_or_else(|| GraphError::Format(format!("{}: edge count overflows", path.display())))?;
    let payload = available - SEGMENT_HEADER_BYTES as u64;
    if needed > payload {
        return Err(GraphError::Truncated {
            what: format!("{}: {num_edges} edge records", path.display()),
            needed,
            available: payload,
        });
    }
    let mut edges = Vec::with_capacity(num_edges as usize);
    let mut rec = [0u8; EDGE_BYTES];
    for _ in 0..num_edges {
        r.read_exact(&mut rec)?;
        edges.push(Edge {
            src: VertexId::from_le_bytes(rec[0..4].try_into().unwrap()),
            dst: VertexId::from_le_bytes(rec[4..8].try_into().unwrap()),
            weight: f32::from_le_bytes(rec[8..12].try_into().unwrap()),
        });
    }
    Ok(edges)
}

/// A reader that tracks remaining bytes so header-driven reads can fail
/// with typed truncation errors before allocating. Shared with the delta
/// store's generation-manifest reader ([`crate::delta`]).
pub(crate) struct CountingReader<R> {
    inner: R,
    remaining: u64,
}

impl<R: Read> CountingReader<R> {
    pub(crate) fn new(inner: R, total: u64) -> Self {
        CountingReader { inner, remaining: total }
    }

    pub(crate) fn check_remaining(&self, needed: u64, what: &str) -> Result<()> {
        if needed > self.remaining {
            return Err(GraphError::Truncated {
                what: what.to_string(),
                needed,
                available: self.remaining,
            });
        }
        Ok(())
    }

    pub(crate) fn read_exact_or_truncated(&mut self, buf: &mut [u8], what: &str) -> Result<()> {
        self.check_remaining(buf.len() as u64, what)?;
        self.inner.read_exact(buf)?;
        self.remaining -= buf.len() as u64;
        Ok(())
    }

    pub(crate) fn read_u16(&mut self, what: &str) -> Result<u16> {
        let mut b = [0u8; 2];
        self.read_exact_or_truncated(&mut b, what)?;
        Ok(u16::from_le_bytes(b))
    }

    pub(crate) fn read_u32(&mut self, what: &str) -> Result<u32> {
        let mut b = [0u8; 4];
        self.read_exact_or_truncated(&mut b, what)?;
        Ok(u32::from_le_bytes(b))
    }

    pub(crate) fn read_u64(&mut self, what: &str) -> Result<u64> {
        let mut b = [0u8; 8];
        self.read_exact_or_truncated(&mut b, what)?;
        Ok(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-segment-test-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn segment_round_trip() {
        let g = generators::rmat(200, 1500, generators::RmatParams::GRAPH500, 3);
        let dir = tmpdir("roundtrip");
        let path = dir.join("part-00000.seg");
        let bytes = write_segment(&g.edges, &path).unwrap();
        assert_eq!(bytes, (1500 * EDGE_BYTES) as u64);
        let back = read_segment(&path).unwrap();
        assert_eq!(back.len(), 1500);
        for (a, b) in g.edges.iter().zip(&back) {
            assert_eq!((a.src, a.dst), (b.src, b.dst));
            assert_eq!(a.weight, b.weight);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_segment_round_trip() {
        let dir = tmpdir("empty");
        let path = dir.join("part-00000.seg");
        write_segment(&[], &path).unwrap();
        assert!(read_segment(&path).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segment_rejects_truncation_and_overflow() {
        let dir = tmpdir("bad");
        let path = dir.join("part-00000.seg");
        // Header promises u64::MAX edges: must be a typed error, not an
        // allocation attempt.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_segment(&path).unwrap_err(), GraphError::Format(_)));
        // Header promises 10 edges but carries 1.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SEGMENT_MAGIC);
        bytes.extend_from_slice(&10u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; EDGE_BYTES]);
        std::fs::write(&path, &bytes).unwrap();
        match read_segment(&path).unwrap_err() {
            GraphError::Truncated { needed, available, .. } => {
                assert_eq!(needed, 120);
                assert_eq!(available, 12);
            }
            e => panic!("expected Truncated, got {e}"),
        }
        // Same checks through the slice validator.
        assert!(matches!(
            validate_segment(&bytes, None, "slice").unwrap_err(),
            GraphError::Truncated { .. }
        ));
        assert!(matches!(
            validate_segment(b"short", None, "slice").unwrap_err(),
            GraphError::Truncated { .. }
        ));
        assert!(matches!(
            validate_segment(b"NOTMAGIC_____________", None, "slice").unwrap_err(),
            GraphError::Format(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_round_trip() {
        let dir = tmpdir("manifest");
        let m = Manifest {
            layout: StoreLayout::Grid { p: 2 },
            num_vertices: 100,
            partitions: (0..4)
                .map(|i| ManifestEntry {
                    file: format!("part-{i:05}.seg"),
                    num_edges: 10 * i,
                    byte_len: 10 * i * EDGE_BYTES as u64,
                    src_lo: (i * 25) as u32,
                    src_hi: (i * 25 + 25) as u32,
                    load_bytes: 10 * i * EDGE_BYTES as u64,
                })
                .collect(),
            order: vec![0, 2, 1, 3],
        };
        m.write_to_dir(&dir).unwrap();
        let back = Manifest::read_from_dir(&dir).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.graph_bytes(), (10 + 20 + 30) * EDGE_BYTES as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rejects_duplicate_order_entries() {
        let dir = tmpdir("manifest-duporder");
        let mut m = Manifest {
            layout: StoreLayout::Grid { p: 2 },
            num_vertices: 10,
            partitions: (0..4)
                .map(|i| ManifestEntry {
                    file: format!("part-{i:05}.seg"),
                    num_edges: 0,
                    byte_len: 0,
                    src_lo: 0,
                    src_hi: 0,
                    load_bytes: 0,
                })
                .collect(),
            order: vec![0, 0, 1, 3], // duplicates 0, drops 2
        };
        m.write_to_dir(&dir).unwrap();
        assert!(matches!(Manifest::read_from_dir(&dir).unwrap_err(), GraphError::Format(_)));
        m.order = vec![0, 2, 1, 3];
        m.write_to_dir(&dir).unwrap();
        assert!(Manifest::read_from_dir(&dir).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rejects_corruption() {
        let dir = tmpdir("manifest-bad");
        // Bad magic.
        std::fs::write(dir.join(MANIFEST_FILE), b"NOTMAGIC").unwrap();
        assert!(matches!(Manifest::read_from_dir(&dir).unwrap_err(), GraphError::Format(_)));
        // Truncated mid-header.
        std::fs::write(dir.join(MANIFEST_FILE), &MANIFEST_MAGIC[..4]).unwrap();
        assert!(matches!(Manifest::read_from_dir(&dir).unwrap_err(), GraphError::Truncated { .. }));
        // Entry count the file cannot hold.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MANIFEST_MAGIC);
        bytes.extend_from_slice(&0u32.to_le_bytes()); // grid
        bytes.extend_from_slice(&2u32.to_le_bytes()); // p
        bytes.extend_from_slice(&9u32.to_le_bytes()); // vertices
        bytes.extend_from_slice(&1_000_000u32.to_le_bytes()); // partitions
        std::fs::write(dir.join(MANIFEST_FILE), &bytes).unwrap();
        assert!(matches!(Manifest::read_from_dir(&dir).unwrap_err(), GraphError::Truncated { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
