//! Scale-reduced stand-ins for the paper's five evaluation graphs (Table 2).
//!
//! | Paper dataset | Vertices | Edges  | Stand-in       | Scale  |
//! |---------------|----------|--------|----------------|--------|
//! | LiveJ         | 4.8 M    | 69 M   | `livej-sim`    | ÷200   |
//! | Orkut         | 3.1 M    | 117.2 M| `orkut-sim`    | ÷200   |
//! | Twitter       | 41.7 M   | 1.5 B  | `twitter-sim`  | ÷1000  |
//! | UK-union      | 133.6 M  | 5.5 B  | `ukunion-sim`  | ÷2000  |
//! | Clueweb12     | 978.4 M  | 42.6 B | `clueweb-sim`  | ÷8000  |
//!
//! The scales keep the paper's two regimes: with the default simulated
//! memory budget (see [`MemoryProfile`]), `livej/orkut/twitter`-sim fit in
//! memory while `ukunion/clueweb`-sim are out-of-core, exactly as in §5.1
//! ("LiveJ, Orkut, and Twitter can be stored in the memory, while the size
//! of UK-union and Clueweb12 are larger than the memory size").
//!
//! `twitter-sim` uses the most skewed R-MAT parameters, mirroring the §5.2
//! observation that Twitter's maximum out-degree (2,997,469 vs average 35)
//! dominates its chunk-table overhead ratio.

use crate::generators::{rmat, RmatParams};
use crate::types::EdgeList;

/// Identifier of a registered dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// LiveJournal stand-in (small, mild skew).
    LiveJ,
    /// Orkut stand-in (small, dense).
    Orkut,
    /// Twitter stand-in (medium, extreme skew).
    Twitter,
    /// UK-union stand-in (large, out-of-core, web-like).
    UkUnion,
    /// Clueweb12 stand-in (largest, out-of-core, web-like).
    Clueweb,
}

impl DatasetId {
    /// All datasets in the paper's Table 2 order.
    pub const ALL: [DatasetId; 5] = [
        DatasetId::LiveJ,
        DatasetId::Orkut,
        DatasetId::Twitter,
        DatasetId::UkUnion,
        DatasetId::Clueweb,
    ];

    /// Paper-facing display name of the stand-in.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::LiveJ => "livej-sim",
            DatasetId::Orkut => "orkut-sim",
            DatasetId::Twitter => "twitter-sim",
            DatasetId::UkUnion => "ukunion-sim",
            DatasetId::Clueweb => "clueweb-sim",
        }
    }

    /// Name of the original dataset this stands in for.
    pub fn paper_name(self) -> &'static str {
        match self {
            DatasetId::LiveJ => "LiveJ",
            DatasetId::Orkut => "Orkut",
            DatasetId::Twitter => "Twitter",
            DatasetId::UkUnion => "UK-union",
            DatasetId::Clueweb => "Clueweb12",
        }
    }

    /// Parses a stand-in or paper name.
    pub fn parse(s: &str) -> Option<DatasetId> {
        DatasetId::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(s) || d.paper_name().eq_ignore_ascii_case(s))
    }

    /// Full-size generation spec.
    pub fn spec(self) -> DatasetSpec {
        match self {
            DatasetId::LiveJ => DatasetSpec {
                id: self,
                num_vertices: 24_000,
                num_edges: 345_000,
                rmat: RmatParams::GRAPH500,
                seed: 0x11,
                fits_in_memory: true,
            },
            DatasetId::Orkut => DatasetSpec {
                id: self,
                num_vertices: 15_500,
                num_edges: 586_000,
                rmat: RmatParams::GRAPH500,
                seed: 0x22,
                fits_in_memory: true,
            },
            DatasetId::Twitter => DatasetSpec {
                id: self,
                num_vertices: 41_700,
                num_edges: 1_500_000,
                rmat: RmatParams::SOCIAL,
                seed: 0x33,
                fits_in_memory: true,
            },
            DatasetId::UkUnion => DatasetSpec {
                id: self,
                num_vertices: 66_800,
                num_edges: 3_340_000,
                rmat: RmatParams::WEB,
                seed: 0x44,
                fits_in_memory: false,
            },
            DatasetId::Clueweb => DatasetSpec {
                id: self,
                num_vertices: 122_300,
                num_edges: 5_325_000,
                rmat: RmatParams::WEB,
                seed: 0x55,
                fits_in_memory: false,
            },
        }
    }

    /// Generates the full-size stand-in graph.
    pub fn generate(self) -> EdgeList {
        self.spec().generate()
    }

    /// Generates a down-scaled variant, dividing vertex and edge counts by
    /// `divisor` (≥ 1). Tests and CI-speed benches use `divisor >= 8`.
    pub fn generate_scaled(self, divisor: usize) -> EdgeList {
        self.spec().generate_scaled(divisor)
    }
}

/// Generation parameters for one registered dataset.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Which dataset this is.
    pub id: DatasetId,
    /// Stand-in vertex count.
    pub num_vertices: u32,
    /// Stand-in edge count.
    pub num_edges: usize,
    /// Skew parameters.
    pub rmat: RmatParams,
    /// Generation seed (fixed per dataset for reproducibility).
    pub seed: u64,
    /// Whether the stand-in fits the default simulated memory budget.
    pub fits_in_memory: bool,
}

impl DatasetSpec {
    /// Generates the graph at full stand-in scale.
    pub fn generate(&self) -> EdgeList {
        rmat(self.num_vertices, self.num_edges, self.rmat, self.seed)
    }

    /// Generates at `1/divisor` scale (counts floored, minimum 64 vertices
    /// and 128 edges so tiny test graphs stay non-degenerate).
    pub fn generate_scaled(&self, divisor: usize) -> EdgeList {
        assert!(divisor >= 1);
        let v = (self.num_vertices as usize / divisor).max(64) as u32;
        let e = (self.num_edges / divisor).max(128);
        rmat(v, e, self.rmat, self.seed)
    }

    /// Structure-data size in bytes (`S_G`).
    pub fn size_bytes(&self) -> usize {
        self.num_edges * crate::types::EDGE_BYTES
    }
}

/// The simulated memory-hierarchy profile every experiment runs against.
///
/// The paper's testbed: 2 × 8-core Xeon E5-2670, 20 MB LLC per socket,
/// 32 GB DRAM, 1 TB disk. The stand-ins are ~200–8000× smaller than the
/// real graphs, so the hierarchy scales down with them; what is preserved
/// is the *ratio* of graph size to memory and LLC capacity.
#[derive(Clone, Copy, Debug)]
pub struct MemoryProfile {
    /// Simulated DRAM capacity in bytes available for graph + job data.
    pub memory_bytes: usize,
    /// Simulated last-level cache capacity in bytes (`C_LLC` in Formula 1).
    pub llc_bytes: usize,
    /// LLC associativity (ways).
    pub llc_ways: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Number of CPU cores (`N` in Formula 1).
    pub cores: usize,
    /// Reserved LLC bytes (`r` in Formula 1) for stacks, code, metadata.
    pub llc_reserved: usize,
}

impl MemoryProfile {
    /// Default profile: 32 MB "DRAM", 256 KB LLC, 8-way, 64-byte lines,
    /// 8 virtual cores, 32 KB reserved. `twitter-sim` (18 MB) fits in
    /// memory; `ukunion-sim` (40 MB, 1.25x over memory like the real
    /// UK-union vs 32 GB) and `clueweb-sim` (64 MB) do not.
    /// The LLC is scaled harder than DRAM so the graph-to-LLC ratios
    /// (16x-256x across the registry) stay in the paper's "graph is far
    /// larger than the LLC" regime (26x-16000x on the real datasets).
    pub const DEFAULT: MemoryProfile = MemoryProfile {
        memory_bytes: 32 << 20,
        llc_bytes: 256 << 10,
        llc_ways: 8,
        line_bytes: 64,
        cores: 8,
        llc_reserved: 32 << 10,
    };

    /// A tiny profile for unit tests: 256 KB memory, 8 KB LLC, 2 cores.
    pub const TEST: MemoryProfile = MemoryProfile {
        memory_bytes: 256 << 10,
        llc_bytes: 8 << 10,
        llc_ways: 4,
        line_bytes: 64,
        cores: 2,
        llc_reserved: 512,
    };
}

impl Default for MemoryProfile {
    fn default() -> Self {
        MemoryProfile::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_regimes() {
        let p = MemoryProfile::DEFAULT;
        for id in DatasetId::ALL {
            let spec = id.spec();
            let fits = spec.size_bytes() <= p.memory_bytes;
            assert_eq!(
                fits,
                spec.fits_in_memory,
                "{}: size {} vs memory {}",
                id.name(),
                spec.size_bytes(),
                p.memory_bytes
            );
        }
    }

    #[test]
    fn ordering_matches_paper() {
        // Paper order by size: LiveJ < Orkut < Twitter < UK-union < Clueweb12.
        let sizes: Vec<usize> = DatasetId::ALL.iter().map(|d| d.spec().size_bytes()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "dataset sizes must ascend: {sizes:?}");
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(DatasetId::parse("twitter-sim"), Some(DatasetId::Twitter));
        assert_eq!(DatasetId::parse("UK-union"), Some(DatasetId::UkUnion));
        assert_eq!(DatasetId::parse("nope"), None);
    }

    #[test]
    fn scaled_generation_is_smaller() {
        let small = DatasetId::LiveJ.generate_scaled(100);
        assert!(small.num_edges() <= 345_000 / 100 + 1);
        assert!(small.num_vertices >= 64);
    }

    #[test]
    fn twitter_sim_is_most_skewed_small_dataset() {
        // §5.2: Twitter's max/avg out-degree ratio exceeds the web graphs'.
        let tw = DatasetId::Twitter.generate_scaled(50);
        let uk = DatasetId::UkUnion.generate_scaled(50);
        let tw_ratio = tw.max_out_degree() as f64 / tw.avg_out_degree();
        let uk_ratio = uk.max_out_degree() as f64 / uk.avg_out_degree();
        assert!(
            tw_ratio > uk_ratio,
            "twitter-sim skew {tw_ratio} should exceed ukunion-sim {uk_ratio}"
        );
    }
}
