//! The GraphChi shard format (parallel sliding windows).
//!
//! GraphChi [Kyrola et al., OSDI '12] splits vertices into `P` execution
//! *intervals* by destination; shard `s` stores every edge whose destination
//! lies in interval `s`, sorted by source. Processing interval `s` loads
//! shard `s` ("memory shard") entirely plus a *sliding window* of each other
//! shard — the contiguous run of its edges whose sources fall in interval
//! `s` (possible because shards are source-sorted).
//!
//! In the GraphM integration one shard = one GraphM partition.

use crate::partition::VertexRanges;
use crate::types::{Edge, EdgeList};

/// An in-memory sharded graph.
#[derive(Clone, Debug)]
pub struct Shards {
    ranges: VertexRanges,
    /// `shards[s]` = edges with `dst` in interval `s`, sorted by `src`.
    shards: Vec<Vec<Edge>>,
    /// `windows[s][t]` = the index range of shard `t` whose sources fall in
    /// interval `s` (the sliding window loaded when executing interval `s`).
    windows: Vec<Vec<std::ops::Range<usize>>>,
}

impl Shards {
    /// Converts an edge list into `p` shards (`Convert()` for GraphChi).
    pub fn convert(graph: &EdgeList, p: usize) -> Shards {
        assert!(p >= 1, "shards require p >= 1");
        let ranges = VertexRanges::new(graph.num_vertices.max(1), p);
        let mut shards: Vec<Vec<Edge>> = vec![Vec::new(); p];
        for e in &graph.edges {
            shards[ranges.range_of(e.dst)].push(*e);
        }
        for s in &mut shards {
            s.sort_by_key(|e| e.src);
        }
        // Precompute sliding windows: for each execution interval s and
        // shard t, the contiguous source-range window [lo, hi).
        let mut windows = Vec::with_capacity(p);
        for s in 0..p {
            let (vlo, vhi) = ranges.bounds(s);
            let per_shard = shards
                .iter()
                .map(|sh| {
                    let lo = sh.partition_point(|e| e.src < vlo);
                    let hi = sh.partition_point(|e| e.src < vhi);
                    lo..hi
                })
                .collect();
            windows.push(per_shard);
        }
        Shards { ranges, shards, windows }
    }

    /// Number of shards / execution intervals.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The vertex intervals.
    #[inline]
    pub fn ranges(&self) -> &VertexRanges {
        &self.ranges
    }

    /// All edges of shard `s` (in-edges of interval `s`), source-sorted.
    #[inline]
    pub fn shard(&self, s: usize) -> &[Edge] {
        &self.shards[s]
    }

    /// The sliding window of shard `t` for execution interval `s`: the
    /// out-edges of interval `s` that live in shard `t`.
    #[inline]
    pub fn window(&self, s: usize, t: usize) -> &[Edge] {
        &self.shards[t][self.windows[s][t].clone()]
    }

    /// Total edges.
    pub fn num_edges(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// Total structure bytes (`S_G`).
    pub fn size_bytes(&self) -> usize {
        self.num_edges() * crate::types::EDGE_BYTES
    }

    /// Bytes loaded when executing interval `s` without sharing: the memory
    /// shard plus every sliding window. This is GraphChi's per-interval I/O.
    pub fn interval_load_bytes(&self, s: usize) -> usize {
        let shard_edges = self.shards[s].len();
        let window_edges: usize =
            (0..self.num_shards()).filter(|&t| t != s).map(|t| self.windows[s][t].len()).sum();
        (shard_edges + window_edges) * crate::types::EDGE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn shard_placement_and_sorting() {
        let g = generators::rmat(120, 900, generators::RmatParams::GRAPH500, 8);
        let sh = Shards::convert(&g, 4);
        assert_eq!(sh.num_edges(), 900);
        for s in 0..4 {
            let (lo, hi) = sh.ranges().bounds(s);
            let shard = sh.shard(s);
            assert!(shard.iter().all(|e| e.dst >= lo && e.dst < hi));
            assert!(shard.windows(2).all(|w| w[0].src <= w[1].src));
        }
    }

    #[test]
    fn sliding_windows_cover_out_edges() {
        let g = generators::rmat(120, 900, generators::RmatParams::GRAPH500, 8);
        let sh = Shards::convert(&g, 4);
        for s in 0..4 {
            let (lo, hi) = sh.ranges().bounds(s);
            // Union of windows over all shards == all edges with src in interval s.
            let expect = g.edges.iter().filter(|e| e.src >= lo && e.src < hi).count();
            let got: usize = (0..4).map(|t| sh.window(s, t).len()).sum();
            assert_eq!(got, expect, "interval {s}");
            for t in 0..4 {
                assert!(sh.window(s, t).iter().all(|e| e.src >= lo && e.src < hi));
            }
        }
    }

    #[test]
    fn interval_load_bytes_counts_shard_and_windows() {
        let g = generators::ring(8);
        let sh = Shards::convert(&g, 2);
        // Every edge is in exactly one shard; windows overlap shards, so the
        // per-interval load is >= its own shard size.
        for s in 0..2 {
            assert!(sh.interval_load_bytes(s) >= sh.shard(s).len() * 12);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    proptest! {
        /// Shards partition the edge multiset; every window is source-contained.
        #[test]
        fn shards_partition_edges(n in 1u32..300, m in 0usize..2000, p in 1usize..8, seed in 0u64..300) {
            let g = generators::erdos_renyi(n, m, seed);
            let sh = Shards::convert(&g, p);
            prop_assert_eq!(sh.num_edges(), m);
            let windows_total: usize = (0..p)
                .map(|s| (0..p).map(|t| sh.window(s, t).len()).sum::<usize>())
                .sum();
            // Every edge appears in exactly one (interval, shard) window.
            prop_assert_eq!(windows_total, m);
        }
    }
}
