//! Fundamental graph types shared by every GraphM crate.
//!
//! The paper models a graph as `G = (V, E, W)`: the *graph structure data*
//! that GraphM shares between concurrent jobs. Job-specific state (`S` in the
//! paper) never lives here — keeping the two separable is the core idea of
//! the Share-Synchronize design.

use std::fmt;

/// Vertex identifier. `u32` bounds graphs at ~4.2 B vertices, enough for the
/// largest dataset the paper evaluates (Clueweb12, 978.4 M vertices) and half
/// the memory of `usize` ids, which matters when edges dominate the footprint.
pub type VertexId = u32;

/// Edge weight. Unweighted algorithms (PageRank, WCC, BFS) ignore it; SSSP
/// reads it. Weights are kept in the structure record so every engine streams
/// identically sized records, as GridGraph does with its 8-byte edge cells.
pub type Weight = f32;

/// A directed, weighted edge. `#[repr(C)]` fixes the 12-byte layout the
/// on-disk formats and the LLC cost model both assume.
#[derive(Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (1.0 for unweighted inputs).
    pub weight: Weight,
}

/// Size of one edge record in bytes, as streamed by every engine.
pub const EDGE_BYTES: usize = std::mem::size_of::<Edge>();

impl Edge {
    /// Creates an unweighted (weight = 1.0) edge.
    #[inline]
    pub fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst, weight: 1.0 }
    }

    /// Creates a weighted edge.
    #[inline]
    pub fn weighted(src: VertexId, dst: VertexId, weight: Weight) -> Self {
        Edge { src, dst, weight }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}({})", self.src, self.dst, self.weight)
    }
}

/// An in-memory directed graph held as a flat edge list plus metadata.
///
/// This is the *original graph data* of Figure 5: the representation GraphM
/// stores before `Convert()` turns it into an engine-specific format.
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    /// Number of vertices; vertex ids are `0..num_vertices`.
    pub num_vertices: VertexId,
    /// All edges, in generator/ingest order (engines re-sort during convert).
    pub edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty graph over `num_vertices` vertices.
    pub fn new(num_vertices: VertexId) -> Self {
        EdgeList { num_vertices, edges: Vec::new() }
    }

    /// Creates a graph from parts, validating that all endpoints are in range.
    ///
    /// Returns `None` when an edge references a vertex `>= num_vertices`.
    pub fn from_edges(num_vertices: VertexId, edges: Vec<Edge>) -> Option<Self> {
        if edges.iter().all(|e| e.src < num_vertices && e.dst < num_vertices) {
            Some(EdgeList { num_vertices, edges })
        } else {
            None
        }
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Size of the structure data in bytes (`S_G` in Formula 1).
    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.edges.len() * EDGE_BYTES
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.src as usize] += 1;
        }
        deg
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_vertices as usize];
        for e in &self.edges {
            deg[e.dst as usize] += 1;
        }
        deg
    }

    /// Maximum out-degree (0 for an empty graph). The paper relates chunk
    /// replica overhead to maximum vs average out-degree in §5.2.
    pub fn max_out_degree(&self) -> u32 {
        self.out_degrees().into_iter().max().unwrap_or(0)
    }

    /// Average out-degree.
    pub fn avg_out_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_vertices as f64
        }
    }
}

/// Errors produced by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// An I/O error while reading/writing on-disk formats.
    Io(std::io::Error),
    /// A malformed on-disk file (bad magic, inconsistent metadata, ...).
    Format(String),
    /// A file ended before the payload its header promised: `needed` bytes
    /// were required past the point described by `what`, but only
    /// `available` remained. Distinguished from [`GraphError::Io`] so
    /// callers can tell a corrupt/truncated file from a failing device, and
    /// so untrusted headers never drive huge speculative allocations.
    Truncated { what: String, needed: u64, available: u64 },
    /// An edge referenced a vertex outside `0..num_vertices`.
    VertexOutOfRange { vertex: VertexId, num_vertices: VertexId },
    /// A second writer tried to acquire a store's writer lease while a
    /// live holder's heartbeat is still fresh. The payload describes the
    /// current holder (epoch, pid, heartbeat age).
    LeaseHeld { holder: String },
    /// The writer's lease disappeared or changed hands underneath it —
    /// detected at heartbeat or pre-flip validation. The holder must stop
    /// publishing immediately.
    LeaseLost { what: String },
    /// A `CURRENT` flip (or heartbeat) observed a *newer* epoch than the
    /// one this writer holds: another writer took the store over. Races
    /// between concurrent writers surface as this typed error instead of
    /// silent corruption.
    EpochFenced { held: u64, current: u64 },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Format(m) => write!(f, "format error: {m}"),
            GraphError::Truncated { what, needed, available } => {
                write!(f, "truncated file: {what} needs {needed} bytes but only {available} remain")
            }
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range (num_vertices = {num_vertices})")
            }
            GraphError::LeaseHeld { holder } => {
                write!(f, "writer lease held by another writer: {holder}")
            }
            GraphError::LeaseLost { what } => write!(f, "writer lease lost: {what}"),
            GraphError::EpochFenced { held, current } => {
                write!(f, "epoch fenced: this writer holds epoch {held} but the store is at epoch {current}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenient result alias for the substrate.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_twelve_bytes() {
        assert_eq!(EDGE_BYTES, 12);
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        let edges = vec![Edge::new(0, 5)];
        assert!(EdgeList::from_edges(3, edges).is_none());
    }

    #[test]
    fn from_edges_accepts_valid() {
        let g = EdgeList::from_edges(3, vec![Edge::new(0, 2), Edge::new(2, 1)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.size_bytes(), 24);
    }

    #[test]
    fn degrees() {
        let g = EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2), Edge::new(3, 0)],
        )
        .unwrap();
        assert_eq!(g.out_degrees(), vec![2, 1, 0, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1, 2, 0]);
        assert_eq!(g.max_out_degree(), 2);
        assert!((g.avg_out_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_degrees() {
        let g = EdgeList::new(0);
        assert_eq!(g.max_out_degree(), 0);
        assert_eq!(g.avg_out_degree(), 0.0);
    }
}
