//! # graphm-graph — graph substrate for the GraphM reproduction
//!
//! Everything the storage system and the host engines need to represent
//! graphs: core types, deterministic generators standing in for the paper's
//! datasets, binary storage, vertex-range partitioning, and the three
//! engine-native formats GraphM's preprocessor targets (`Convert()` in §3.1):
//!
//! * [`grid`] — GridGraph's 2-level grid;
//! * [`shards`] — GraphChi's source-sorted destination shards;
//! * [`csr`] — PowerGraph's CSR/CSC adjacency.
//!
//! Chaos streams raw edge lists, which [`types::EdgeList`] already is.
//! [`segment`] adds the disk-resident store format (`graphm-store` maps
//! it): per-partition segment files plus a manifest of offsets, bounds,
//! and byte counts.

pub mod bitmap;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod failpoint;
pub mod generators;
pub mod grid;
pub mod partition;
pub mod segment;
pub mod shards;
pub mod storage;
pub mod types;

pub use bitmap::AtomicBitmap;
pub use csr::Csr;
pub use datasets::{DatasetId, DatasetSpec, MemoryProfile};
pub use delta::{DeltaRecord, GenManifest, DELTA_RECORD_BYTES};
pub use grid::{Grid, GridFile};
pub use partition::VertexRanges;
pub use segment::{Manifest, ManifestEntry, StoreLayout};
pub use shards::Shards;
pub use types::{Edge, EdgeList, GraphError, Result, VertexId, Weight, EDGE_BYTES};
