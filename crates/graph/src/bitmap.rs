//! Thread-safe bitmaps for active-vertex tracking.
//!
//! §3.4.1: "To express the active vertices succinctly, a bitmap is created
//! for each job." Jobs mark vertices active from parallel edge-processing
//! threads, so the bitmap uses relaxed atomics; the per-iteration swap of
//! current/next frontiers provides the required synchronization points.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity atomic bitmap over vertex ids.
pub struct AtomicBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates a bitmap of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(64);
        let words = (0..n_words).map(|_| AtomicU64::new(0)).collect();
        AtomicBitmap { words, len }
    }

    /// Number of addressable bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap addresses zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i`; returns whether it was previously clear.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        let prev = self.words[i >> 6].fetch_or(mask, Ordering::Relaxed);
        prev & mask == 0
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        self.words[i >> 6].fetch_and(!mask, Ordering::Relaxed);
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        self.words[i >> 6].load(Ordering::Relaxed) & mask != 0
    }

    /// Clears every bit.
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Sets every bit (tail bits past `len` stay clear so counts are exact).
    pub fn set_all(&self) {
        for (wi, w) in self.words.iter().enumerate() {
            let base = wi * 64;
            let bits_here = self.len.saturating_sub(base).min(64);
            let mask = if bits_here == 64 { u64::MAX } else { (1u64 << bits_here) - 1 };
            w.store(mask, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn none_set(&self) -> bool {
        self.words.iter().all(|w| w.load(Ordering::Relaxed) == 0)
    }

    /// True when any bit in `[lo, hi)` is set. Engines use this to decide
    /// whether a partition is *active* for a job (its `should_access_shard`).
    pub fn any_in_range(&self, lo: usize, hi: usize) -> bool {
        let hi = hi.min(self.len);
        if lo >= hi {
            return false;
        }
        let (lw, hw) = (lo >> 6, (hi - 1) >> 6);
        for wi in lw..=hw {
            let mut word = self.words[wi].load(Ordering::Relaxed);
            if wi == lw {
                word &= u64::MAX << (lo & 63);
            }
            if wi == hw {
                let top = (hi - 1) & 63;
                if top < 63 {
                    word &= (1u64 << (top + 1)) - 1;
                }
            }
            if word != 0 {
                return true;
            }
        }
        false
    }

    /// Number of set bits within `[lo, hi)`.
    pub fn count_in_range(&self, lo: usize, hi: usize) -> usize {
        let hi = hi.min(self.len);
        if lo >= hi {
            return 0;
        }
        let mut total = 0usize;
        let (lw, hw) = (lo >> 6, (hi - 1) >> 6);
        for wi in lw..=hw {
            let mut word = self.words[wi].load(Ordering::Relaxed);
            if wi == lw {
                word &= u64::MAX << (lo & 63);
            }
            if wi == hw {
                let top = (hi - 1) & 63;
                if top < 63 {
                    word &= (1u64 << (top + 1)) - 1;
                }
            }
            total += word.count_ones() as usize;
        }
        total
    }

    /// Iterates over indices of set bits in ascending order.
    pub fn iter_set(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut word = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Copies all bits from `other` (same length required).
    pub fn copy_from(&self, other: &AtomicBitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (d, s) in self.words.iter().zip(&other.words) {
            d.store(s.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }
}

impl Clone for AtomicBitmap {
    fn clone(&self) -> Self {
        let words = self.words.iter().map(|w| AtomicU64::new(w.load(Ordering::Relaxed))).collect();
        AtomicBitmap { words, len: self.len }
    }
}

impl std::fmt::Debug for AtomicBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBitmap({} set / {})", self.count(), self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let b = AtomicBitmap::new(130);
        assert!(b.set(0));
        assert!(!b.set(0), "second set reports already-set");
        assert!(b.set(64));
        assert!(b.set(129));
        assert!(b.get(129));
        assert_eq!(b.count(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn set_all_respects_len() {
        let b = AtomicBitmap::new(70);
        b.set_all();
        assert_eq!(b.count(), 70);
        b.clear_all();
        assert!(b.none_set());
    }

    #[test]
    fn range_queries() {
        let b = AtomicBitmap::new(256);
        b.set(10);
        b.set(63);
        b.set(64);
        b.set(200);
        assert!(b.any_in_range(0, 11));
        assert!(!b.any_in_range(11, 63));
        assert!(b.any_in_range(63, 65));
        assert!(!b.any_in_range(65, 200));
        assert!(b.any_in_range(200, 256));
        assert_eq!(b.count_in_range(0, 256), 4);
        assert_eq!(b.count_in_range(63, 65), 2);
        assert_eq!(b.count_in_range(64, 64), 0);
    }

    #[test]
    fn iter_set_ascending() {
        let b = AtomicBitmap::new(300);
        for i in [5usize, 64, 65, 128, 299] {
            b.set(i);
        }
        let got: Vec<usize> = b.iter_set().collect();
        assert_eq!(got, vec![5, 64, 65, 128, 299]);
    }

    #[test]
    fn copy_from() {
        let a = AtomicBitmap::new(100);
        a.set(42);
        let b = AtomicBitmap::new(100);
        b.set(7);
        b.copy_from(&a);
        assert!(b.get(42));
        assert!(!b.get(7));
    }

    #[test]
    fn concurrent_sets_count_once() {
        use std::sync::Arc;
        let b = Arc::new(AtomicBitmap::new(1024));
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in (t..1024).step_by(4) {
                    b.set(i);
                    b.set((i * 7) % 1024);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.count(), 1024);
    }
}
