//! Binary on-disk edge-list storage.
//!
//! This is the "original graph data" box of Figure 5: the raw format GraphM
//! keeps in secondary storage before `Convert()` produces engine-specific
//! representations. Records are fixed 12-byte little-endian
//! `(src: u32, dst: u32, weight: f32)` triples behind a small header, so
//! streaming reads map 1:1 onto the cost model's byte counts.

use crate::types::{Edge, EdgeList, GraphError, Result, VertexId};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GRAPHM01";

/// Writes `graph` to `path` in the GraphM binary edge-list format.
pub fn write_edge_list(graph: &EdgeList, path: &Path) -> Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&graph.num_vertices.to_le_bytes())?;
    w.write_all(&(graph.edges.len() as u64).to_le_bytes())?;
    for e in &graph.edges {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
        w.write_all(&e.weight.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Header size of the edge-list format: magic + vertex count + edge count.
const HEADER_BYTES: u64 = 8 + 4 + 8;

/// Reads a graph previously written by [`write_edge_list`].
///
/// The header is untrusted: the promised edge count is validated against
/// the file's real length *before* any allocation, so a corrupt or
/// truncated file yields a typed [`GraphError::Truncated`] (or
/// [`GraphError::Format`] on overflow) instead of a giant speculative
/// `Vec` or a bare I/O error mid-stream.
pub fn read_edge_list(path: &Path) -> Result<EdgeList> {
    let file_len = std::fs::metadata(path)?.len();
    let file = File::open(path)?;
    let mut r = BufReader::new(file);
    if file_len < HEADER_BYTES {
        return Err(GraphError::Truncated {
            what: format!("{}: header", path.display()),
            needed: HEADER_BYTES,
            available: file_len,
        });
    }
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format(format!("bad magic in {}: {:?}", path.display(), magic)));
    }
    let mut buf4 = [0u8; 4];
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf4)?;
    let num_vertices = VertexId::from_le_bytes(buf4);
    r.read_exact(&mut buf8)?;
    let num_edges_u64 = u64::from_le_bytes(buf8);
    let needed = num_edges_u64.checked_mul(12).ok_or_else(|| {
        GraphError::Format(format!(
            "{}: edge count {num_edges_u64} overflows the format",
            path.display()
        ))
    })?;
    let available = file_len - HEADER_BYTES;
    if needed > available {
        return Err(GraphError::Truncated {
            what: format!("{}: {num_edges_u64} edge records", path.display()),
            needed,
            available,
        });
    }
    let num_edges = num_edges_u64 as usize;
    let mut edges = Vec::with_capacity(num_edges);
    let mut rec = [0u8; 12];
    for _ in 0..num_edges {
        r.read_exact(&mut rec)?;
        let src = VertexId::from_le_bytes(rec[0..4].try_into().unwrap());
        let dst = VertexId::from_le_bytes(rec[4..8].try_into().unwrap());
        let weight = f32::from_le_bytes(rec[8..12].try_into().unwrap());
        if src >= num_vertices {
            return Err(GraphError::VertexOutOfRange { vertex: src, num_vertices });
        }
        if dst >= num_vertices {
            return Err(GraphError::VertexOutOfRange { vertex: dst, num_vertices });
        }
        edges.push(Edge { src, dst, weight });
    }
    Ok(EdgeList { num_vertices, edges })
}

/// Parses a whitespace-separated text edge list (`src dst [weight]` per
/// line, `#` comments), the interchange format of SNAP/LAW datasets the
/// paper downloads. Vertex count is `max id + 1`.
pub fn parse_text_edge_list(text: &str) -> Result<EdgeList> {
    let mut edges = Vec::new();
    let mut max_v: VertexId = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>, what: &str| -> Result<VertexId> {
            tok.ok_or_else(|| GraphError::Format(format!("line {}: missing {what}", lineno + 1)))?
                .parse::<VertexId>()
                .map_err(|e| GraphError::Format(format!("line {}: {e}", lineno + 1)))
        };
        let src = parse(it.next(), "source")?;
        let dst = parse(it.next(), "destination")?;
        let weight = match it.next() {
            Some(tok) => tok
                .parse::<f32>()
                .map_err(|e| GraphError::Format(format!("line {}: {e}", lineno + 1)))?,
            None => 1.0,
        };
        max_v = max_v.max(src).max(dst);
        edges.push(Edge { src, dst, weight });
    }
    let num_vertices = if edges.is_empty() { 0 } else { max_v + 1 };
    Ok(EdgeList { num_vertices, edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-storage-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trip() {
        let g = generators::rmat(500, 3000, generators::RmatParams::GRAPH500, 9);
        let path = tmp("roundtrip.bin");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.num_vertices, g.num_vertices);
        assert_eq!(back.num_edges(), g.num_edges());
        for (a, b) in g.edges.iter().zip(&back.edges) {
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn empty_graph_round_trip() {
        let g = EdgeList::new(7);
        let path = tmp("empty.bin");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.num_vertices, 7);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn rejects_truncated_header_and_records() {
        let path = tmp("truncated.bin");
        // File shorter than the header.
        std::fs::write(&path, &MAGIC[..6]).unwrap();
        assert!(matches!(read_edge_list(&path).unwrap_err(), GraphError::Truncated { .. }));
        // Header promises 3 edges, file carries half a record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 6]);
        std::fs::write(&path, &bytes).unwrap();
        match read_edge_list(&path).unwrap_err() {
            GraphError::Truncated { needed, available, .. } => {
                assert_eq!(needed, 36);
                assert_eq!(available, 6);
            }
            e => panic!("expected Truncated, got {e}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_overflowing_edge_count() {
        let path = tmp("overflow.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        // Must fail with a typed error before allocating u64::MAX capacity.
        assert!(matches!(read_edge_list(&path).unwrap_err(), GraphError::Format(_)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let path = tmp("outofrange.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes()); // num_vertices = 2
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&9u32.to_le_bytes()); // src = 9: out of range
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1.0f32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_edge_list(&path).unwrap_err(),
            GraphError::VertexOutOfRange { vertex: 9, num_vertices: 2 }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let path = tmp("badmagic.bin");
        std::fs::write(&path, b"NOTMAGIC________________").unwrap();
        let err = read_edge_list(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, GraphError::Format(_)));
    }

    #[test]
    fn parse_text() {
        let g = parse_text_edge_list("# comment\n0 1\n1 2 3.5\n\n2 0\n").unwrap();
        assert_eq!(g.num_vertices, 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edges[1].weight, 3.5);
        assert_eq!(g.edges[0].weight, 1.0);
    }

    #[test]
    fn parse_text_errors() {
        assert!(parse_text_edge_list("0").is_err());
        assert!(parse_text_edge_list("a b").is_err());
        let empty = parse_text_edge_list("# nothing\n").unwrap();
        assert_eq!(empty.num_vertices, 0);
    }
}
