//! Vertex-range partitioning shared by every engine format.
//!
//! GridGraph splits `V` into `P` equal ranges (grid rows/columns), GraphChi
//! into destination intervals, and GraphM's global table keys partitions by
//! index — all three sit on this one partitioner so partition ids mean the
//! same thing across the stack.

use crate::types::VertexId;

/// An equal-width partitioning of the vertex id space `0..num_vertices`
/// into `count` contiguous ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexRanges {
    num_vertices: VertexId,
    count: usize,
    /// Width of each range except possibly the last (`ceil(n / count)`).
    width: VertexId,
}

impl VertexRanges {
    /// Creates `count` ranges over `num_vertices` vertices.
    ///
    /// `count` must be ≥ 1. When `count > num_vertices` the trailing ranges
    /// are empty, which the engines treat as never-active partitions.
    pub fn new(num_vertices: VertexId, count: usize) -> Self {
        assert!(count >= 1, "at least one partition required");
        let width = (num_vertices as u64).div_ceil(count as u64).max(1) as VertexId;
        VertexRanges { num_vertices, count, width }
    }

    /// Number of ranges.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total vertex count.
    #[inline]
    pub fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    /// Index of the range containing vertex `v`.
    #[inline]
    pub fn range_of(&self, v: VertexId) -> usize {
        debug_assert!(v < self.num_vertices);
        ((v / self.width) as usize).min(self.count - 1)
    }

    /// Half-open vertex interval `[lo, hi)` of range `i`.
    #[inline]
    pub fn bounds(&self, i: usize) -> (VertexId, VertexId) {
        assert!(i < self.count);
        let lo = (i as u64 * self.width as u64).min(self.num_vertices as u64) as VertexId;
        let hi = ((i as u64 + 1) * self.width as u64).min(self.num_vertices as u64) as VertexId;
        (lo, hi)
    }

    /// Number of vertices in range `i`.
    #[inline]
    pub fn len(&self, i: usize) -> VertexId {
        let (lo, hi) = self.bounds(i);
        hi - lo
    }

    /// True when range `i` contains no vertices.
    #[inline]
    pub fn is_empty(&self, i: usize) -> bool {
        self.len(i) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly() {
        let r = VertexRanges::new(103, 8);
        let mut seen = 0u32;
        for i in 0..8 {
            let (lo, hi) = r.bounds(i);
            assert!(lo <= hi);
            seen += hi - lo;
            for v in lo..hi {
                assert_eq!(r.range_of(v), i, "vertex {v}");
            }
        }
        assert_eq!(seen, 103);
    }

    #[test]
    fn more_partitions_than_vertices() {
        let r = VertexRanges::new(3, 8);
        assert_eq!(r.range_of(0), 0);
        assert_eq!(r.range_of(2), 2);
        assert!(r.is_empty(5));
        assert_eq!(r.bounds(7), (3, 3));
    }

    #[test]
    fn single_partition() {
        let r = VertexRanges::new(10, 1);
        assert_eq!(r.bounds(0), (0, 10));
        assert_eq!(r.range_of(9), 0);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_panics() {
        VertexRanges::new(10, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every vertex maps to exactly the range whose bounds contain it.
        #[test]
        fn range_of_consistent(n in 1u32..5000, count in 1usize..64, v_seed in 0u32..u32::MAX) {
            let r = VertexRanges::new(n, count);
            let v = v_seed % n;
            let i = r.range_of(v);
            let (lo, hi) = r.bounds(i);
            prop_assert!(lo <= v && v < hi);
        }

        /// Ranges tile the vertex space without gaps or overlaps.
        #[test]
        fn ranges_tile(n in 0u32..5000, count in 1usize..64) {
            let r = VertexRanges::new(n, count);
            let mut expected_lo = 0u32;
            for i in 0..count {
                let (lo, hi) = r.bounds(i);
                prop_assert_eq!(lo, expected_lo);
                prop_assert!(hi >= lo);
                expected_lo = hi;
            }
            prop_assert_eq!(expected_lo, n);
        }
    }
}
