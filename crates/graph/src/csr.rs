//! Compressed sparse row/column adjacency, the PowerGraph-native format.
//!
//! `Convert()` for the PowerGraph-like engine produces a [`Csr`] (out-edges)
//! and, via [`Csr::transpose`], the CSC view (in-edges) used by the gather
//! phase. The sequential oracle algorithms in `graphm-algos` also run on CSR.

use crate::types::{Edge, EdgeList, VertexId, Weight};
use rayon::prelude::*;

/// Compressed sparse row adjacency: for vertex `v`, neighbors live at
/// `targets[offsets[v] .. offsets[v + 1]]` with parallel `weights`.
#[derive(Clone, Debug)]
pub struct Csr {
    /// `num_vertices + 1` prefix offsets into `targets`.
    pub offsets: Vec<usize>,
    /// Flattened neighbor ids.
    pub targets: Vec<VertexId>,
    /// Flattened edge weights, parallel to `targets`.
    pub weights: Vec<Weight>,
}

impl Csr {
    /// Builds out-edge CSR from an edge list (counting sort by source; the
    /// relative order of a vertex's out-edges follows input order).
    pub fn from_edge_list(g: &EdgeList) -> Csr {
        let n = g.num_vertices as usize;
        let mut counts = vec![0usize; n + 1];
        for e in &g.edges {
            counts[e.src as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; g.edges.len()];
        let mut weights = vec![0.0 as Weight; g.edges.len()];
        for e in &g.edges {
            let slot = cursor[e.src as usize];
            targets[slot] = e.dst;
            weights[slot] = e.weight;
            cursor[e.src as usize] += 1;
        }
        Csr { offsets, targets, weights }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbor ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// `(neighbor, weight)` pairs of `v`.
    pub fn neighbors_weighted(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        let range = self.offsets[v as usize]..self.offsets[v as usize + 1];
        self.targets[range.clone()].iter().copied().zip(self.weights[range].iter().copied())
    }

    /// Builds the transpose (CSC of the original graph: in-edges as
    /// out-edges of the reversed graph).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let mut counts = vec![0usize; n + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        let mut weights = vec![0.0 as Weight; self.targets.len()];
        for src in 0..n {
            for k in self.offsets[src]..self.offsets[src + 1] {
                let dst = self.targets[k] as usize;
                let slot = cursor[dst];
                targets[slot] = src as VertexId;
                weights[slot] = self.weights[k];
                cursor[dst] += 1;
            }
        }
        Csr { offsets, targets, weights }
    }

    /// Reconstructs the edge list (ordered by source).
    pub fn to_edge_list(&self) -> EdgeList {
        let n = self.num_vertices();
        let edges: Vec<Edge> = (0..n)
            .into_par_iter()
            .flat_map_iter(|src| {
                let range = self.offsets[src]..self.offsets[src + 1];
                self.targets[range.clone()]
                    .iter()
                    .zip(&self.weights[range])
                    .map(move |(&dst, &w)| Edge::weighted(src as VertexId, dst, w))
                    .collect::<Vec<_>>()
            })
            .collect();
        EdgeList { num_vertices: n as VertexId, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn build_and_query() {
        let g = EdgeList::from_edges(
            4,
            vec![Edge::new(0, 1), Edge::new(0, 3), Edge::new(2, 0), Edge::new(2, 1)],
        )
        .unwrap();
        let csr = Csr::from_edge_list(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        assert_eq!(csr.neighbors(0), &[1, 3]);
        assert_eq!(csr.neighbors(1), &[] as &[VertexId]);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.degree(2), 2);
    }

    #[test]
    fn transpose_inverts() {
        let g = generators::rmat(256, 2000, generators::RmatParams::GRAPH500, 3);
        let csr = Csr::from_edge_list(&g);
        let csc = csr.transpose();
        // Every edge (s, t) in CSR appears as (t, s) in CSC.
        assert_eq!(csc.num_edges(), csr.num_edges());
        let back = csc.transpose();
        for v in 0..csr.num_vertices() {
            let mut a = csr.neighbors(v as VertexId).to_vec();
            let mut b = back.neighbors(v as VertexId).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "vertex {v}");
        }
    }

    #[test]
    fn to_edge_list_round_trip() {
        let g = generators::rmat(128, 700, generators::RmatParams::GRAPH500, 5);
        let csr = Csr::from_edge_list(&g);
        let back = csr.to_edge_list();
        assert_eq!(back.num_edges(), g.num_edges());
        let mut orig: Vec<(u32, u32)> = g.edges.iter().map(|e| (e.src, e.dst)).collect();
        let mut got: Vec<(u32, u32)> = back.edges.iter().map(|e| (e.src, e.dst)).collect();
        orig.sort_unstable();
        got.sort_unstable();
        assert_eq!(orig, got);
    }

    #[test]
    fn weights_preserved() {
        let g = EdgeList::from_edges(2, vec![Edge::weighted(0, 1, 2.5)]).unwrap();
        let csr = Csr::from_edge_list(&g);
        let pairs: Vec<_> = csr.neighbors_weighted(0).collect();
        assert_eq!(pairs, vec![(1, 2.5)]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    proptest! {
        /// Degree sums equal edge count and transpose preserves multiset of edges.
        #[test]
        fn csr_invariants(n in 1u32..300, m in 0usize..2000, seed in 0u64..1000) {
            let g = generators::erdos_renyi(n, m, seed);
            let csr = Csr::from_edge_list(&g);
            let total: usize = (0..n).map(|v| csr.degree(v)).sum();
            prop_assert_eq!(total, m);
            let csc = csr.transpose();
            prop_assert_eq!(csc.num_edges(), m);
            let mut fwd: Vec<(u32, u32)> = g.edges.iter().map(|e| (e.src, e.dst)).collect();
            let mut rev: Vec<(u32, u32)> = csc.to_edge_list().edges.iter().map(|e| (e.dst, e.src)).collect();
            fwd.sort_unstable();
            rev.sort_unstable();
            prop_assert_eq!(fwd, rev);
        }
    }
}
