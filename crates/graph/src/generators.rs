//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on five real-world graphs we cannot redistribute, so
//! the dataset registry ([`crate::datasets`]) builds scale-reduced stand-ins
//! from these generators. R-MAT supplies the power-law skew that drives
//! GraphM's chunk-replica overhead discussion (§5.2); Erdős–Rényi and the
//! regular families serve tests and micro-benchmarks.
//!
//! All generators are deterministic in their seed so every experiment is
//! reproducible bit-for-bit.

use crate::types::{Edge, EdgeList, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for the R-MAT (Recursive MATrix) generator.
///
/// Each edge lands in one of four quadrants of the adjacency matrix with
/// probabilities `(a, b, c, d)`, recursively. Graph500 uses
/// `(0.57, 0.19, 0.19, 0.05)`; larger `a` means heavier skew.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Per-level probability noise, which prevents the degree distribution
    /// from collapsing onto exact powers.
    pub noise: f64,
}

impl RmatParams {
    /// Graph500 reference parameters.
    pub const GRAPH500: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19, noise: 0.05 };

    /// Heavier-tailed parameters for social-network-like skew
    /// (Twitter-style hubs with millions of followers).
    pub const SOCIAL: RmatParams = RmatParams { a: 0.65, b: 0.15, c: 0.15, noise: 0.1 };

    /// Milder skew resembling web crawls with bounded out-degree.
    pub const WEB: RmatParams = RmatParams { a: 0.5, b: 0.22, c: 0.22, noise: 0.05 };

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT graph with `num_vertices` (rounded up to a power of
/// two internally, then mapped back down) and exactly `num_edges` edges.
///
/// Self-loops are permitted (real crawls contain them; engines tolerate
/// them), duplicates are permitted (multigraph), and edge weights are
/// uniform in `[1, 16)` so SSSP has meaningful distances.
pub fn rmat(num_vertices: VertexId, num_edges: usize, params: RmatParams, seed: u64) -> EdgeList {
    assert!(num_vertices > 0, "rmat requires at least one vertex");
    let levels = (num_vertices as f64).log2().ceil() as u32;
    let side = 1u64 << levels;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    let d = params.d();
    while edges.len() < num_edges {
        let (mut x_lo, mut x_hi) = (0u64, side);
        let (mut y_lo, mut y_hi) = (0u64, side);
        for _ in 0..levels {
            // Jitter the quadrant probabilities per level.
            let jitter = |p: f64, rng: &mut StdRng| {
                (p * (1.0 - params.noise + 2.0 * params.noise * rng.random::<f64>())).max(1e-9)
            };
            let (pa, pb, pc, pd) = (
                jitter(params.a, &mut rng),
                jitter(params.b, &mut rng),
                jitter(params.c, &mut rng),
                jitter(d, &mut rng),
            );
            let total = pa + pb + pc + pd;
            let r = rng.random::<f64>() * total;
            let x_mid = (x_lo + x_hi) / 2;
            let y_mid = (y_lo + y_hi) / 2;
            if r < pa {
                x_hi = x_mid;
                y_hi = y_mid;
            } else if r < pa + pb {
                x_hi = x_mid;
                y_lo = y_mid;
            } else if r < pa + pb + pc {
                x_lo = x_mid;
                y_hi = y_mid;
            } else {
                x_lo = x_mid;
                y_lo = y_mid;
            }
        }
        let src = (x_lo % num_vertices as u64) as VertexId;
        let dst = (y_lo % num_vertices as u64) as VertexId;
        let weight = 1.0 + rng.random::<f32>() * 15.0;
        edges.push(Edge::weighted(src, dst, weight));
    }
    EdgeList { num_vertices, edges }
}

/// Generates a uniform Erdős–Rényi multigraph G(n, m).
pub fn erdos_renyi(num_vertices: VertexId, num_edges: usize, seed: u64) -> EdgeList {
    assert!(num_vertices > 0, "erdos_renyi requires at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = (0..num_edges)
        .map(|_| {
            Edge::weighted(
                rng.random_range(0..num_vertices),
                rng.random_range(0..num_vertices),
                1.0 + rng.random::<f32>() * 15.0,
            )
        })
        .collect();
    EdgeList { num_vertices, edges }
}

/// Directed ring: `i -> (i + 1) % n`. Diameter `n - 1`; exercises long
/// propagation chains (worst case for WCC/BFS iteration counts).
pub fn ring(num_vertices: VertexId) -> EdgeList {
    assert!(num_vertices > 0);
    let edges = (0..num_vertices).map(|i| Edge::new(i, (i + 1) % num_vertices)).collect();
    EdgeList { num_vertices, edges }
}

/// Directed path: `i -> i + 1` for `i < n - 1`.
pub fn path(num_vertices: VertexId) -> EdgeList {
    assert!(num_vertices > 0);
    let edges = (0..num_vertices.saturating_sub(1)).map(|i| Edge::new(i, i + 1)).collect();
    EdgeList { num_vertices, edges }
}

/// Star graph: vertex 0 points at everything else. Maximal out-degree skew,
/// the stress case for chunk-table replica overhead.
pub fn star(num_vertices: VertexId) -> EdgeList {
    assert!(num_vertices > 0);
    let edges = (1..num_vertices).map(|i| Edge::new(0, i)).collect();
    EdgeList { num_vertices, edges }
}

/// Complete directed graph without self loops (use only for tiny `n`).
pub fn complete(num_vertices: VertexId) -> EdgeList {
    let mut edges = Vec::new();
    for s in 0..num_vertices {
        for t in 0..num_vertices {
            if s != t {
                edges.push(Edge::new(s, t));
            }
        }
    }
    EdgeList { num_vertices, edges }
}

/// Makes a graph weakly symmetric by adding every reverse edge. WCC over a
/// directed graph in the streaming engines assumes label exchange in both
/// directions, matching how the paper's systems evaluate WCC on symmetrized
/// inputs.
pub fn symmetrize(g: &EdgeList) -> EdgeList {
    let mut edges = Vec::with_capacity(g.edges.len() * 2);
    for e in &g.edges {
        edges.push(*e);
        edges.push(Edge::weighted(e.dst, e.src, e.weight));
    }
    EdgeList { num_vertices: g.num_vertices, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_deterministic_and_sized() {
        let g1 = rmat(1000, 5000, RmatParams::GRAPH500, 42);
        let g2 = rmat(1000, 5000, RmatParams::GRAPH500, 42);
        assert_eq!(g1.num_edges(), 5000);
        assert_eq!(g1.num_vertices, 1000);
        assert!(g1.edges.iter().zip(&g2.edges).all(|(a, b)| a.src == b.src && a.dst == b.dst));
        let g3 = rmat(1000, 5000, RmatParams::GRAPH500, 43);
        assert!(g1.edges.iter().zip(&g3.edges).any(|(a, b)| a.src != b.src || a.dst != b.dst));
    }

    #[test]
    fn rmat_in_range() {
        let g = rmat(300, 2000, RmatParams::SOCIAL, 7);
        assert!(g.edges.iter().all(|e| e.src < 300 && e.dst < 300));
        assert!(g.edges.iter().all(|e| e.weight >= 1.0 && e.weight < 16.0));
    }

    #[test]
    fn rmat_is_skewed() {
        // SOCIAL parameters must produce a hub much heavier than average.
        let g = rmat(4096, 40960, RmatParams::SOCIAL, 1);
        let max = g.max_out_degree() as f64;
        let avg = g.avg_out_degree();
        assert!(max > avg * 10.0, "expected skew: max {max} should exceed 10x avg {avg}");
    }

    #[test]
    fn erdos_renyi_is_flat() {
        let g = erdos_renyi(4096, 40960, 1);
        let max = g.max_out_degree() as f64;
        let avg = g.avg_out_degree();
        assert!(max < avg * 5.0, "uniform graph should not have extreme hubs");
    }

    #[test]
    fn regular_families() {
        assert_eq!(ring(5).num_edges(), 5);
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(complete(4).num_edges(), 12);
    }

    #[test]
    fn symmetrize_doubles() {
        let g = path(10);
        let s = symmetrize(&g);
        assert_eq!(s.num_edges(), 18);
        // Reverse of every original edge is present.
        for e in &g.edges {
            assert!(s.edges.iter().any(|r| r.src == e.dst && r.dst == e.src));
        }
    }
}
