//! The on-disk **delta store** format: append-only mutation segments plus
//! generation-numbered manifests over a base partition store.
//!
//! A store directory written by `Convert()` (see [`crate::segment`]) is
//! immutable; this module adds the evolving-graph half: a single writer
//! appends per-partition *delta segments* (edge insertions and deletion
//! tombstones), publishes them under a new *generation manifest*, and
//! atomically flips the [`CURRENT_FILE`] pointer. Readers resolve
//! `CURRENT` at open (or on an explicit refresh), overlay the ordered
//! delta chain on the base segment, and never observe a half-published
//! generation:
//!
//! * delta segments and generation manifests are written **before**
//!   `CURRENT` moves, and no published file is ever modified in place
//!   (append-only at the directory level);
//! * `CURRENT` itself is replaced via write-to-temp + `rename`, which is
//!   atomic on POSIX filesystems;
//! * a generation manifest is **cumulative** — it names the base segment
//!   file and the full delta chain per partition — so a reader can jump
//!   from any generation straight to the newest without replaying
//!   intermediate manifests.
//!
//! The merge semantics ([`apply_delta`]) are chosen so that a merged view
//! is *bit-identical* to a from-scratch conversion of the mutated edge
//! list: an insert appends the edge, a delete removes every `(src, dst)`
//! occurrence accumulated so far (base and earlier deltas alike). Layout
//! invariants mirror [`crate::segment`]: little-endian fields, 16-byte
//! headers keeping record arrays 4-byte aligned for in-place
//! reinterpretation, and every length validated against the real file
//! length before any allocation.

use crate::failpoint;
use crate::segment::{CountingReader, StoreLayout};
use crate::types::{Edge, EdgeList, GraphError, Result, VertexId};
use std::collections::HashSet;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every delta segment file.
pub const DELTA_MAGIC: &[u8; 8] = b"GMDEL001";

/// Magic bytes opening every generation manifest.
pub const GEN_MAGIC: &[u8; 8] = b"GMGEN001";

/// Magic bytes opening the [`CURRENT_FILE`] generation pointer.
pub const CURRENT_MAGIC: &[u8; 8] = b"GMCUR001";

/// Name of the current-generation pointer file inside a store directory.
/// Absent = generation 0 (the base store, no deltas).
pub const CURRENT_FILE: &str = "CURRENT";

/// Fixed delta segment header size: magic (8) + `num_records` (8).
pub const DELTA_HEADER_BYTES: usize = 16;

/// Insert operation tag: the record's edge joins the merged view.
pub const DELTA_OP_INSERT: u32 = 0;

/// Delete (tombstone) tag: every `(src, dst)` occurrence accumulated so
/// far — in the base or in earlier delta records — leaves the merged view.
pub const DELTA_OP_DELETE: u32 = 1;

/// One mutation record. `#[repr(C)]` fixes the 16-byte on-disk layout so
/// little-endian hosts reinterpret mapped delta segments in place.
#[repr(C)]
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeltaRecord {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (inserts; ignored by deletes, write 0).
    pub weight: f32,
    /// [`DELTA_OP_INSERT`] or [`DELTA_OP_DELETE`].
    pub op: u32,
}

/// Size of one serialized [`DeltaRecord`].
pub const DELTA_RECORD_BYTES: usize = std::mem::size_of::<DeltaRecord>();

impl DeltaRecord {
    /// An insertion record.
    pub fn insert(src: VertexId, dst: VertexId, weight: f32) -> DeltaRecord {
        DeltaRecord { src, dst, weight, op: DELTA_OP_INSERT }
    }

    /// A deletion tombstone for every `(src, dst)` edge.
    pub fn delete(src: VertexId, dst: VertexId) -> DeltaRecord {
        DeltaRecord { src, dst, weight: 0.0, op: DELTA_OP_DELETE }
    }

    /// Whether this record inserts (vs deletes).
    pub fn is_insert(&self) -> bool {
        self.op == DELTA_OP_INSERT
    }
}

/// Delta segment file name for partition `pid` published at `generation`.
pub fn delta_file_name(generation: u64, pid: usize) -> String {
    format!("delta-{generation:06}-{pid:05}.dseg")
}

/// Generation manifest file name.
pub fn gen_manifest_file_name(generation: u64) -> String {
    format!("gen-{generation:06}.mf")
}

/// Segment file name for partition `pid`'s base rewritten by a compaction
/// that published `generation`. Distinguished from `Convert`'s original
/// `part-NNNNN.seg` names by the `-g` suffix, so retirement can tell them
/// apart.
pub fn compacted_segment_file_name(generation: u64, pid: usize) -> String {
    format!("part-{pid:05}-g{generation:06}.seg")
}

/// Applies `records` to `edges` in record order: inserts append, deletes
/// remove every `(src, dst)` match accumulated so far. This is the one
/// definition of the merge semantics — the store's merged-view readers,
/// the compactor, and the in-memory reference mutation all call it, which
/// is what makes "merged read == from-scratch conversion of the mutated
/// graph" hold bit for bit.
pub fn apply_delta(edges: &mut Vec<Edge>, records: &[DeltaRecord]) {
    // Consecutive tombstones commute, so each *run* of deletes is applied
    // as one set-driven retain — delete-heavy batches cost O(edges + run)
    // instead of one full rescan per tombstone. (A chain-wide multiset
    // index is a recorded ROADMAP follow-up.)
    let mut i = 0;
    while i < records.len() {
        let r = records[i];
        if r.is_insert() {
            edges.push(Edge { src: r.src, dst: r.dst, weight: r.weight });
            i += 1;
        } else {
            let mut dead = HashSet::new();
            while i < records.len() && !records[i].is_insert() {
                dead.insert((records[i].src, records[i].dst));
                i += 1;
            }
            edges.retain(|e| !dead.contains(&(e.src, e.dst)));
        }
    }
}

/// Applies `records` to a whole edge list — the in-memory reference for
/// what a published delta batch does to the graph (deletes filter
/// everywhere, inserts append at the end, exactly like [`apply_delta`]
/// does per partition).
pub fn apply_delta_to_edge_list(graph: &mut EdgeList, records: &[DeltaRecord]) {
    apply_delta(&mut graph.edges, records);
}

/// Writes one partition's pending mutations as a delta segment file.
/// Returns the payload byte count.
pub fn write_delta_segment(records: &[DeltaRecord], path: &Path) -> Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(DELTA_MAGIC)?;
    w.write_all(&(records.len() as u64).to_le_bytes())?;
    for r in records {
        w.write_all(&r.src.to_le_bytes())?;
        w.write_all(&r.dst.to_le_bytes())?;
        w.write_all(&r.weight.to_le_bytes())?;
        w.write_all(&r.op.to_le_bytes())?;
    }
    w.flush()?;
    failpoint::hit("delta.segment.written")?;
    // Durability before the CURRENT flip references this file: the flip
    // must never durably name a generation whose payload is not.
    w.get_ref().sync_all()?;
    failpoint::hit("delta.segment.synced")?;
    Ok((records.len() * DELTA_RECORD_BYTES) as u64)
}

/// Validates a delta segment header against the file's real length and
/// the manifest's expectation. Returns the record count.
pub fn validate_delta_segment(
    bytes: &[u8],
    expect_records: Option<u64>,
    what: &str,
) -> Result<u64> {
    if bytes.len() < DELTA_HEADER_BYTES {
        return Err(GraphError::Truncated {
            what: format!("{what}: delta segment header"),
            needed: DELTA_HEADER_BYTES as u64,
            available: bytes.len() as u64,
        });
    }
    if &bytes[..8] != DELTA_MAGIC {
        return Err(GraphError::Format(format!("{what}: bad delta segment magic")));
    }
    let num_records = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let payload = (bytes.len() - DELTA_HEADER_BYTES) as u64;
    let needed = num_records
        .checked_mul(DELTA_RECORD_BYTES as u64)
        .ok_or_else(|| GraphError::Format(format!("{what}: record count overflows")))?;
    if needed > payload {
        return Err(GraphError::Truncated {
            what: format!("{what}: {num_records} delta records"),
            needed,
            available: payload,
        });
    }
    if let Some(expect) = expect_records {
        if expect != num_records {
            return Err(GraphError::Format(format!(
                "{what}: manifest says {expect} records, segment header says {num_records}"
            )));
        }
    }
    Ok(num_records)
}

/// Reads a delta segment file eagerly (the non-mmap path; also the
/// big-endian fallback). Rejects unknown operation tags.
pub fn read_delta_segment(path: &Path) -> Result<Vec<DeltaRecord>> {
    let available = std::fs::metadata(path)?.len();
    let mut r = BufReader::new(File::open(path)?);
    let mut header = [0u8; DELTA_HEADER_BYTES];
    if available < DELTA_HEADER_BYTES as u64 {
        return Err(GraphError::Truncated {
            what: format!("{}: delta segment header", path.display()),
            needed: DELTA_HEADER_BYTES as u64,
            available,
        });
    }
    r.read_exact(&mut header)?;
    if &header[..8] != DELTA_MAGIC {
        return Err(GraphError::Format(format!("bad delta magic in {}", path.display())));
    }
    let num_records = u64::from_le_bytes(header[8..16].try_into().unwrap());
    let needed = num_records
        .checked_mul(DELTA_RECORD_BYTES as u64)
        .ok_or_else(|| GraphError::Format(format!("{}: record count overflows", path.display())))?;
    let payload = available - DELTA_HEADER_BYTES as u64;
    if needed > payload {
        return Err(GraphError::Truncated {
            what: format!("{}: {num_records} delta records", path.display()),
            needed,
            available: payload,
        });
    }
    let mut records = Vec::with_capacity(num_records as usize);
    let mut rec = [0u8; DELTA_RECORD_BYTES];
    for i in 0..num_records {
        r.read_exact(&mut rec)?;
        let parsed = DeltaRecord {
            src: VertexId::from_le_bytes(rec[0..4].try_into().unwrap()),
            dst: VertexId::from_le_bytes(rec[4..8].try_into().unwrap()),
            weight: f32::from_le_bytes(rec[8..12].try_into().unwrap()),
            op: u32::from_le_bytes(rec[12..16].try_into().unwrap()),
        };
        if parsed.op > DELTA_OP_DELETE {
            return Err(GraphError::Format(format!(
                "{}: record {i} has unknown op {}",
                path.display(),
                parsed.op
            )));
        }
        records.push(parsed);
    }
    Ok(records)
}

/// One delta segment in a partition's chain, as the generation manifest
/// records it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaFileRef {
    /// Delta segment file name, relative to the store directory.
    pub file: String,
    /// Number of 16-byte mutation records in the segment.
    pub num_records: u64,
}

/// One partition's entry in a generation manifest: which segment file is
/// its base *this generation* (compaction rewrites it) plus the ordered
/// delta chain layered on top.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenPartition {
    /// Base segment file name (original `part-NNNNN.seg` until a
    /// compaction replaces it with a folded `part-NNNNN-gGGGGGG.seg`).
    pub base_file: String,
    /// Edge records in the base segment.
    pub base_num_edges: u64,
    /// Ordered delta chain (oldest first).
    pub deltas: Vec<DeltaFileRef>,
}

impl GenPartition {
    /// Total mutation records across the chain.
    pub fn delta_records(&self) -> u64 {
        self.deltas.iter().map(|d| d.num_records).sum()
    }

    /// Total delta payload bytes across the chain.
    pub fn delta_bytes(&self) -> u64 {
        self.delta_records() * DELTA_RECORD_BYTES as u64
    }
}

/// A generation's table of contents. Cumulative: resolving the newest
/// generation needs only this one file plus the base `manifest.bin`
/// (which keeps the layout, streaming order, and activity bounds — none
/// of which a delta publish changes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenManifest {
    /// Generation number (>= 1; generation 0 is the bare base store).
    pub generation: u64,
    /// Cumulative compactions folded into the base so far — carried
    /// forward by every publish so readers can report it.
    pub compactions: u64,
    /// Must match the base manifest's layout.
    pub layout: StoreLayout,
    /// Must match the base manifest's vertex count (growing the vertex
    /// set requires reconversion).
    pub num_vertices: VertexId,
    /// Per-partition state, in partition-index order.
    pub partitions: Vec<GenPartition>,
}

impl GenManifest {
    /// Total delta payload bytes across all partitions.
    pub fn delta_bytes(&self) -> u64 {
        self.partitions.iter().map(GenPartition::delta_bytes).sum()
    }

    /// Total mutation records across all partitions.
    pub fn delta_records(&self) -> u64 {
        self.partitions.iter().map(GenPartition::delta_records).sum()
    }

    /// Writes the manifest into `dir` under its generation-numbered name.
    pub fn write_to_dir(&self, dir: &Path) -> Result<PathBuf> {
        let path = dir.join(gen_manifest_file_name(self.generation));
        let mut w = BufWriter::new(File::create(&path)?);
        w.write_all(GEN_MAGIC)?;
        w.write_all(&self.generation.to_le_bytes())?;
        w.write_all(&self.compactions.to_le_bytes())?;
        w.write_all(&self.layout.tag().to_le_bytes())?;
        w.write_all(&self.layout.p().to_le_bytes())?;
        w.write_all(&self.num_vertices.to_le_bytes())?;
        w.write_all(&(self.partitions.len() as u32).to_le_bytes())?;
        let write_name = |w: &mut BufWriter<File>, name: &str| -> Result<()> {
            let bytes = name.as_bytes();
            if bytes.len() > u16::MAX as usize {
                return Err(GraphError::Format(format!("file name too long: {name}")));
            }
            w.write_all(&(bytes.len() as u16).to_le_bytes())?;
            w.write_all(bytes)?;
            Ok(())
        };
        for part in &self.partitions {
            write_name(&mut w, &part.base_file)?;
            w.write_all(&part.base_num_edges.to_le_bytes())?;
            w.write_all(&(part.deltas.len() as u32).to_le_bytes())?;
            for d in &part.deltas {
                write_name(&mut w, &d.file)?;
                w.write_all(&d.num_records.to_le_bytes())?;
            }
        }
        w.flush()?;
        failpoint::hit("gen.manifest.written")?;
        // Must be durable before CURRENT durably points at it.
        w.get_ref().sync_all()?;
        failpoint::hit("gen.manifest.synced")?;
        Ok(path)
    }

    /// Reads the manifest for `generation` previously written by
    /// [`GenManifest::write_to_dir`].
    pub fn read_from_dir(dir: &Path, generation: u64) -> Result<GenManifest> {
        let path = dir.join(gen_manifest_file_name(generation));
        let available = std::fs::metadata(&path)?.len();
        let mut r = CountingReader::new(BufReader::new(File::open(&path)?), available);
        let mut magic = [0u8; 8];
        r.read_exact_or_truncated(&mut magic, "generation manifest magic")?;
        if &magic != GEN_MAGIC {
            return Err(GraphError::Format(format!(
                "bad generation manifest magic in {}: {magic:?}",
                path.display()
            )));
        }
        let file_gen = r.read_u64("generation number")?;
        if file_gen != generation {
            return Err(GraphError::Format(format!(
                "{}: header says generation {file_gen}, file name says {generation}",
                path.display()
            )));
        }
        let compactions = r.read_u64("compaction count")?;
        let tag = r.read_u32("layout tag")?;
        let p = r.read_u32("grid dimension")?;
        let num_vertices = r.read_u32("vertex count")?;
        let layout = match tag {
            0 => StoreLayout::Grid { p },
            1 => StoreLayout::Shards { p },
            t => return Err(GraphError::Format(format!("unknown store layout tag {t}"))),
        };
        let num_partitions = r.read_u32("partition count")? as usize;
        // Each entry is at least 14 bytes; reject counts the file cannot
        // hold before allocating.
        r.check_remaining(num_partitions as u64 * 14, "generation partitions")?;
        let read_name = |r: &mut CountingReader<BufReader<File>>, what: &str| -> Result<String> {
            let len = r.read_u16(&format!("{what} name length"))? as usize;
            let mut bytes = vec![0u8; len];
            r.read_exact_or_truncated(&mut bytes, &format!("{what} name"))?;
            String::from_utf8(bytes)
                .map_err(|_| GraphError::Format(format!("{what}: file name is not UTF-8")))
        };
        let mut partitions = Vec::with_capacity(num_partitions);
        for i in 0..num_partitions {
            let base_file = read_name(&mut r, &format!("partition {i} base"))?;
            let base_num_edges = r.read_u64(&format!("partition {i} base edge count"))?;
            let num_deltas = r.read_u32(&format!("partition {i} delta count"))? as usize;
            r.check_remaining(num_deltas as u64 * 10, &format!("partition {i} delta chain"))?;
            let mut deltas = Vec::with_capacity(num_deltas);
            for d in 0..num_deltas {
                let file = read_name(&mut r, &format!("partition {i} delta {d}"))?;
                let num_records = r.read_u64(&format!("partition {i} delta {d} record count"))?;
                deltas.push(DeltaFileRef { file, num_records });
            }
            partitions.push(GenPartition { base_file, base_num_edges, deltas });
        }
        Ok(GenManifest { generation, compactions, layout, num_vertices, partitions })
    }
}

/// Reads the store's current generation: the [`CURRENT_FILE`] pointer, or
/// 0 when it does not exist (a bare base store).
pub fn read_current_generation(dir: &Path) -> Result<u64> {
    let path = dir.join(CURRENT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 16 {
        return Err(GraphError::Truncated {
            what: format!("{}: generation pointer", path.display()),
            needed: 16,
            available: bytes.len() as u64,
        });
    }
    if &bytes[..8] != CURRENT_MAGIC {
        return Err(GraphError::Format(format!("bad CURRENT magic in {}", path.display())));
    }
    Ok(u64::from_le_bytes(bytes[8..16].try_into().unwrap()))
}

/// Atomically points the store at `generation`: the pointer is written to
/// a temporary file and `rename`d over [`CURRENT_FILE`], so readers see
/// either the old pointer or the new one, never a torn write. Call only
/// after the generation's manifest and delta segments are fully on disk.
pub fn write_current_generation(dir: &Path, generation: u64) -> Result<()> {
    let tmp = dir.join(format!("{CURRENT_FILE}.tmp"));
    let mut bytes = Vec::with_capacity(16);
    bytes.extend_from_slice(CURRENT_MAGIC);
    bytes.extend_from_slice(&generation.to_le_bytes());
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        failpoint::hit("current.tmp.written")?;
        // The pointer's content must hit disk before the rename can, or
        // a crash could leave CURRENT durably pointing at garbage.
        f.sync_all()?;
        failpoint::hit("current.tmp.synced")?;
    }
    std::fs::rename(&tmp, dir.join(CURRENT_FILE))?;
    failpoint::hit("current.renamed")?;
    // And the rename itself must be durable: fsync the directory.
    File::open(dir)?.sync_all()?;
    failpoint::hit("current.dir.synced")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("graphm-delta-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn delta_record_layout_is_sixteen_bytes() {
        assert_eq!(DELTA_RECORD_BYTES, 16);
    }

    #[test]
    fn delta_segment_round_trip() {
        let dir = tmpdir("roundtrip");
        let records = vec![
            DeltaRecord::insert(1, 2, 0.5),
            DeltaRecord::delete(3, 4),
            DeltaRecord::insert(5, 6, -1.25),
        ];
        let path = dir.join(delta_file_name(1, 0));
        let bytes = write_delta_segment(&records, &path).unwrap();
        assert_eq!(bytes, 3 * DELTA_RECORD_BYTES as u64);
        let back = read_delta_segment(&path).unwrap();
        assert_eq!(back, records);
        // Empty segments round-trip too.
        let empty = dir.join(delta_file_name(1, 1));
        write_delta_segment(&[], &empty).unwrap();
        assert!(read_delta_segment(&empty).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delta_segment_rejects_corruption() {
        let dir = tmpdir("bad");
        let path = dir.join("x.dseg");
        // Header promises u64::MAX records: typed error, no allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(DELTA_MAGIC);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_delta_segment(&path).unwrap_err(), GraphError::Format(_)));
        // Header promises 5 records but carries 1.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(DELTA_MAGIC);
        bytes.extend_from_slice(&5u64.to_le_bytes());
        bytes.extend_from_slice(&[0u8; DELTA_RECORD_BYTES]);
        std::fs::write(&path, &bytes).unwrap();
        match read_delta_segment(&path).unwrap_err() {
            GraphError::Truncated { needed, available, .. } => {
                assert_eq!(needed, 80);
                assert_eq!(available, 16);
            }
            e => panic!("expected Truncated, got {e}"),
        }
        assert!(matches!(
            validate_delta_segment(&bytes, None, "slice").unwrap_err(),
            GraphError::Truncated { .. }
        ));
        assert!(matches!(
            validate_delta_segment(b"short", None, "slice").unwrap_err(),
            GraphError::Truncated { .. }
        ));
        assert!(matches!(
            validate_delta_segment(b"NOTMAGIC________", None, "slice").unwrap_err(),
            GraphError::Format(_)
        ));
        // Unknown op tag.
        let rec = DeltaRecord { src: 0, dst: 1, weight: 0.0, op: 7 };
        write_delta_segment(&[rec], &path).unwrap();
        assert!(matches!(read_delta_segment(&path).unwrap_err(), GraphError::Format(_)));
        // Manifest/segment record-count mismatch through the validator.
        let good = [DeltaRecord::insert(0, 1, 1.0)];
        write_delta_segment(&good, &path).unwrap();
        let file_bytes = std::fs::read(&path).unwrap();
        assert_eq!(validate_delta_segment(&file_bytes, Some(1), "slice").unwrap(), 1);
        assert!(matches!(
            validate_delta_segment(&file_bytes, Some(2), "slice").unwrap_err(),
            GraphError::Format(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_manifest_round_trip() {
        let dir = tmpdir("genman");
        let m = GenManifest {
            generation: 3,
            compactions: 1,
            layout: StoreLayout::Grid { p: 2 },
            num_vertices: 100,
            partitions: (0..4)
                .map(|i| GenPartition {
                    base_file: format!("part-{i:05}.seg"),
                    base_num_edges: 10 * i,
                    deltas: (1..=i)
                        .map(|g| DeltaFileRef {
                            file: delta_file_name(g, i as usize),
                            num_records: g * 2,
                        })
                        .collect(),
                })
                .collect(),
        };
        m.write_to_dir(&dir).unwrap();
        let back = GenManifest::read_from_dir(&dir, 3).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.delta_records(), 2 + (2 + 4) + (2 + 4 + 6));
        assert_eq!(back.delta_bytes(), back.delta_records() * DELTA_RECORD_BYTES as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gen_manifest_rejects_corruption() {
        let dir = tmpdir("genman-bad");
        let name = gen_manifest_file_name(2);
        // Bad magic.
        std::fs::write(dir.join(&name), b"NOTMAGIC").unwrap();
        assert!(matches!(GenManifest::read_from_dir(&dir, 2).unwrap_err(), GraphError::Format(_)));
        // Truncated mid-header.
        std::fs::write(dir.join(&name), &GEN_MAGIC[..4]).unwrap();
        assert!(matches!(
            GenManifest::read_from_dir(&dir, 2).unwrap_err(),
            GraphError::Truncated { .. }
        ));
        // Header generation must match the file name's.
        let m = GenManifest {
            generation: 2,
            compactions: 0,
            layout: StoreLayout::Grid { p: 1 },
            num_vertices: 4,
            partitions: vec![GenPartition {
                base_file: "part-00000.seg".to_string(),
                base_num_edges: 0,
                deltas: vec![],
            }],
        };
        let written = m.write_to_dir(&dir).unwrap();
        std::fs::rename(written, dir.join(gen_manifest_file_name(5))).unwrap();
        assert!(matches!(GenManifest::read_from_dir(&dir, 5).unwrap_err(), GraphError::Format(_)));
        // Partition count the file cannot hold.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(GEN_MAGIC);
        bytes.extend_from_slice(&2u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // grid
        bytes.extend_from_slice(&1u32.to_le_bytes()); // p
        bytes.extend_from_slice(&4u32.to_le_bytes()); // vertices
        bytes.extend_from_slice(&1_000_000u32.to_le_bytes()); // partitions
        std::fs::write(dir.join(&name), &bytes).unwrap();
        assert!(matches!(
            GenManifest::read_from_dir(&dir, 2).unwrap_err(),
            GraphError::Truncated { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn current_pointer_round_trip() {
        let dir = tmpdir("current");
        assert_eq!(read_current_generation(&dir).unwrap(), 0, "missing CURRENT means gen 0");
        write_current_generation(&dir, 7).unwrap();
        assert_eq!(read_current_generation(&dir).unwrap(), 7);
        write_current_generation(&dir, 8).unwrap();
        assert_eq!(read_current_generation(&dir).unwrap(), 8);
        assert!(!dir.join(format!("{CURRENT_FILE}.tmp")).exists(), "temp file renamed away");
        // Corruption is a typed error, not a silent 0.
        std::fs::write(dir.join(CURRENT_FILE), b"bogus").unwrap();
        assert!(matches!(read_current_generation(&dir).unwrap_err(), GraphError::Truncated { .. }));
        std::fs::write(dir.join(CURRENT_FILE), b"NOTMAGIC00000000").unwrap();
        assert!(matches!(read_current_generation(&dir).unwrap_err(), GraphError::Format(_)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn apply_delta_semantics() {
        let base =
            vec![Edge::weighted(0, 1, 1.0), Edge::weighted(1, 2, 2.0), Edge::weighted(0, 1, 3.0)];
        // Delete removes *every* (src, dst) match accumulated so far.
        let mut edges = base.clone();
        apply_delta(&mut edges, &[DeltaRecord::delete(0, 1)]);
        assert_eq!(edges, vec![Edge::weighted(1, 2, 2.0)]);
        // Insert after delete re-adds; a later delete removes that too.
        let mut edges = base.clone();
        apply_delta(
            &mut edges,
            &[
                DeltaRecord::delete(0, 1),
                DeltaRecord::insert(0, 1, 9.0),
                DeltaRecord::insert(3, 0, 4.0),
                DeltaRecord::delete(0, 1),
            ],
        );
        assert_eq!(edges, vec![Edge::weighted(1, 2, 2.0), Edge::weighted(3, 0, 4.0)]);
        // The edge-list form matches the per-partition form.
        let mut g = EdgeList::new(4);
        g.edges = base;
        apply_delta_to_edge_list(&mut g, &[DeltaRecord::delete(1, 2)]);
        assert_eq!(g.edges.len(), 2);
    }
}
