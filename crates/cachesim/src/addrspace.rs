//! Synthetic address-space allocator.
//!
//! The LLC simulator distinguishes buffers purely by address. This bump
//! allocator hands every buffer a non-overlapping, page-aligned range so
//! that (a) N private copies of the same partition conflict in the cache
//! like N real allocations, and (b) one shared copy reuses the same lines
//! across jobs — the mechanism behind Figures 13/14.

use std::sync::atomic::{AtomicU64, Ordering};

/// Alignment of every allocation (4 KiB, a page).
pub const PAGE: u64 = 4096;

/// A monotonically growing synthetic address space.
#[derive(Debug)]
pub struct AddrSpace {
    next: AtomicU64,
}

impl AddrSpace {
    /// Creates a fresh address space starting at one page (address 0 is
    /// reserved so "null" never aliases an allocation).
    pub fn new() -> AddrSpace {
        AddrSpace { next: AtomicU64::new(PAGE) }
    }

    /// Allocates `bytes` and returns the base address (page-aligned).
    pub fn alloc(&self, bytes: usize) -> u64 {
        let size = (bytes as u64).div_ceil(PAGE).max(1) * PAGE;
        self.next.fetch_add(size, Ordering::Relaxed)
    }

    /// Total bytes ever allocated (addresses are never reused).
    pub fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed) - PAGE
    }
}

impl Default for AddrSpace {
    fn default() -> Self {
        AddrSpace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_disjoint_and_aligned() {
        let a = AddrSpace::new();
        let x = a.alloc(100);
        let y = a.alloc(5000);
        let z = a.alloc(1);
        assert_eq!(x % PAGE, 0);
        assert_eq!(y % PAGE, 0);
        assert!(x + 100 <= y, "ranges must not overlap");
        assert!(y + 5000 <= z);
        assert_eq!(a.allocated(), PAGE + 2 * PAGE + PAGE);
    }

    #[test]
    fn zero_byte_alloc_still_unique() {
        let a = AddrSpace::new();
        let x = a.alloc(0);
        let y = a.alloc(0);
        assert_ne!(x, y);
    }

    #[test]
    fn concurrent_allocs_unique() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let a = Arc::new(AddrSpace::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|_| a.alloc(64)).collect::<Vec<u64>>()
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for addr in h.join().unwrap() {
                assert!(all.insert(addr), "duplicate address {addr}");
            }
        }
    }
}
