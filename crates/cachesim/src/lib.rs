//! # graphm-cachesim — measurement substrate for the GraphM reproduction
//!
//! The paper evaluates GraphM with hardware counters (LLC misses, LPI,
//! memory usage, disk I/O) on a 16-core/32 GB/20 MB-LLC testbed. This crate
//! replaces that hardware with deterministic simulators so every figure is
//! reproducible on any machine:
//!
//! * [`llc`] — set-associative LRU last-level cache;
//! * [`memory`] — buffer-granular DRAM with LRU eviction and disk counters;
//! * [`addrspace`] — synthetic address allocator that makes "N private
//!   copies" and "one shared copy" observable to the LLC;
//! * [`cost`] — virtual-time model (compute / memory / disk / sync) used by
//!   the figure harnesses;
//! * [`metrics`] — the named-counter registry every runner reports into.

pub mod addrspace;
pub mod cost;
pub mod llc;
pub mod memory;
pub mod metrics;

pub use addrspace::AddrSpace;
pub use cost::{CostParams, InstrModel, VirtualClock};
pub use llc::{Llc, LlcConfig, LlcStats};
pub use memory::{MemConfig, MemStats, MemorySim, RegionId};
pub use metrics::{keys, Metrics};
