//! Virtual-time cost model.
//!
//! Wall-clock on a 2-core container cannot reproduce a 16-core/128-node
//! testbed, so the figure harnesses accumulate *virtual nanoseconds* from
//! this model instead: per-edge compute, LLC hit/miss latencies (fed by the
//! simulator's actual outcomes), disk transfers, and synchronization events.
//! GraphM's profiling phase (§3.4.2) then *measures* `T(F_j)` and `T(E)`
//! from these virtual timings, exactly as the paper measures them from real
//! ones — the mechanism under test is the paper's, only the clock is
//! synthetic.
//!
//! Latency defaults approximate the paper's testbed (Xeon E5-2670, DDR3,
//! 1 TB hard drive): an access that does *not* miss the LLC costs ≈ 3 ns
//! (it is usually served by L1/L2), a DRAM access ≈ 80 ns, HDD ≈ 150 MB/s.
//! The per-load seek cost is scaled down with the datasets (200 µs instead
//! of a spinning disk's ~4 ms): partitions here are hundreds of KB where
//! the paper's are hundreds of MB, and an unscaled seek would dominate
//! every load the way it never does at full scale.

/// Latency/bandwidth parameters for virtual time, all in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Cost of an access that stays on-chip (L1/L2/LLC hit).
    pub llc_hit_ns: f64,
    /// Cost of an LLC miss served from DRAM.
    pub llc_miss_ns: f64,
    /// Base ALU cost of processing one edge (multiplied by each job's
    /// `edge_cost_factor`, this generates the ground-truth `T(F_j)`).
    pub edge_compute_ns: f64,
    /// Cost of inspecting and skipping an edge whose source is inactive.
    pub skip_edge_ns: f64,
    /// Per-byte sequential disk transfer (150 MB/s ≈ 6.67 ns/B).
    pub disk_byte_ns: f64,
    /// Fixed per-load positioning cost. Streaming engines read their
    /// partition files sequentially, so a partition "seek" is a short
    /// stride within an already-open file, not a cold random seek.
    pub disk_seek_ns: f64,
    /// Per-chunk synchronization event cost. The fine-grained trigger is
    /// a relaxed shared-memory progress counter per chunk per job (~50 ns
    /// amortized), not a kernel barrier; chunks here are KBs (scaled LLC)
    /// rather than the paper's MBs, so a mis-scaled barrier cost would
    /// swamp the chunk work it synchronizes. §5.6's measured share (sync =
    /// 7.1%-14.6% of total time) is the calibration target, checked by the
    /// fig19 harness.
    pub sync_event_ns: f64,
    /// Per-job-per-partition scheduling bookkeeping (global-table update).
    pub schedule_event_ns: f64,
}

impl CostParams {
    /// Defaults described in the module docs.
    pub const DEFAULT: CostParams = CostParams {
        llc_hit_ns: 3.0,
        llc_miss_ns: 80.0,
        edge_compute_ns: 5.0,
        skip_edge_ns: 1.0,
        disk_byte_ns: 6.67,
        disk_seek_ns: 20_000.0,
        sync_event_ns: 50.0,
        schedule_event_ns: 100.0,
    };
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams::DEFAULT
    }
}

/// Abstract instruction-count model for the LPI metric (Figure 3(c)).
///
/// LPI = LLC misses / instructions. The engines count one `per_edge` block
/// for every streamed edge and one `per_vertex` block for every vertex-state
/// update; constants roughly follow the instruction mixes reported for
/// edge-centric engines (a streamed edge costs a dozen instructions:
/// decode, bounds, gather, compute, scatter).
#[derive(Clone, Copy, Debug)]
pub struct InstrModel {
    /// Instructions charged per streamed edge.
    pub per_edge: u64,
    /// Instructions charged per vertex-state update.
    pub per_vertex: u64,
    /// Instructions charged per iteration of per-job bookkeeping.
    pub per_iteration: u64,
}

impl InstrModel {
    /// Default mix.
    pub const DEFAULT: InstrModel =
        InstrModel { per_edge: 14, per_vertex: 8, per_iteration: 5_000 };
}

impl Default for InstrModel {
    fn default() -> Self {
        InstrModel::DEFAULT
    }
}

/// Per-job virtual clock, accumulating nanoseconds by category so Figure 10
/// (execution-time breakdown) falls straight out.
#[derive(Clone, Copy, Debug, Default)]
pub struct VirtualClock {
    /// Pure graph-processing compute time.
    pub compute_ns: f64,
    /// Memory-hierarchy access time (LLC hits + misses).
    pub mem_access_ns: f64,
    /// Disk wait time.
    pub disk_ns: f64,
    /// Synchronization overhead (GraphM chunk barriers).
    pub sync_ns: f64,
}

impl VirtualClock {
    /// Total virtual nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.compute_ns + self.mem_access_ns + self.disk_ns + self.sync_ns
    }

    /// The paper's "data accessing time" (Figure 10): everything that is
    /// not algorithm compute.
    pub fn data_access_ns(&self) -> f64 {
        self.mem_access_ns + self.disk_ns + self.sync_ns
    }

    /// Adds another clock's categories into this one.
    pub fn merge(&mut self, other: &VirtualClock) {
        self.compute_ns += other.compute_ns;
        self.mem_access_ns += other.mem_access_ns;
        self.disk_ns += other.disk_ns;
        self.sync_ns += other.sync_ns;
    }

    /// Scales every category (used when apportioning a shared cost).
    pub fn scaled(&self, f: f64) -> VirtualClock {
        VirtualClock {
            compute_ns: self.compute_ns * f,
            mem_access_ns: self.mem_access_ns * f,
            disk_ns: self.disk_ns * f,
            sync_ns: self.sync_ns * f,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_breakdown() {
        let c = VirtualClock { compute_ns: 10.0, mem_access_ns: 20.0, disk_ns: 30.0, sync_ns: 5.0 };
        assert!((c.total_ns() - 65.0).abs() < 1e-9);
        assert!((c.data_access_ns() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_scale() {
        let mut a =
            VirtualClock { compute_ns: 1.0, mem_access_ns: 2.0, disk_ns: 3.0, sync_ns: 4.0 };
        let b = a;
        a.merge(&b);
        assert!((a.total_ns() - 20.0).abs() < 1e-9);
        let s = a.scaled(0.5);
        assert!((s.total_ns() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn defaults_sane() {
        let p = CostParams::DEFAULT;
        assert!(p.llc_miss_ns > p.llc_hit_ns);
        assert!(p.disk_seek_ns > p.llc_miss_ns);
        let m = InstrModel::DEFAULT;
        assert!(m.per_edge > 0 && m.per_vertex > 0);
    }
}
