//! Named-counter metrics registry.
//!
//! Every scheme runner emits one [`Metrics`] per experiment; the bench
//! harnesses read the counters to print the paper's rows and the
//! integration tests assert qualitative orderings on them (e.g. scheme M
//! reads less from disk than scheme C).

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// A flat, ordered map of metric name → value.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    values: BTreeMap<String, f64>,
}

// The vendored serde has no derive macro, so the (shape-compatible)
// serialization serde would generate is written out by hand.
impl Serialize for Metrics {
    fn to_json_value(&self) -> serde_json::Value {
        let mut map = serde_json::Map::new();
        map.insert("values".to_string(), self.values.to_json_value());
        serde_json::Value::Object(map)
    }
}

/// Well-known metric names, so runners and benches agree on spelling.
pub mod keys {
    /// Total virtual execution time in nanoseconds (makespan).
    pub const TOTAL_NS: &str = "total_ns";
    /// Virtual compute time in nanoseconds (sum over jobs).
    pub const COMPUTE_NS: &str = "compute_ns";
    /// Virtual data-access time in nanoseconds (sum over jobs).
    pub const DATA_ACCESS_NS: &str = "data_access_ns";
    /// Virtual synchronization time in nanoseconds (sum over jobs).
    pub const SYNC_NS: &str = "sync_ns";
    /// LLC accesses.
    pub const LLC_ACCESSES: &str = "llc_accesses";
    /// LLC misses.
    pub const LLC_MISSES: &str = "llc_misses";
    /// Bytes swapped into the LLC.
    pub const LLC_FILL_BYTES: &str = "llc_fill_bytes";
    /// Abstract instructions executed.
    pub const INSTRUCTIONS: &str = "instructions";
    /// Bytes read from disk.
    pub const DISK_READ_BYTES: &str = "disk_read_bytes";
    /// Bytes written to disk.
    pub const DISK_WRITE_BYTES: &str = "disk_write_bytes";
    /// Peak resident memory bytes.
    pub const PEAK_MEMORY_BYTES: &str = "peak_memory_bytes";
    /// Number of partition loads performed.
    pub const PARTITION_LOADS: &str = "partition_loads";
    /// Number of jobs executed.
    pub const JOBS: &str = "jobs";
    /// Number of iterations summed over jobs.
    pub const ITERATIONS: &str = "iterations";
    /// Wall-clock milliseconds, when measured.
    pub const WALL_MS: &str = "wall_ms";
    /// Bytes moved over the simulated network (distributed engines).
    pub const NET_BYTES: &str = "net_bytes";
    /// Messages sent over the simulated network.
    pub const NET_MESSAGES: &str = "net_messages";
}

impl Metrics {
    /// Empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `v` to `name` (creating it at 0).
    pub fn add(&mut self, name: &str, v: f64) {
        *self.values.entry(name.to_string()).or_insert(0.0) += v;
    }

    /// Sets `name` to `v`, overwriting.
    pub fn set(&mut self, name: &str, v: f64) {
        self.values.insert(name.to_string(), v);
    }

    /// Sets `name` to the max of its current value and `v`.
    pub fn set_max(&mut self, name: &str, v: f64) {
        let e = self.values.entry(name.to_string()).or_insert(f64::MIN);
        if v > *e {
            *e = v;
        }
    }

    /// Reads `name` (0 when absent).
    pub fn get(&self, name: &str) -> f64 {
        self.values.get(name).copied().unwrap_or(0.0)
    }

    /// True when `name` has been recorded.
    pub fn contains(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.values {
            self.add(k, *v);
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Ratio helper: `self[name] / other[name]`, NaN-safe (returns 0 when
    /// the denominator is 0).
    pub fn ratio_to(&self, other: &Metrics, name: &str) -> f64 {
        let d = other.get(name);
        if d == 0.0 {
            0.0
        } else {
            self.get(name) / d
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k:>24} = {v:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_set_get() {
        let mut m = Metrics::new();
        m.add(keys::LLC_MISSES, 5.0);
        m.add(keys::LLC_MISSES, 3.0);
        assert_eq!(m.get(keys::LLC_MISSES), 8.0);
        m.set(keys::LLC_MISSES, 1.0);
        assert_eq!(m.get(keys::LLC_MISSES), 1.0);
        assert_eq!(m.get("absent"), 0.0);
        assert!(!m.contains("absent"));
    }

    #[test]
    fn set_max() {
        let mut m = Metrics::new();
        m.set_max(keys::PEAK_MEMORY_BYTES, 100.0);
        m.set_max(keys::PEAK_MEMORY_BYTES, 50.0);
        assert_eq!(m.get(keys::PEAK_MEMORY_BYTES), 100.0);
        m.set_max(keys::PEAK_MEMORY_BYTES, 200.0);
        assert_eq!(m.get(keys::PEAK_MEMORY_BYTES), 200.0);
    }

    #[test]
    fn merge_and_ratio() {
        let mut a = Metrics::new();
        a.add("x", 2.0);
        let mut b = Metrics::new();
        b.add("x", 4.0);
        b.add("y", 1.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 6.0);
        assert_eq!(a.get("y"), 1.0);
        assert_eq!(a.ratio_to(&b, "x"), 1.5);
        assert_eq!(a.ratio_to(&b, "z"), 0.0);
    }

    #[test]
    fn serializes() {
        let mut m = Metrics::new();
        m.add("x", 1.5);
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("1.5"));
    }
}
