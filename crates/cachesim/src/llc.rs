//! Set-associative LRU last-level-cache simulator.
//!
//! The paper's Figures 3(b,c), 13, and 14 report hardware LLC counters
//! (misses, misses-per-instruction, bytes swapped into the LLC). We have no
//! hardware counters here, so the engines replay their address streams
//! through this simulator instead. Addresses are synthetic: every buffer is
//! placed in a distinct range by [`crate::addrspace::AddrSpace`], so N
//! private copies of a graph partition (scheme `-C`) conflict in the cache
//! exactly as N distinct physical allocations would, while the single shared
//! copy (scheme `-M`) hits.

/// Geometry of the simulated LLC.
#[derive(Clone, Copy, Debug)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
}

impl LlcConfig {
    /// Number of sets (`capacity / (ways * line)`), at least 1.
    pub fn num_sets(&self) -> usize {
        (self.capacity_bytes / (self.ways * self.line_bytes)).max(1)
    }

    /// Scaled default matching `graphm_graph::MemoryProfile::DEFAULT`
    /// (not linkable from here — cachesim sits below the graph crate):
    /// 2 MB, 8-way, 64-byte lines.
    pub const DEFAULT: LlcConfig = LlcConfig { capacity_bytes: 2 << 20, ways: 8, line_bytes: 64 };
}

impl Default for LlcConfig {
    fn default() -> Self {
        LlcConfig::DEFAULT
    }
}

/// Counters accumulated by the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LlcStats {
    /// Line-granular accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (and filled a line).
    pub misses: u64,
    /// Bytes brought into the cache (`misses * line_bytes`): the paper's
    /// "volume of data swapped into the LLC" (Figure 14).
    pub fill_bytes: u64,
}

impl LlcStats {
    /// Miss rate in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Accumulates another stats block.
    pub fn merge(&mut self, other: &LlcStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.fill_bytes += other.fill_bytes;
    }
}

const EMPTY: u64 = u64::MAX;

/// The simulator. Single-writer by design: GraphM's fine-grained
/// synchronization serializes chunk processing across jobs (§3.4.2 —
/// "the jobs are triggered to handle the loaded data in a round-robin
/// way"), so the metric replay is deterministic and needs no locking.
pub struct Llc {
    cfg: LlcConfig,
    sets: usize,
    /// `sets * ways` tags; `EMPTY` marks an invalid way.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    tick: u64,
    /// Running counters.
    pub stats: LlcStats,
}

impl Llc {
    /// Creates an empty cache.
    pub fn new(cfg: LlcConfig) -> Llc {
        let sets = cfg.num_sets();
        Llc {
            cfg,
            sets,
            tags: vec![EMPTY; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            tick: 0,
            stats: LlcStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> LlcConfig {
        self.cfg
    }

    /// Touches the line containing `addr`; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes as u64;
        self.access_line(line)
    }

    /// Touches a specific line number; returns `true` on hit.
    pub fn access_line(&mut self, line: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.cfg.ways;
        let ways = &mut self.tags[base..base + self.cfg.ways];
        // Hit?
        for (w, tag) in ways.iter().enumerate() {
            if *tag == line {
                self.stamps[base + w] = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: fill into the invalid or least-recently-used way.
        let mut victim = 0;
        let mut victim_stamp = u64::MAX;
        for w in 0..self.cfg.ways {
            if self.tags[base + w] == EMPTY {
                victim = w;
                break;
            }
            if self.stamps[base + w] < victim_stamp {
                victim_stamp = self.stamps[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.tick;
        self.stats.misses += 1;
        self.stats.fill_bytes += self.cfg.line_bytes as u64;
        false
    }

    /// Touches every line overlapping `[addr, addr + len)`; returns the
    /// number of misses. This is the bulk call the engines use per edge
    /// record / per vertex-state access.
    pub fn access_range(&mut self, addr: u64, len: usize) -> u64 {
        if len == 0 {
            return 0;
        }
        let lb = self.cfg.line_bytes as u64;
        let first = addr / lb;
        let last = (addr + len as u64 - 1) / lb;
        let mut misses = 0;
        for line in first..=last {
            if !self.access_line(line) {
                misses += 1;
            }
        }
        misses
    }

    /// Invalidates every line (keeps counters).
    pub fn flush(&mut self) {
        self.tags.fill(EMPTY);
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// Resets counters (keeps contents).
    pub fn reset_stats(&mut self) {
        self.stats = LlcStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Llc {
        // 4 sets * 2 ways * 64B = 512B cache.
        Llc::new(LlcConfig { capacity_bytes: 512, ways: 2, line_bytes: 64 })
    }

    #[test]
    fn geometry() {
        let c = LlcConfig { capacity_bytes: 512, ways: 2, line_bytes: 64 };
        assert_eq!(c.num_sets(), 4);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut llc = tiny();
        assert!(!llc.access(0));
        assert!(llc.access(0));
        assert!(llc.access(63), "same line");
        assert!(!llc.access(64), "next line");
        assert_eq!(llc.stats.misses, 2);
        assert_eq!(llc.stats.hits, 2);
        assert_eq!(llc.stats.fill_bytes, 128);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut llc = tiny();
        // Lines 0, 4, 8 all map to set 0 (line % 4 == 0); 2 ways.
        let line = |i: u64| i * 4 * 64; // line numbers 0, 4, 8 → addresses
        assert!(!llc.access(line(0)));
        assert!(!llc.access(line(1)));
        assert!(llc.access(line(0)), "refresh line 0");
        assert!(!llc.access(line(2)), "evicts line 4 (LRU)");
        assert!(llc.access(line(0)), "line 0 survived");
        assert!(!llc.access(line(1)), "line 4 was evicted");
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        let mut llc = Llc::new(LlcConfig { capacity_bytes: 4096, ways: 4, line_bytes: 64 });
        for round in 0..3 {
            for addr in (0..4096u64).step_by(64) {
                let hit = llc.access(addr);
                if round > 0 {
                    assert!(hit, "addr {addr} round {round}");
                }
            }
        }
        assert_eq!(llc.stats.misses, 64);
    }

    #[test]
    fn access_range_counts_lines() {
        let mut llc = tiny();
        assert_eq!(llc.access_range(0, 1), 1);
        assert_eq!(llc.access_range(0, 64), 0, "already resident");
        assert_eq!(llc.access_range(60, 8), 1, "straddles into second line");
        assert_eq!(llc.access_range(0, 0), 0);
    }

    #[test]
    fn flush_invalidates() {
        let mut llc = tiny();
        llc.access(0);
        assert_eq!(llc.resident_lines(), 1);
        llc.flush();
        assert_eq!(llc.resident_lines(), 0);
        assert!(!llc.access(0));
    }

    #[test]
    fn miss_rate() {
        let mut llc = tiny();
        assert_eq!(llc.stats.miss_rate(), 0.0);
        llc.access(0);
        llc.access(0);
        assert!((llc.stats.miss_rate() - 0.5).abs() < 1e-12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// hits + misses == accesses, and fill bytes track misses exactly.
        #[test]
        fn accounting_invariant(addrs in proptest::collection::vec(0u64..1u64 << 20, 0..2000)) {
            let mut llc = Llc::new(LlcConfig { capacity_bytes: 8192, ways: 4, line_bytes: 64 });
            for a in addrs {
                llc.access(a);
            }
            prop_assert_eq!(llc.stats.hits + llc.stats.misses, llc.stats.accesses);
            prop_assert_eq!(llc.stats.fill_bytes, llc.stats.misses * 64);
            prop_assert!(llc.resident_lines() <= 8192 / 64);
        }

        /// A larger cache never misses more than a smaller one on the same
        /// sequential stream (no Belady anomaly for LRU on streams).
        #[test]
        fn bigger_cache_fewer_misses_on_scan(lines in 1usize..512, rounds in 1usize..4) {
            let mut small = Llc::new(LlcConfig { capacity_bytes: 4096, ways: 4, line_bytes: 64 });
            let mut big = Llc::new(LlcConfig { capacity_bytes: 16384, ways: 4, line_bytes: 64 });
            for _ in 0..rounds {
                for l in 0..lines {
                    small.access_line(l as u64);
                    big.access_line(l as u64);
                }
            }
            prop_assert!(big.stats.misses <= small.stats.misses);
        }
    }
}
