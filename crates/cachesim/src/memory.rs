//! Buffer-granular main-memory simulator.
//!
//! Models the paper's 32 GB DRAM (scaled down with the datasets; see
//! `graphm_graph::MemoryProfile`). Out-of-core engines load whole graph
//! partitions; the unit of residency here is therefore the *buffer*
//! (partition copy, job state array, chunk table), with LRU eviction of
//! unpinned buffers under capacity pressure. Counters feed Figure 11
//! (memory usage) and Figure 12 (I/O overhead).
//!
//! Pinned buffers (job-specific state, which engines keep hot) always count
//! against capacity; if pinned bytes alone exceed capacity, every unpinned
//! touch faults — the thrashing regime GridGraph-C enters on UK-union in
//! §5.3 ("intense contention ... causes the graph data to be swapped out of
//! the memory").

use std::collections::HashMap;

/// Identifies a simulated allocation. Produced by the caller; the scheme
/// runners derive ids from (job, partition) pairs or shared-region names.
pub type RegionId = u64;

/// Capacity configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemConfig {
    /// DRAM bytes available to graph + job data.
    pub capacity_bytes: usize,
}

impl MemConfig {
    /// Matches `MemoryProfile::DEFAULT` (32 MB).
    pub const DEFAULT: MemConfig = MemConfig { capacity_bytes: 32 << 20 };
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::DEFAULT
    }
}

/// Counters accumulated by the simulator.
#[derive(Clone, Copy, Debug, Default)]
pub struct MemStats {
    /// Bytes read from secondary storage (buffer loads and re-loads).
    pub disk_read_bytes: u64,
    /// Bytes written back (dirty evictions and final releases).
    pub disk_write_bytes: u64,
    /// Number of buffer faults (loads from disk).
    pub faults: u64,
    /// Number of evictions forced by capacity pressure.
    pub evictions: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
}

#[derive(Clone, Debug)]
struct Buffer {
    bytes: usize,
    stamp: u64,
    pinned: bool,
    dirty: bool,
}

/// The simulator.
pub struct MemorySim {
    cfg: MemConfig,
    resident: HashMap<RegionId, Buffer>,
    resident_bytes: usize,
    tick: u64,
    /// Running counters.
    pub stats: MemStats,
}

impl MemorySim {
    /// Creates an empty memory.
    pub fn new(cfg: MemConfig) -> MemorySim {
        MemorySim {
            cfg,
            resident: HashMap::new(),
            resident_bytes: 0,
            tick: 0,
            stats: MemStats::default(),
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.cfg.capacity_bytes
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Whether `region` is currently resident.
    pub fn contains(&self, region: RegionId) -> bool {
        self.resident.contains_key(&region)
    }

    /// Touches `region` of size `bytes`. If absent, it faults in from disk
    /// (counting `bytes` of reads) after evicting LRU unpinned buffers as
    /// needed. Returns `true` when the touch faulted.
    pub fn touch(&mut self, region: RegionId, bytes: usize, pinned: bool) -> bool {
        self.tick += 1;
        if let Some(buf) = self.resident.get_mut(&region) {
            buf.stamp = self.tick;
            buf.pinned |= pinned;
            return false;
        }
        // Fault: make room, then load.
        self.make_room(bytes);
        self.stats.faults += 1;
        self.stats.disk_read_bytes += bytes as u64;
        self.resident.insert(region, Buffer { bytes, stamp: self.tick, pinned, dirty: false });
        self.resident_bytes += bytes;
        self.stats.peak_resident_bytes =
            self.stats.peak_resident_bytes.max(self.resident_bytes as u64);
        true
    }

    /// Like [`MemorySim::touch`] but marks the buffer dirty, so a later
    /// eviction or release writes it back.
    pub fn touch_dirty(&mut self, region: RegionId, bytes: usize, pinned: bool) -> bool {
        let faulted = self.touch(region, bytes, pinned);
        if let Some(buf) = self.resident.get_mut(&region) {
            buf.dirty = true;
        }
        faulted
    }

    /// Makes `region` resident *without* disk traffic — an anonymous
    /// allocation (stream buffer, scratch array) filled from data already
    /// in memory. Counts against capacity and the peak like any buffer.
    pub fn reserve(&mut self, region: RegionId, bytes: usize, pinned: bool) {
        self.tick += 1;
        if let Some(buf) = self.resident.get_mut(&region) {
            buf.stamp = self.tick;
            buf.pinned |= pinned;
            return;
        }
        self.make_room(bytes);
        self.resident.insert(region, Buffer { bytes, stamp: self.tick, pinned, dirty: false });
        self.resident_bytes += bytes;
        self.stats.peak_resident_bytes =
            self.stats.peak_resident_bytes.max(self.resident_bytes as u64);
    }

    /// Removes `region`; dirty contents are written back.
    pub fn release(&mut self, region: RegionId) {
        if let Some(buf) = self.resident.remove(&region) {
            self.resident_bytes -= buf.bytes;
            if buf.dirty {
                self.stats.disk_write_bytes += buf.bytes as u64;
            }
        }
    }

    /// Unpins a buffer so it becomes evictable.
    pub fn unpin(&mut self, region: RegionId) {
        if let Some(buf) = self.resident.get_mut(&region) {
            buf.pinned = false;
        }
    }

    fn make_room(&mut self, incoming: usize) {
        // Evict LRU unpinned buffers until the incoming buffer fits.
        // Oversized buffers (> capacity) load anyway after evicting all
        // unpinned residents — residency then over-commits, mirroring a
        // thrashing OS rather than failing.
        while self.resident_bytes + incoming > self.cfg.capacity_bytes {
            let victim = self
                .resident
                .iter()
                .filter(|(_, b)| !b.pinned)
                .min_by_key(|(_, b)| b.stamp)
                .map(|(&id, _)| id);
            match victim {
                Some(id) => {
                    let buf = self.resident.remove(&id).expect("victim resident");
                    self.resident_bytes -= buf.bytes;
                    self.stats.evictions += 1;
                    if buf.dirty {
                        self.stats.disk_write_bytes += buf.bytes as u64;
                    }
                }
                None => break, // everything pinned: over-commit
            }
        }
    }

    /// Drops every buffer without write-back (test helper / job teardown).
    pub fn clear(&mut self) {
        self.resident.clear();
        self.resident_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(cap: usize) -> MemorySim {
        MemorySim::new(MemConfig { capacity_bytes: cap })
    }

    #[test]
    fn fault_once_then_resident() {
        let mut m = mem(1000);
        assert!(m.touch(1, 400, false));
        assert!(!m.touch(1, 400, false));
        assert_eq!(m.stats.disk_read_bytes, 400);
        assert_eq!(m.resident_bytes(), 400);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut m = mem(1000);
        m.touch(1, 400, false);
        m.touch(2, 400, false);
        m.touch(1, 400, false); // refresh 1
        m.touch(3, 400, false); // evicts 2
        assert!(m.contains(1));
        assert!(!m.contains(2));
        assert!(m.contains(3));
        assert_eq!(m.stats.evictions, 1);
        // Touching 2 again re-reads from disk.
        assert!(m.touch(2, 400, false));
        assert_eq!(m.stats.disk_read_bytes, 4 * 400);
    }

    #[test]
    fn pinned_buffers_survive() {
        let mut m = mem(1000);
        m.touch(1, 500, true);
        m.touch(2, 400, false);
        m.touch(3, 400, false); // must evict 2, not pinned 1
        assert!(m.contains(1));
        assert!(!m.contains(2));
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut m = mem(800);
        m.touch_dirty(1, 400, false);
        m.touch(2, 500, false); // evicts dirty 1
        assert_eq!(m.stats.disk_write_bytes, 400);
        m.touch_dirty(3, 100, false);
        m.release(3);
        assert_eq!(m.stats.disk_write_bytes, 500);
    }

    #[test]
    fn overcommit_when_all_pinned() {
        let mut m = mem(500);
        m.touch(1, 400, true);
        m.touch(2, 400, true); // cannot evict; over-commits
        assert_eq!(m.resident_bytes(), 800);
        assert!(m.contains(1) && m.contains(2));
        // Unpinned data now always faults.
        assert!(m.touch(3, 100, false));
        m.touch(4, 100, false);
        assert!(!m.contains(3), "3 was evicted to make room for 4");
    }

    #[test]
    fn reserve_counts_capacity_not_disk() {
        let mut m = mem(1000);
        m.reserve(1, 400, true);
        assert_eq!(m.stats.disk_read_bytes, 0);
        assert_eq!(m.resident_bytes(), 400);
        assert_eq!(m.stats.peak_resident_bytes, 400);
        // Reserved pinned space squeezes out cached buffers.
        m.touch(2, 700, false);
        assert!(m.contains(1));
        m.touch(3, 500, false);
        assert!(!m.contains(2), "cache evicted under reserve pressure");
    }

    #[test]
    fn peak_tracking() {
        let mut m = mem(10_000);
        m.touch(1, 4000, false);
        m.touch(2, 4000, false);
        m.release(1);
        m.release(2);
        assert_eq!(m.stats.peak_resident_bytes, 8000);
        assert_eq!(m.resident_bytes(), 0);
    }

    #[test]
    fn unpin_allows_eviction() {
        let mut m = mem(500);
        m.touch(1, 400, true);
        m.unpin(1);
        m.touch(2, 400, false);
        assert!(!m.contains(1));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Residency never exceeds capacity unless everything is pinned,
        /// and resident_bytes always equals the sum of resident buffers.
        #[test]
        fn capacity_respected(ops in proptest::collection::vec((0u64..20, 1usize..300, any::<bool>()), 1..200)) {
            let mut m = mem(1024);
            for (region, bytes, pinned) in ops {
                m.touch(region, bytes, pinned);
                let pinned_bytes: usize = m
                    .resident
                    .values()
                    .filter(|b| b.pinned)
                    .map(|b| b.bytes)
                    .sum();
                let sum: usize = m.resident.values().map(|b| b.bytes).sum();
                prop_assert_eq!(sum, m.resident_bytes());
                // Over capacity only when pinned bytes force it.
                if m.resident_bytes() > 1024 {
                    prop_assert!(pinned_bytes + 300 > 1024);
                }
            }
        }
    }

    fn mem(cap: usize) -> MemorySim {
        MemorySim::new(MemConfig { capacity_bytes: cap })
    }
}
