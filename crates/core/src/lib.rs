//! # graphm-core — the GraphM storage system (SC '19)
//!
//! GraphM is a storage runtime that plugs into existing graph processing
//! engines (GridGraph, GraphChi, PowerGraph, Chaos) and makes *concurrent*
//! iterative jobs over the same graph efficient: one shared copy of the
//! graph structure in memory/LLC, traversed by all jobs in a common,
//! chunk-synchronized order.
//!
//! Module map (paper section in parentheses):
//!
//! * [`job`] — the iterative-job abstraction: job-specific data `S`,
//!   active-vertex bitmaps, per-edge update functions (§3.1);
//! * [`chunk`] — Formula-1 chunk sizing and Algorithm-1 partition
//!   labelling into `chunk_table`s (§3.2);
//! * [`global_table`] — partition → active-job tracking (§3.3.1);
//! * [`source`] — how GraphM reads a host engine's partitions (§3.1);
//! * [`graphm`] — `Init()` and the preprocessed instance (§3.1, Table 1);
//! * [`sharing`] — the threaded `Sharing()` runtime: one load, many
//!   consumers, suspend/resume (Algorithm 2, §3.3.1);
//! * [`snapshot`] — copy-on-write mutations/updates (§3.3.2);
//! * [`profile`] — the profiling/syncing phases, Formulas 2–4 (§3.4.2);
//! * [`scheduler`] — the loading-order strategy, Formula 5 (§4);
//! * [`exec`] / [`runner`] — deterministic replay of the S/C/M execution
//!   schemes through the simulated memory hierarchy (§5);
//! * [`service`] — the Shared scheme as a long-lived, incremental-arrival
//!   runtime loop (what the `graphm-server` daemon drives);
//! * [`exec_parallel`] — the wall-clock path: real jobs on one OS thread
//!   each over the threaded [`sharing`] runtime, with optional partition
//!   readahead (what the daemon's `wallclock` mode drives).

pub mod chunk;
pub mod exec;
pub mod exec_parallel;
pub mod global_table;
pub mod graphm;
pub mod job;
pub mod profile;
pub mod runner;
pub mod scheduler;
pub mod service;
pub mod sharing;
pub mod snapshot;
pub mod source;

pub use chunk::{chunk_size_bytes, label_partition, Chunk, ChunkEntry, ChunkTable};
pub use exec::{StreamContext, StreamRun};
pub use exec_parallel::{
    run_shared_wallclock, WallClockConfig, WallClockExecutor, WallJobReport, WallRunReport,
};
pub use global_table::GlobalTable;
pub use graphm::{GraphM, GraphMConfig};
pub use job::{EdgeOutcome, GatherKernel, GraphJob, JobHandle, JobId};
pub use profile::{ProfileSample, Profiler};
pub use runner::{run_scheme, JobReport, RunReport, RunnerConfig, Scheme, Submission};
pub use scheduler::{loading_order, priority, SchedulingPolicy};
pub use service::{JobPhase, SharingService};
pub use sharing::{PrefetchHook, SharedPartition, SharingRuntime};
pub use snapshot::{SnapshotStore, Version};
pub use source::{PartitionSource, VecSource};
