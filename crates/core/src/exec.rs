//! Deterministic streaming executor: replays edge streams through the
//! simulated memory hierarchy and accumulates virtual time.
//!
//! Both the baseline schemes (GridGraph-S/-C, etc.) and the GraphM scheme
//! drive jobs through this one context, so every scheme is measured by the
//! same clock and the same cache — the comparisons in Figures 9–14 differ
//! only in *what addresses they touch* and *in which order*, which is
//! exactly the paper's claim.

use crate::job::GraphJob;
use graphm_cachesim::{
    AddrSpace, CostParams, InstrModel, Llc, LlcConfig, MemConfig, MemorySim, VirtualClock,
};
use graphm_graph::{Edge, MemoryProfile, EDGE_BYTES};

/// Result of streaming a run of edges for one job.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamRun {
    /// Virtual time spent, split by category.
    pub clock: VirtualClock,
    /// Edges looked at.
    pub edges_streamed: u64,
    /// Edges whose source was active (processed by the job).
    pub edges_processed: u64,
    /// Destination activations reported by the job.
    pub activations: u64,
    /// Abstract instructions executed.
    pub instructions: u64,
}

impl StreamRun {
    /// Accumulates another run.
    pub fn merge(&mut self, o: &StreamRun) {
        self.clock.merge(&o.clock);
        self.edges_streamed += o.edges_streamed;
        self.edges_processed += o.edges_processed;
        self.activations += o.activations;
        self.instructions += o.instructions;
    }
}

/// The shared measurement context: one simulated LLC + memory + address
/// space per experiment.
pub struct StreamContext {
    /// Simulated last-level cache.
    pub llc: Llc,
    /// Simulated DRAM.
    pub mem: MemorySim,
    /// Synthetic address allocator.
    pub addr: AddrSpace,
    /// Latency parameters.
    pub cost: CostParams,
    /// Instruction-count model.
    pub instr: InstrModel,
    profile: MemoryProfile,
}

impl StreamContext {
    /// Builds a context whose LLC/memory geometry follows `profile`.
    pub fn new(profile: MemoryProfile) -> StreamContext {
        StreamContext {
            llc: Llc::new(LlcConfig {
                capacity_bytes: profile.llc_bytes,
                ways: profile.llc_ways,
                line_bytes: profile.line_bytes,
            }),
            mem: MemorySim::new(MemConfig { capacity_bytes: profile.memory_bytes }),
            addr: AddrSpace::new(),
            cost: CostParams::DEFAULT,
            instr: InstrModel::DEFAULT,
            profile,
        }
    }

    /// The memory profile this context simulates.
    pub fn profile(&self) -> &MemoryProfile {
        &self.profile
    }

    /// Charges a disk load of `bytes` (seek + sequential transfer) and
    /// returns the virtual nanoseconds spent.
    pub fn disk_load_ns(&self, bytes: usize) -> f64 {
        self.cost.disk_seek_ns + bytes as f64 * self.cost.disk_byte_ns
    }

    /// Touches a memory buffer; on fault, returns the disk time paid.
    pub fn touch_buffer(&mut self, region: u64, bytes: usize, pinned: bool) -> f64 {
        if self.mem.touch(region, bytes, pinned) {
            self.disk_load_ns(bytes)
        } else {
            0.0
        }
    }

    /// Streams `edges` (resident at `edges_addr`) for `job`, whose
    /// per-vertex state array lives at `state_addr`. Honours the job's
    /// inactive-skip behaviour and updates the job's own frontier via
    /// `process_edge`. Returns the run's accounting.
    pub fn stream_edges_for_job(
        &mut self,
        job: &mut dyn GraphJob,
        edges: &[Edge],
        edges_addr: u64,
        state_addr: u64,
    ) -> StreamRun {
        let mut run = StreamRun { edges_streamed: edges.len() as u64, ..Default::default() };
        let sb = job.state_bytes_per_vertex() as u64;
        let skip = job.skips_inactive();
        let cost_factor = job.edge_cost_factor();
        let llc_before = self.llc.stats;
        for (i, e) in edges.iter().enumerate() {
            // The edge record itself is always read from the stream.
            self.llc.access_range(edges_addr + (i * EDGE_BYTES) as u64, EDGE_BYTES);
            if skip && !job.active().get(e.src as usize) {
                run.instructions += 2;
                run.clock.compute_ns += self.cost.skip_edge_ns;
                continue;
            }
            // Job-specific state: read source state, write destination state.
            self.llc.access_range(state_addr + e.src as u64 * sb, sb as usize);
            self.llc.access_range(state_addr + e.dst as u64 * sb, sb as usize);
            let outcome = job.process_edge(e);
            run.edges_processed += 1;
            run.activations += outcome.activated_dst as u64;
            run.instructions += self.instr.per_edge + self.instr.per_vertex;
            run.clock.compute_ns += self.cost.edge_compute_ns * cost_factor;
        }
        let hits = self.llc.stats.hits - llc_before.hits;
        let misses = self.llc.stats.misses - llc_before.misses;
        run.clock.mem_access_ns +=
            hits as f64 * self.cost.llc_hit_ns + misses as f64 * self.cost.llc_miss_ns;
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CountingJob, GraphJob};
    use graphm_graph::generators;

    fn ctx() -> StreamContext {
        StreamContext::new(MemoryProfile::TEST)
    }

    #[test]
    fn stream_processes_all_for_non_skipping_job() {
        let g = generators::ring(64);
        let mut c = ctx();
        let addr = c.addr.alloc(g.size_bytes());
        let saddr = c.addr.alloc(64 * 8);
        let mut job = CountingJob::new(64, 1);
        let run = c.stream_edges_for_job(&mut job, &g.edges, addr, saddr);
        assert_eq!(run.edges_streamed, 64);
        assert_eq!(run.edges_processed, 64);
        assert!(run.clock.compute_ns > 0.0);
        assert!(run.clock.mem_access_ns > 0.0);
        assert!(run.instructions > 0);
        // Every destination counted once.
        assert!(job.vertex_values().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn second_pass_is_cheaper_when_hot() {
        // Working set (64 edges * 12 B + small state) fits the 16 KB test LLC.
        let g = generators::ring(64);
        let mut c = ctx();
        let addr = c.addr.alloc(g.size_bytes());
        let saddr = c.addr.alloc(64 * 8);
        let mut job = CountingJob::new(64, 2);
        let cold = c.stream_edges_for_job(&mut job, &g.edges, addr, saddr);
        let warm = c.stream_edges_for_job(&mut job, &g.edges, addr, saddr);
        assert!(
            warm.clock.mem_access_ns < cold.clock.mem_access_ns,
            "warm {} vs cold {}",
            warm.clock.mem_access_ns,
            cold.clock.mem_access_ns
        );
    }

    #[test]
    fn skipping_job_charges_skip_cost() {
        struct SkipAll {
            active: graphm_graph::AtomicBitmap,
        }
        impl GraphJob for SkipAll {
            fn name(&self) -> &str {
                "SkipAll"
            }
            fn state_bytes_per_vertex(&self) -> usize {
                8
            }
            fn active(&self) -> &graphm_graph::AtomicBitmap {
                &self.active
            }
            fn process_edge(&mut self, _: &Edge) -> crate::job::EdgeOutcome {
                panic!("no edge should be processed");
            }
            fn end_iteration(&mut self) -> bool {
                true
            }
            fn iterations(&self) -> usize {
                0
            }
            fn vertex_values(&self) -> Vec<f64> {
                vec![]
            }
        }
        let g = generators::ring(16);
        let mut c = ctx();
        let addr = c.addr.alloc(g.size_bytes());
        let mut job = SkipAll { active: graphm_graph::AtomicBitmap::new(16) };
        let run = c.stream_edges_for_job(&mut job, &g.edges, addr, addr);
        assert_eq!(run.edges_processed, 0);
        assert_eq!(run.edges_streamed, 16);
        assert_eq!(run.instructions, 32);
    }

    #[test]
    fn touch_buffer_faults_once() {
        let mut c = ctx();
        let t1 = c.touch_buffer(1, 4096, false);
        let t2 = c.touch_buffer(1, 4096, false);
        assert!(t1 > 0.0);
        assert_eq!(t2, 0.0);
        assert!((t1 - c.disk_load_ns(4096)).abs() < 1e-9);
    }

    #[test]
    fn shared_addresses_hit_where_private_miss() {
        // The crux of GraphM: two jobs streaming the SAME address range
        // (shared copy) see warm caches; two private copies do not.
        let g = generators::ring(128);
        let mut shared_ctx = ctx();
        let shared_addr = shared_ctx.addr.alloc(g.size_bytes());
        let s1 = shared_ctx.addr.alloc(128 * 8);
        let s2 = shared_ctx.addr.alloc(128 * 8);
        let mut j1 = CountingJob::new(128, 1);
        let mut j2 = CountingJob::new(128, 1);
        shared_ctx.stream_edges_for_job(&mut j1, &g.edges, shared_addr, s1);
        let shared_run = shared_ctx.stream_edges_for_job(&mut j2, &g.edges, shared_addr, s2);

        let mut priv_ctx = ctx();
        let a1 = priv_ctx.addr.alloc(g.size_bytes());
        let a2 = priv_ctx.addr.alloc(g.size_bytes());
        let p1 = priv_ctx.addr.alloc(128 * 8);
        let p2 = priv_ctx.addr.alloc(128 * 8);
        let mut k1 = CountingJob::new(128, 1);
        let mut k2 = CountingJob::new(128, 1);
        priv_ctx.stream_edges_for_job(&mut k1, &g.edges, a1, p1);
        let private_run = priv_ctx.stream_edges_for_job(&mut k2, &g.edges, a2, p2);

        assert!(
            shared_run.clock.mem_access_ns < private_run.clock.mem_access_ns,
            "sharing must be cheaper: {} vs {}",
            shared_run.clock.mem_access_ns,
            private_run.clock.mem_access_ns
        );
    }
}
