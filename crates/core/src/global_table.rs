//! The global table of §3.3.1.
//!
//! "A global table is created to gather this information. Each entry in the
//! global table is a linked list to store the process IDs of the active
//! jobs of the corresponding graph partition. Each job needs to update the
//! global table in real time."
//!
//! Entries map partition → set of jobs that must process it in the coming
//! iteration; the §4 scheduler reads it to order partition loads, and the
//! sharing controller reads it to decide which jobs to resume/suspend.

use crate::job::JobId;
use parking_lot::RwLock;
use std::collections::BTreeSet;

/// Thread-safe partition → active-job-set table.
pub struct GlobalTable {
    entries: Vec<RwLock<BTreeSet<JobId>>>,
}

impl GlobalTable {
    /// Creates a table over `num_partitions` partitions.
    pub fn new(num_partitions: usize) -> GlobalTable {
        GlobalTable { entries: (0..num_partitions).map(|_| RwLock::new(BTreeSet::new())).collect() }
    }

    /// Number of partitions tracked.
    pub fn num_partitions(&self) -> usize {
        self.entries.len()
    }

    /// Marks partition `pid` active (or not) for `job`.
    pub fn set_active(&self, job: JobId, pid: usize, active: bool) {
        let mut e = self.entries[pid].write();
        if active {
            e.insert(job);
        } else {
            e.remove(&job);
        }
    }

    /// Replaces `job`'s active set with exactly `pids`.
    pub fn set_active_partitions(&self, job: JobId, pids: &[usize]) {
        self.remove_job(job);
        for &pid in pids {
            self.entries[pid].write().insert(job);
        }
    }

    /// Removes `job` from every entry (job finished / retired).
    pub fn remove_job(&self, job: JobId) {
        for e in &self.entries {
            e.write().remove(&job);
        }
    }

    /// The set of jobs that need partition `pid` (`J^i` in Algorithm 2).
    pub fn jobs_for(&self, pid: usize) -> Vec<JobId> {
        self.entries[pid].read().iter().copied().collect()
    }

    /// Number of jobs needing `pid` (`N(J^i)` in Formula 5).
    pub fn num_jobs_for(&self, pid: usize) -> usize {
        self.entries[pid].read().len()
    }

    /// Number of active partitions of `job` (`N_j(P)` in Formula 5).
    pub fn active_partitions_of(&self, job: JobId) -> usize {
        self.entries.iter().filter(|e| e.read().contains(&job)).count()
    }

    /// Partitions with at least one interested job, ascending pid — the
    /// default loading order before the §4 scheduler reorders it.
    pub fn active_partition_ids(&self) -> Vec<usize> {
        (0..self.entries.len()).filter(|&pid| !self.entries[pid].read().is_empty()).collect()
    }

    /// True when no job needs any partition.
    pub fn is_idle(&self) -> bool {
        self.entries.iter().all(|e| e.read().is_empty())
    }

    /// Fraction of active partitions shared by more than `k` jobs — the
    /// spatial-similarity statistic of Figure 4(a).
    pub fn shared_fraction(&self, k: usize) -> f64 {
        let active: Vec<usize> =
            self.entries.iter().map(|e| e.read().len()).filter(|&n| n > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        active.iter().filter(|&&n| n > k).count() as f64 / active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_query() {
        let t = GlobalTable::new(4);
        t.set_active(0, 1, true);
        t.set_active(1, 1, true);
        t.set_active(1, 3, true);
        assert_eq!(t.jobs_for(1), vec![0, 1]);
        assert_eq!(t.num_jobs_for(1), 2);
        assert_eq!(t.active_partitions_of(1), 2);
        assert_eq!(t.active_partition_ids(), vec![1, 3]);
        t.set_active(0, 1, false);
        assert_eq!(t.jobs_for(1), vec![1]);
    }

    #[test]
    fn replace_active_set() {
        let t = GlobalTable::new(4);
        t.set_active_partitions(7, &[0, 2]);
        assert_eq!(t.active_partitions_of(7), 2);
        t.set_active_partitions(7, &[3]);
        assert_eq!(t.active_partitions_of(7), 1);
        assert_eq!(t.jobs_for(3), vec![7]);
        assert!(t.jobs_for(0).is_empty());
    }

    #[test]
    fn remove_job_clears_everywhere() {
        let t = GlobalTable::new(3);
        t.set_active_partitions(1, &[0, 1, 2]);
        t.remove_job(1);
        assert!(t.is_idle());
    }

    #[test]
    fn shared_fraction() {
        let t = GlobalTable::new(4);
        // p0: 3 jobs, p1: 1 job, p2: 2 jobs, p3: none.
        t.set_active_partitions(0, &[0, 1, 2]);
        t.set_active_partitions(1, &[0, 2]);
        t.set_active_partitions(2, &[0]);
        assert!((t.shared_fraction(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((t.shared_fraction(2) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.shared_fraction(3), 0.0);
        let empty = GlobalTable::new(2);
        assert_eq!(empty.shared_fraction(0), 0.0);
    }

    #[test]
    fn concurrent_updates() {
        use std::sync::Arc;
        let t = Arc::new(GlobalTable::new(64));
        let mut handles = Vec::new();
        for job in 0..8usize {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for pid in 0..64 {
                    t.set_active(job, pid, pid % (job + 1) == 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every partition divisible by 1 has job 0.
        assert_eq!(t.active_partitions_of(0), 64);
    }
}
