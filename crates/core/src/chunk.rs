//! Chunk sizing (Formula 1) and partition labelling (Algorithm 1).
//!
//! GraphM never physically splits a partition: it *labels* the partition's
//! edge stream as a sequence of LLC-sized chunks and stores, per chunk, a
//! `chunk_table` of ⟨source vertex, out-degree-in-chunk⟩ pairs. The
//! synchronization manager later reads these tables to compute per-job
//! per-chunk load (Formula 3) without touching the edges themselves.

use graphm_graph::{AtomicBitmap, Edge, MemoryProfile, VertexId, EDGE_BYTES};
use std::ops::Range;

/// Least common multiple of the 12-byte edge record and the 64-byte cache
/// line — the chunk alignment rule of §3.2 ("the size of a chunk is also a
/// common multiple of the size of an edge and the size of a cache line"):
/// 192 bytes (16 edges, 3 lines).
pub const CHUNK_ALIGN_BYTES: usize = 192;

/// Computes the chunk size `S_c` from Formula 1:
///
/// ```text
/// Sc*N + Sc*N/SG * |V| * Uv + r <= C_LLC
/// ```
///
/// solved for the largest `Sc`, then rounded down to a multiple of
/// [`CHUNK_ALIGN_BYTES`] (minimum one alignment unit).
///
/// * `profile` supplies `N` (cores), `C_LLC`, and `r` (reserved bytes);
/// * `graph_bytes` is `S_G`;
/// * `num_vertices` is `|V|`;
/// * `state_bytes_per_vertex` is `U_v`.
pub fn chunk_size_bytes(
    profile: &MemoryProfile,
    graph_bytes: usize,
    num_vertices: VertexId,
    state_bytes_per_vertex: usize,
) -> usize {
    let n = profile.cores.max(1) as f64;
    let budget = profile.llc_bytes.saturating_sub(profile.llc_reserved) as f64;
    let sg = (graph_bytes.max(1)) as f64;
    let vertex_term = num_vertices as f64 * state_bytes_per_vertex as f64 / sg;
    let sc = budget / (n * (1.0 + vertex_term));
    let aligned = (sc as usize / CHUNK_ALIGN_BYTES) * CHUNK_ALIGN_BYTES;
    aligned.max(CHUNK_ALIGN_BYTES)
}

/// One `chunk_table` entry: ⟨v, N+(v)⟩ — a source vertex and the number of
/// its out-going edges inside this chunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Source vertex id.
    pub vertex: VertexId,
    /// Out-degree of `vertex` within the chunk (`N+_k(v)`).
    pub out_edges: u32,
}

/// One labelled chunk of a partition.
#[derive(Clone, Debug)]
pub struct Chunk {
    /// Index range into the partition's edge slice.
    pub edges: Range<usize>,
    /// The key-value table described in §3.2 (`c_table`).
    pub table: Vec<ChunkEntry>,
}

impl Chunk {
    /// Number of edges in this chunk.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Chunk payload size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.num_edges() * EDGE_BYTES
    }

    /// Total out-edges of *active* sources in this chunk:
    /// `Σ_{v ∈ V_k ∩ A_j} N+_k(v)` — the per-job workload term of
    /// Formulas 2–3.
    pub fn active_edges(&self, active: &AtomicBitmap) -> u64 {
        self.table
            .iter()
            .filter(|e| active.get(e.vertex as usize))
            .map(|e| e.out_edges as u64)
            .sum()
    }

    /// True when at least one source vertex in the chunk is active for the
    /// given bitmap (chunk-level activity in §3.4.1).
    pub fn any_active(&self, active: &AtomicBitmap) -> bool {
        self.table.iter().any(|e| active.get(e.vertex as usize))
    }
}

/// The `Set_c^i` of the paper: every chunk of one partition, in streaming
/// order.
#[derive(Clone, Debug, Default)]
pub struct ChunkTable {
    /// Chunks in the order their edges are streamed.
    pub chunks: Vec<Chunk>,
}

impl ChunkTable {
    /// Total number of table entries (drives the extra space overhead the
    /// paper quantifies as 5.5%–19.2% of the graph in §5.2).
    pub fn num_entries(&self) -> usize {
        self.chunks.iter().map(|c| c.table.len()).sum()
    }

    /// Extra storage consumed by the labelling, in bytes (8 bytes per
    /// ⟨v, N+(v)⟩ entry).
    pub fn overhead_bytes(&self) -> usize {
        self.num_entries() * std::mem::size_of::<ChunkEntry>()
    }

    /// Total edges across chunks.
    pub fn num_edges(&self) -> usize {
        self.chunks.iter().map(Chunk::num_edges).sum()
    }

    /// Total out-edges across the whole partition (`Σ_k Σ_v N+_k(v)`,
    /// the `T(E)` coefficient in Formula 2).
    pub fn total_edges(&self) -> u64 {
        self.num_edges() as u64
    }
}

/// Algorithm 1 — labels one partition `P^i` as a series of chunks.
///
/// Walks the edge stream once; each edge increments `N+(e_s)` in the
/// current `c_table` (inserting ⟨e_s, 1⟩ on first sight). When the labelled
/// edges reach the chunk size (`edge_num × S_G/|E| ≥ S_c`, i.e. edge count
/// × bytes-per-edge) or the stream ends, the `c_table` is emitted into the
/// `Set_c` and cleared.
pub fn label_partition(edges: &[Edge], chunk_bytes: usize) -> ChunkTable {
    let chunk_edge_cap = (chunk_bytes / EDGE_BYTES).max(1);
    let mut chunks = Vec::new();
    let mut table: Vec<ChunkEntry> = Vec::new();
    let mut start = 0usize;
    let mut edge_num = 0usize;
    for (idx, e) in edges.iter().enumerate() {
        // Partitions arrive source-sorted from the format converters, so
        // the common case appends to the last entry; the fallback scan
        // keeps the algorithm correct for arbitrary edge order.
        match table.last_mut() {
            Some(last) if last.vertex == e.src => last.out_edges += 1,
            _ => {
                if let Some(entry) = table.iter_mut().find(|t| t.vertex == e.src) {
                    entry.out_edges += 1;
                } else {
                    table.push(ChunkEntry { vertex: e.src, out_edges: 1 });
                }
            }
        }
        edge_num += 1;
        if edge_num >= chunk_edge_cap {
            chunks.push(Chunk { edges: start..idx + 1, table: std::mem::take(&mut table) });
            start = idx + 1;
            edge_num = 0;
        }
    }
    if edge_num > 0 {
        chunks.push(Chunk { edges: start..edges.len(), table });
    }
    ChunkTable { chunks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    #[test]
    fn formula1_shrinks_with_more_state() {
        let p = MemoryProfile::DEFAULT;
        let small_state = chunk_size_bytes(&p, 12_000_000, 100_000, 4);
        let big_state = chunk_size_bytes(&p, 12_000_000, 100_000, 64);
        assert!(big_state <= small_state);
        assert_eq!(small_state % CHUNK_ALIGN_BYTES, 0);
        assert!(small_state >= CHUNK_ALIGN_BYTES);
    }

    #[test]
    fn formula1_matches_closed_form() {
        // Sc*N*(1 + |V|*Uv/SG) <= C_LLC - r, directly.
        let p = MemoryProfile {
            memory_bytes: 1 << 30,
            llc_bytes: 1 << 20,
            llc_ways: 8,
            line_bytes: 64,
            cores: 4,
            llc_reserved: 1 << 16,
        };
        let sc = chunk_size_bytes(&p, 10 << 20, 1 << 20, 8);
        let n = 4.0;
        let lhs = sc as f64 * n
            + sc as f64 * n / (10u64 << 20) as f64 * (1u64 << 20) as f64 * 8.0
            + (1u64 << 16) as f64;
        assert!(lhs <= (1 << 20) as f64, "formula must hold: lhs = {lhs}");
        // And one alignment step larger must violate it.
        let sc2 = sc + CHUNK_ALIGN_BYTES;
        let lhs2 = sc2 as f64 * n * (1.0 + (1u64 << 20) as f64 * 8.0 / (10u64 << 20) as f64)
            + (1u64 << 16) as f64;
        assert!(lhs2 > (1 << 20) as f64, "Sc must be maximal");
    }

    #[test]
    fn label_covers_all_edges_contiguously() {
        let g = generators::rmat(200, 2000, generators::RmatParams::GRAPH500, 17);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let ct = label_partition(&edges, 30 * EDGE_BYTES);
        assert_eq!(ct.num_edges(), 2000);
        let mut next = 0usize;
        for c in &ct.chunks {
            assert_eq!(c.edges.start, next, "chunks must tile the stream");
            next = c.edges.end;
            // Table sums to chunk edge count.
            let sum: u64 = c.table.iter().map(|e| e.out_edges as u64).sum();
            assert_eq!(sum, c.num_edges() as u64);
            // Table is per-vertex: no duplicate keys.
            let mut keys: Vec<_> = c.table.iter().map(|e| e.vertex).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), c.table.len());
        }
        assert_eq!(next, 2000);
        // All chunks but the last are exactly the cap.
        for c in &ct.chunks[..ct.chunks.len() - 1] {
            assert_eq!(c.num_edges(), 30);
        }
    }

    #[test]
    fn label_handles_unsorted_streams() {
        let edges = vec![
            Edge::new(3, 1),
            Edge::new(1, 2),
            Edge::new(3, 0),
            Edge::new(1, 0),
            Edge::new(3, 2),
        ];
        let ct = label_partition(&edges, 100 * EDGE_BYTES);
        assert_eq!(ct.chunks.len(), 1);
        let t = &ct.chunks[0].table;
        assert_eq!(t.len(), 2);
        let three = t.iter().find(|e| e.vertex == 3).unwrap();
        assert_eq!(three.out_edges, 3);
    }

    #[test]
    fn empty_partition_labels_empty() {
        let ct = label_partition(&[], 192);
        assert!(ct.chunks.is_empty());
        assert_eq!(ct.overhead_bytes(), 0);
    }

    #[test]
    fn active_edges_respects_bitmap() {
        let edges = vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2), Edge::new(2, 0)];
        let ct = label_partition(&edges, 100 * EDGE_BYTES);
        let active = AtomicBitmap::new(3);
        active.set(0);
        let c = &ct.chunks[0];
        assert_eq!(c.active_edges(&active), 2);
        assert!(c.any_active(&active));
        active.clear(0);
        assert_eq!(c.active_edges(&active), 0);
        assert!(!c.any_active(&active));
        active.set(2);
        assert_eq!(c.active_edges(&active), 1);
    }

    #[test]
    fn skewed_graph_has_higher_overhead_ratio() {
        // §5.2: graphs with larger max out-degree and lower average
        // out-degree pay a higher chunk-table overhead ratio, because hub
        // vertices replicate across chunks.
        let star = generators::star(2000); // one hub
        let ring = generators::ring(2000); // uniform
        let mut se = star.edges.clone();
        se.sort_by_key(|e| e.src);
        let mut re = ring.edges.clone();
        re.sort_by_key(|e| e.src);
        let cs = 16 * EDGE_BYTES;
        let star_ct = label_partition(&se, cs);
        let ring_ct = label_partition(&re, cs);
        let star_ratio = star_ct.overhead_bytes() as f64 / (se.len() * EDGE_BYTES) as f64;
        let ring_ratio = ring_ct.overhead_bytes() as f64 / (re.len() * EDGE_BYTES) as f64;
        // Star: hub appears once per chunk (low entry count); ring: every
        // vertex appears exactly once → one entry per edge (high count).
        assert!(ring_ratio > star_ratio);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use graphm_graph::generators;
    use proptest::prelude::*;

    proptest! {
        /// Labelling invariants for arbitrary graphs and chunk sizes:
        /// chunks tile the stream, tables sum to chunk sizes, keys unique.
        #[test]
        fn labelling_invariants(n in 1u32..200, m in 0usize..1500, cap in 1usize..80, seed in 0u64..200) {
            let g = generators::erdos_renyi(n, m, seed);
            let mut edges = g.edges.clone();
            edges.sort_by_key(|e| e.src);
            let ct = label_partition(&edges, cap * EDGE_BYTES);
            prop_assert_eq!(ct.num_edges(), m);
            let mut next = 0usize;
            for c in &ct.chunks {
                prop_assert_eq!(c.edges.start, next);
                next = c.edges.end;
                prop_assert!(c.num_edges() <= cap.max(1));
                let sum: u64 = c.table.iter().map(|e| e.out_edges as u64).sum();
                prop_assert_eq!(sum, c.num_edges() as u64);
                let mut keys: Vec<_> = c.table.iter().map(|e| e.vertex).collect();
                keys.sort_unstable();
                let before = keys.len();
                keys.dedup();
                prop_assert_eq!(keys.len(), before);
            }
            prop_assert_eq!(next, m);
        }

        /// Formula 1 result always satisfies the inequality.
        #[test]
        fn formula1_inequality(sg in 1usize..100_000_000, v in 1u32..2_000_000, uv in 1usize..128) {
            let p = MemoryProfile::DEFAULT;
            let sc = chunk_size_bytes(&p, sg, v, uv);
            let n = p.cores as f64;
            let lhs = sc as f64 * n
                + sc as f64 * n / sg as f64 * v as f64 * uv as f64
                + p.llc_reserved as f64;
            // The minimum alignment unit may violate the bound for
            // pathological inputs (huge |V|*Uv/SG); otherwise it must hold.
            if sc > CHUNK_ALIGN_BYTES {
                prop_assert!(lhs <= p.llc_bytes as f64);
            }
        }
    }
}
