//! Wall-clock parallel execution of real jobs over the threaded sharing
//! runtime.
//!
//! The deterministic paths ([`crate::runner`], [`crate::service`]) replay
//! jobs through the simulated memory hierarchy on one OS thread — the
//! right tool for bit-exact figures, the wrong one for serving real
//! traffic. This module is the wall-clock counterpart: a
//! [`WallClockExecutor`] preprocesses a [`PartitionSource`] once
//! (Formula-1 chunk sizing + Algorithm-1 labelling) and then runs batches
//! of [`GraphJob`]s with **one OS thread per job**, all loads routed
//! through the [`SharingRuntime`] (one shared load per `(sweep,
//! partition)`, chunk-paced co-traversal, §4 loading order), producing
//! [`WallJobReport`]s with real elapsed times.
//!
//! Three batch modes share the preprocessing:
//!
//! * [`WallClockExecutor::run_batch`] — the threaded shared path (the
//!   paper's `-M` scheme on real cores);
//! * [`WallClockExecutor::run_batch_single_thread`] — the same shared
//!   sweep loop driven by one thread. Per job, partitions arrive in the
//!   same §4 order and chunks in the same ascending order as the threaded
//!   path *and* the deterministic service, so all three produce
//!   identical vertex values and iteration counts — which is what lets
//!   the daemon switch modes without changing answers;
//! * [`WallClockExecutor::run_batch_exclusive`] — one thread per job with
//!   *private* loads (the `-C` baseline): every job pays `partitions ×
//!   sweeps` loads instead of sharing them.
//!
//! Disk-backed sources can hand the executor a [`PrefetchHook`] (see
//! `graphm_store::Prefetcher`): the runtime announces the §4 order's
//! upcoming window on every partition advance, and a readahead thread
//! issues `madvise(MADV_WILLNEED)` so cold segments fault in under
//! compute.

use crate::global_table::GlobalTable;
use crate::graphm::{GraphM, GraphMConfig};
use crate::job::{GraphJob, JobId};
use crate::scheduler::{loading_order, SchedulingPolicy};
use crate::sharing::{PrefetchHook, SharingRuntime};
use crate::source::PartitionSource;
use graphm_graph::MemoryProfile;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the wall-clock execution path.
#[derive(Clone, Debug)]
pub struct WallClockConfig {
    /// Memory profile supplying Formula 1's cache/memory geometry for
    /// chunk sizing (wall-clock runs use the *real* hierarchy; the
    /// profile only sizes chunks).
    pub profile: MemoryProfile,
    /// §4 loading-order policy.
    pub policy: SchedulingPolicy,
    /// Chunk pacing window (see [`SharingRuntime::new`]; 2 = lock-step).
    pub window: usize,
    /// Safety bound on iterations per job (matches
    /// `RunnerConfig::max_iterations` so modes converge identically).
    pub max_iterations: usize,
    /// Formula 1's `U_v` (job state bytes per vertex).
    pub state_bytes_per_vertex: usize,
    /// Chunk-size override for ablations.
    pub chunk_bytes_override: Option<usize>,
    /// How many upcoming partitions to announce to the prefetch hook on
    /// every advance.
    pub prefetch_lookahead: usize,
}

impl WallClockConfig {
    /// Defaults over `profile`: prioritized scheduling, lock-step window,
    /// 500-iteration guard, 8-byte `U_v`, lookahead 4.
    pub fn new(profile: MemoryProfile) -> WallClockConfig {
        WallClockConfig {
            profile,
            policy: SchedulingPolicy::Prioritized,
            window: 2,
            max_iterations: 500,
            state_bytes_per_vertex: 8,
            chunk_bytes_override: None,
            prefetch_lookahead: 4,
        }
    }
}

impl Default for WallClockConfig {
    fn default() -> Self {
        WallClockConfig::new(MemoryProfile::DEFAULT)
    }
}

/// One job's wall-clock outcome.
#[derive(Clone, Debug)]
pub struct WallJobReport {
    /// Batch-order id (the caller maps these to its own ids).
    pub id: JobId,
    /// Algorithm name.
    pub name: String,
    /// Iterations completed.
    pub iterations: usize,
    /// Active-source edges processed.
    pub edges_processed: u64,
    /// Final per-vertex values.
    pub values: Vec<f64>,
    /// Wall milliseconds this job's thread was alive (includes suspend
    /// time inside `sharing()` — the job-visible latency).
    pub busy_ms: f64,
    /// Wall milliseconds from batch start to this job's completion.
    pub finish_ms: f64,
}

/// A whole batch's wall-clock outcome.
#[derive(Clone, Debug, Default)]
pub struct WallRunReport {
    /// Per-job outcomes, batch order.
    pub jobs: Vec<WallJobReport>,
    /// Wall milliseconds for the whole batch.
    pub total_ms: f64,
    /// Partition loads performed (shared modes: one per `(sweep,
    /// partition)` with interested jobs; exclusive mode: per job).
    pub partition_loads: u64,
}

impl WallRunReport {
    /// Serving throughput over the batch.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.jobs.len() as f64 / (self.total_ms / 1e3)
        }
    }
}

/// Preprocessed wall-clock runtime over one source. See the module docs.
pub struct WallClockExecutor {
    source: Arc<dyn PartitionSource>,
    gm: Arc<GraphM>,
    cfg: WallClockConfig,
    prefetch: Option<PrefetchHook>,
}

impl WallClockExecutor {
    /// Runs `Init()` over `source` (one labelling traversal) and returns
    /// an executor ready to serve batches. `prefetch` is announced the
    /// upcoming loading order during shared threaded batches.
    pub fn new(
        source: Arc<dyn PartitionSource>,
        cfg: WallClockConfig,
        prefetch: Option<PrefetchHook>,
    ) -> WallClockExecutor {
        let mut gm_cfg = GraphMConfig::new(cfg.profile);
        gm_cfg.policy = cfg.policy;
        gm_cfg.chunk_bytes_override = cfg.chunk_bytes_override;
        let gm = Arc::new(GraphM::init(source.as_ref(), cfg.state_bytes_per_vertex, gm_cfg));
        WallClockExecutor { source, gm, cfg, prefetch }
    }

    /// The Formula-1 chunk size the executor preprocessed with.
    pub fn chunk_bytes(&self) -> usize {
        self.gm.chunk_bytes
    }

    /// The preprocessed GraphM instance (chunk tables).
    pub fn graphm(&self) -> &GraphM {
        &self.gm
    }

    fn active_pids(&self, job: &dyn GraphJob) -> Vec<usize> {
        self.source
            .order()
            .into_iter()
            .filter(|&pid| self.gm.partition_active(pid, job.active()))
            .collect()
    }

    /// Runs `jobs` to convergence on one OS thread per job, sharing
    /// partition loads through the [`SharingRuntime`].
    pub fn run_batch(&self, jobs: Vec<Box<dyn GraphJob>>) -> WallRunReport {
        let start = Instant::now();
        if jobs.is_empty() {
            return WallRunReport::default();
        }
        let rt = SharingRuntime::new(Arc::clone(&self.source), self.cfg.policy, self.cfg.window);
        if let Some(hook) = &self.prefetch {
            rt.set_prefetch(Arc::clone(hook), self.cfg.prefetch_lookahead);
        }
        // Register everyone before the first thread starts so the whole
        // batch shares from sweep one.
        for (id, job) in jobs.iter().enumerate() {
            let pids = self.active_pids(job.as_ref());
            rt.register_job(id, &pids);
        }
        let mut handles = Vec::with_capacity(jobs.len());
        for (id, job) in jobs.into_iter().enumerate() {
            let rt = Arc::clone(&rt);
            let gm = Arc::clone(&self.gm);
            let source = Arc::clone(&self.source);
            let max_iterations = self.cfg.max_iterations;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("graphm-wall-{id}"))
                    .spawn(move || {
                        run_job_thread(id, job, &rt, &gm, source.as_ref(), max_iterations, start)
                    })
                    .expect("spawn job thread"),
            );
        }
        let jobs: Vec<WallJobReport> =
            handles.into_iter().map(|h| h.join().expect("job thread panicked")).collect();
        WallRunReport {
            jobs,
            total_ms: start.elapsed().as_secs_f64() * 1e3,
            partition_loads: rt.loads(),
        }
    }

    /// Runs `jobs` through the same shared sweep loop on the calling
    /// thread only. Identical per-job partition/chunk order to
    /// [`WallClockExecutor::run_batch`], hence identical results — this
    /// is the single-core baseline the speedup bench compares against.
    pub fn run_batch_single_thread(&self, jobs: Vec<Box<dyn GraphJob>>) -> WallRunReport {
        let start = Instant::now();
        if jobs.is_empty() {
            return WallRunReport::default();
        }
        struct SingleState {
            job: Box<dyn GraphJob>,
            iterations_guard: usize,
            edges_processed: u64,
            finished: bool,
            finish_ms: f64,
        }
        let global = GlobalTable::new(self.source.num_partitions());
        let mut states: Vec<SingleState> = jobs
            .into_iter()
            .map(|job| SingleState {
                job,
                iterations_guard: 0,
                edges_processed: 0,
                finished: false,
                finish_ms: 0.0,
            })
            .collect();
        for (id, st) in states.iter_mut().enumerate() {
            let pids = self.active_pids(st.job.as_ref());
            global.set_active_partitions(id, &pids);
        }
        let mut partition_loads = 0u64;
        loop {
            let alive: Vec<JobId> =
                states.iter().enumerate().filter(|(_, s)| !s.finished).map(|(i, _)| i).collect();
            if alive.is_empty() {
                break;
            }
            // One sweep, same order the threaded runtime would use.
            let order = loading_order(&global, self.cfg.policy);
            for pid in order {
                let interested = global.jobs_for(pid);
                let needing: Vec<JobId> =
                    alive.iter().copied().filter(|i| interested.contains(i)).collect();
                if needing.is_empty() {
                    continue;
                }
                let edges = self.source.load(pid);
                partition_loads += 1;
                for &i in &needing {
                    let st = &mut states[i];
                    for chunk in &self.gm.tables[pid].chunks {
                        if st.job.skips_inactive() && !chunk.any_active(st.job.active()) {
                            continue;
                        }
                        let skips = st.job.skips_inactive();
                        for e in &edges[chunk.edges.clone()] {
                            if !skips || st.job.active().get(e.src as usize) {
                                st.job.process_edge(e);
                                st.edges_processed += 1;
                            }
                        }
                    }
                }
            }
            for &i in &alive {
                let st = &mut states[i];
                st.iterations_guard += 1;
                let converged =
                    st.job.end_iteration() || st.iterations_guard >= self.cfg.max_iterations;
                let pids = if converged { Vec::new() } else { self.active_pids(st.job.as_ref()) };
                if pids.is_empty() {
                    st.finished = true;
                    st.finish_ms = start.elapsed().as_secs_f64() * 1e3;
                    global.remove_job(i);
                } else {
                    global.set_active_partitions(i, &pids);
                }
            }
        }
        let jobs = states
            .into_iter()
            .enumerate()
            .map(|(id, st)| WallJobReport {
                id,
                name: st.job.name().to_string(),
                iterations: st.job.iterations(),
                edges_processed: st.edges_processed,
                values: st.job.vertex_values(),
                busy_ms: st.finish_ms,
                finish_ms: st.finish_ms,
            })
            .collect();
        WallRunReport { jobs, total_ms: start.elapsed().as_secs_f64() * 1e3, partition_loads }
    }

    /// Runs `jobs` on one thread each with *private* loading — every job
    /// streams every active partition itself, in the engine's native
    /// order, materializing its own copy (the `-C` baseline's cost
    /// model). No sharing, no pacing.
    pub fn run_batch_exclusive(&self, jobs: Vec<Box<dyn GraphJob>>) -> WallRunReport {
        let start = Instant::now();
        if jobs.is_empty() {
            return WallRunReport::default();
        }
        let mut handles = Vec::with_capacity(jobs.len());
        for (id, mut job) in jobs.into_iter().enumerate() {
            let source = Arc::clone(&self.source);
            let gm = Arc::clone(&self.gm);
            let max_iterations = self.cfg.max_iterations;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("graphm-excl-{id}"))
                    .spawn(move || {
                        let mut loads = 0u64;
                        let mut edges_processed = 0u64;
                        let mut iters = 0usize;
                        loop {
                            let pids: Vec<usize> = source
                                .order()
                                .into_iter()
                                .filter(|&pid| gm.partition_active(pid, job.active()))
                                .collect();
                            if pids.is_empty() {
                                break;
                            }
                            let skips = job.skips_inactive();
                            for pid in pids {
                                // The private copy an independent engine
                                // process would hold.
                                let private: Vec<graphm_graph::Edge> =
                                    source.load(pid).as_ref().clone();
                                loads += 1;
                                for e in &private {
                                    if !skips || job.active().get(e.src as usize) {
                                        job.process_edge(e);
                                        edges_processed += 1;
                                    }
                                }
                            }
                            iters += 1;
                            if job.end_iteration() || iters >= max_iterations {
                                break;
                            }
                        }
                        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                        (
                            WallJobReport {
                                id,
                                name: job.name().to_string(),
                                iterations: job.iterations(),
                                edges_processed,
                                values: job.vertex_values(),
                                busy_ms: elapsed_ms,
                                finish_ms: elapsed_ms,
                            },
                            loads,
                        )
                    })
                    .expect("spawn job thread"),
            );
        }
        let mut jobs = Vec::with_capacity(handles.len());
        let mut partition_loads = 0u64;
        for h in handles {
            let (report, loads) = h.join().expect("job thread panicked");
            jobs.push(report);
            partition_loads += loads;
        }
        WallRunReport { jobs, total_ms: start.elapsed().as_secs_f64() * 1e3, partition_loads }
    }
}

/// One job's thread: `Sharing()` loads, chunk pacing, barriers, iteration
/// turnover — Table 1's programming interface verbatim.
fn run_job_thread(
    id: JobId,
    mut job: Box<dyn GraphJob>,
    rt: &SharingRuntime,
    gm: &GraphM,
    source: &dyn PartitionSource,
    max_iterations: usize,
    batch_start: Instant,
) -> WallJobReport {
    let thread_start = Instant::now();
    let mut edges_processed = 0u64;
    let mut iters = 0usize;
    loop {
        while let Some(sp) = rt.sharing(id) {
            let table = &gm.tables[sp.pid];
            let skips = job.skips_inactive();
            for (ci, chunk) in table.chunks.iter().enumerate() {
                rt.pace_chunk(id, ci);
                if skips && !chunk.any_active(job.active()) {
                    continue;
                }
                for e in &sp.edges[chunk.edges.clone()] {
                    if !skips || job.active().get(e.src as usize) {
                        job.process_edge(e);
                        edges_processed += 1;
                    }
                }
            }
            rt.barrier(id, sp.pid);
        }
        iters += 1;
        let converged = job.end_iteration() || iters >= max_iterations;
        if converged {
            rt.end_iteration(id, None);
            break;
        }
        let pids: Vec<usize> = source
            .order()
            .into_iter()
            .filter(|&pid| gm.partition_active(pid, job.active()))
            .collect();
        if pids.is_empty() {
            rt.end_iteration(id, None);
            break;
        }
        rt.end_iteration(id, Some(&pids));
    }
    WallJobReport {
        id,
        name: job.name().to_string(),
        iterations: job.iterations(),
        edges_processed,
        values: job.vertex_values(),
        busy_ms: thread_start.elapsed().as_secs_f64() * 1e3,
        finish_ms: batch_start.elapsed().as_secs_f64() * 1e3,
    }
}

/// Convenience one-shot: preprocess `source` and run one threaded shared
/// batch (see [`WallClockExecutor`]; daemons should hold an executor and
/// amortize the preprocessing instead).
pub fn run_shared_wallclock(
    source: Arc<dyn PartitionSource>,
    jobs: Vec<Box<dyn GraphJob>>,
    cfg: &WallClockConfig,
    prefetch: Option<PrefetchHook>,
) -> WallRunReport {
    WallClockExecutor::new(source, cfg.clone(), prefetch).run_batch(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::CountingJob;
    use crate::source::VecSource;
    use graphm_graph::generators;

    fn source(parts: usize) -> Arc<VecSource> {
        let g = generators::rmat(256, 4096, generators::RmatParams::GRAPH500, 17);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let per = edges.len().div_ceil(parts);
        Arc::new(VecSource::new(256, edges.chunks(per).map(<[_]>::to_vec).collect()))
    }

    fn counting_jobs(n: usize, iters: usize) -> Vec<Box<dyn GraphJob>> {
        (0..n).map(|_| Box::new(CountingJob::new(256, iters)) as Box<dyn GraphJob>).collect()
    }

    fn executor(parts: usize) -> WallClockExecutor {
        let cfg = WallClockConfig::new(MemoryProfile::TEST);
        WallClockExecutor::new(source(parts), cfg, None)
    }

    #[test]
    fn threaded_and_single_thread_agree_bit_for_bit() {
        let exec = executor(4);
        let threaded = exec.run_batch(counting_jobs(4, 3));
        let single = exec.run_batch_single_thread(counting_jobs(4, 3));
        assert_eq!(threaded.jobs.len(), 4);
        assert_eq!(threaded.partition_loads, single.partition_loads, "same shared loads");
        for (t, s) in threaded.jobs.iter().zip(&single.jobs) {
            assert_eq!(t.id, s.id);
            assert_eq!(t.name, s.name);
            assert_eq!(t.iterations, s.iterations);
            assert_eq!(t.edges_processed, s.edges_processed);
            assert_eq!(t.values, s.values, "job {}", t.id);
        }
        // 4 partitions x 3 sweeps, loaded once each.
        assert_eq!(threaded.partition_loads, 12);
        assert!(threaded.total_ms > 0.0);
        assert!(threaded.jobs_per_sec() > 0.0);
    }

    #[test]
    fn exclusive_pays_per_job_loads() {
        let exec = executor(4);
        let shared = exec.run_batch(counting_jobs(3, 2));
        let exclusive = exec.run_batch_exclusive(counting_jobs(3, 2));
        // Same answers...
        for (a, b) in shared.jobs.iter().zip(&exclusive.jobs) {
            assert_eq!(a.values, b.values);
            assert_eq!(a.iterations, b.iterations);
        }
        // ...but the exclusive path loads jobs x partitions x sweeps.
        assert_eq!(exclusive.partition_loads, 3 * 4 * 2);
        assert_eq!(shared.partition_loads, 4 * 2);
    }

    #[test]
    fn empty_batch_is_empty() {
        let exec = executor(2);
        let r = exec.run_batch(Vec::new());
        assert!(r.jobs.is_empty());
        assert_eq!(r.partition_loads, 0);
        assert_eq!(exec.run_batch_single_thread(Vec::new()).jobs.len(), 0);
        assert_eq!(exec.run_batch_exclusive(Vec::new()).jobs.len(), 0);
    }

    #[test]
    fn one_shot_wrapper_runs() {
        let cfg = WallClockConfig::new(MemoryProfile::TEST);
        let r = run_shared_wallclock(source(3), counting_jobs(2, 2), &cfg, None);
        assert_eq!(r.jobs.len(), 2);
        for j in &r.jobs {
            let total: f64 = j.values.iter().sum();
            assert_eq!(total as u64, 2 * 4096, "two sweeps count every edge");
        }
    }
}
