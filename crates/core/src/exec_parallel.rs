//! Wall-clock parallel execution of real jobs over the threaded sharing
//! runtime.
//!
//! The deterministic paths ([`crate::runner`], [`crate::service`]) replay
//! jobs through the simulated memory hierarchy on one OS thread — the
//! right tool for bit-exact figures, the wrong one for serving real
//! traffic. This module is the wall-clock counterpart: a
//! [`WallClockExecutor`] preprocesses a [`PartitionSource`] once
//! (Formula-1 chunk sizing + Algorithm-1 labelling) and then runs batches
//! of [`GraphJob`]s with **one OS thread per job**, all loads routed
//! through the [`SharingRuntime`] (one shared load per `(sweep,
//! partition)`, chunk-paced co-traversal, §4 loading order), producing
//! [`WallJobReport`]s with real elapsed times.
//!
//! Three batch modes share the preprocessing:
//!
//! * [`WallClockExecutor::run_batch`] — the threaded shared path (the
//!   paper's `-M` scheme on real cores);
//! * [`WallClockExecutor::run_batch_single_thread`] — the same shared
//!   sweep loop driven by one thread. Per job, partitions arrive in the
//!   same §4 order and chunks in the same ascending order as the threaded
//!   path *and* the deterministic service, so all three produce
//!   identical vertex values and iteration counts — which is what lets
//!   the daemon switch modes without changing answers;
//! * [`WallClockExecutor::run_batch_exclusive`] — one thread per job with
//!   *private* loads (the `-C` baseline): every job pays `partitions ×
//!   sweeps` loads instead of sharing them.
//!
//! Disk-backed sources can hand the executor a [`PrefetchHook`] (see
//! `graphm_store::Prefetcher`): the runtime announces the §4 order's
//! upcoming window on every partition advance, and a readahead thread
//! issues `madvise(MADV_WILLNEED)` so cold segments fault in under
//! compute.
//!
//! # Intra-job chunk fan-out
//!
//! One thread per job saturates the machine only while jobs outnumber
//! cores. With [`WallClockConfig::chunk_fanout`] on (the default), each
//! job additionally fans the *parallelizable slice* of its per-partition
//! chunk loop across the process-wide worker pool, so a single heavy job
//! uses idle cores too (the paper's Figure-20 regime at low concurrency).
//! Results stay bit-identical to the serial loop because only
//! order-insensitive work leaves the job's thread:
//!
//! * jobs that skip inactive vertices (BFS/SSSP/WCC): worker threads scan
//!   chunks concurrently and collect the indices of active-source edges —
//!   a pure function of the job's frontier bitmap, which is stable for
//!   the whole iteration — and the job's thread then replays
//!   `process_edge` over exactly the edges, in exactly the order, the
//!   serial loop would have processed;
//! * jobs with a [`crate::GatherKernel`] (PageRank-family): workers
//!   compute per-edge contributions from iteration-stable state in
//!   parallel, and the job's thread applies them serially in edge order,
//!   so every floating-point accumulation happens in the sequential
//!   order;
//! * everything else falls back to the serial chunk loop.
//!
//! §4 pacing is preserved per chunk *index*: the job's thread still calls
//! `pace_chunk` for every chunk in ascending order and only chunks inside
//! the currently-paced window are in flight on workers; the partition
//! barrier runs after the serial apply completes, exactly as before.

use crate::global_table::GlobalTable;
use crate::graphm::{GraphM, GraphMConfig};
use crate::job::{GatherKernel, GraphJob, JobId};
use crate::scheduler::{loading_order, SchedulingPolicy};
use crate::sharing::{PrefetchHook, SharedPartition, SharingRuntime};
use crate::source::PartitionSource;
use graphm_graph::{AtomicBitmap, MemoryProfile};
use parking_lot::Mutex;
use rayon::ThreadPool;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the wall-clock execution path.
#[derive(Clone, Debug)]
pub struct WallClockConfig {
    /// Memory profile supplying Formula 1's cache/memory geometry for
    /// chunk sizing (wall-clock runs use the *real* hierarchy; the
    /// profile only sizes chunks).
    pub profile: MemoryProfile,
    /// §4 loading-order policy.
    pub policy: SchedulingPolicy,
    /// Chunk pacing window (see [`SharingRuntime::new`]; 2 = lock-step).
    pub window: usize,
    /// Safety bound on iterations per job (matches
    /// `RunnerConfig::max_iterations` so modes converge identically).
    pub max_iterations: usize,
    /// Formula 1's `U_v` (job state bytes per vertex).
    pub state_bytes_per_vertex: usize,
    /// Chunk-size override for ablations.
    pub chunk_bytes_override: Option<usize>,
    /// Upper bound on the prefetch window: how many upcoming partitions
    /// to announce to the prefetch hook on every advance. Adaptive disk
    /// sources advise only their current feedback-controlled window of
    /// these (grow on misses, shrink when hits saturate or residency
    /// approaches the memory budget); the fixed-depth behaviour of old
    /// configs is the degenerate case of adaptivity disabled.
    pub max_prefetch_lookahead: usize,
    /// Fan each partition's chunk loop across the worker pool where the
    /// job supports it (see the module docs). Off = the strict
    /// one-thread-per-job loop.
    pub chunk_fanout: bool,
}

impl WallClockConfig {
    /// Defaults over `profile`: prioritized scheduling, lock-step window,
    /// 500-iteration guard, 8-byte `U_v`, 16-deep announced lookahead,
    /// chunk fan-out on.
    pub fn new(profile: MemoryProfile) -> WallClockConfig {
        WallClockConfig {
            profile,
            policy: SchedulingPolicy::Prioritized,
            window: 2,
            max_iterations: 500,
            state_bytes_per_vertex: 8,
            chunk_bytes_override: None,
            max_prefetch_lookahead: 16,
            chunk_fanout: true,
        }
    }
}

impl Default for WallClockConfig {
    fn default() -> Self {
        WallClockConfig::new(MemoryProfile::DEFAULT)
    }
}

/// One job's wall-clock outcome.
#[derive(Clone, Debug)]
pub struct WallJobReport {
    /// Batch-order id (the caller maps these to its own ids).
    pub id: JobId,
    /// Algorithm name.
    pub name: String,
    /// Iterations completed.
    pub iterations: usize,
    /// Active-source edges processed.
    pub edges_processed: u64,
    /// Final per-vertex values.
    pub values: Vec<f64>,
    /// Wall milliseconds this job's thread was alive (includes suspend
    /// time inside `sharing()` — the job-visible latency).
    pub busy_ms: f64,
    /// Wall milliseconds from batch start to this job's completion.
    pub finish_ms: f64,
    /// Set when the job failed instead of converging — a shared load
    /// error (real or injected I/O fault) or a panicking kernel.
    /// `iterations`/`values` reflect whatever state the job reached.
    /// `None` = completed normally. A failed job never poisons its
    /// batch: co-batched jobs finish with their usual results.
    pub error: Option<String>,
}

/// A whole batch's wall-clock outcome.
#[derive(Clone, Debug, Default)]
pub struct WallRunReport {
    /// Per-job outcomes, batch order.
    pub jobs: Vec<WallJobReport>,
    /// Wall milliseconds for the whole batch.
    pub total_ms: f64,
    /// Partition loads performed (shared modes: one per `(sweep,
    /// partition)` with interested jobs; exclusive mode: per job).
    pub partition_loads: u64,
}

impl WallRunReport {
    /// Serving throughput over the batch.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.total_ms <= 0.0 {
            0.0
        } else {
            self.jobs.len() as f64 / (self.total_ms / 1e3)
        }
    }
}

/// Preprocessed wall-clock runtime over one source. See the module docs.
pub struct WallClockExecutor {
    source: Arc<dyn PartitionSource>,
    gm: Arc<GraphM>,
    cfg: WallClockConfig,
    prefetch: Option<PrefetchHook>,
    /// Worker pool for intra-job chunk fan-out; `None` = the process-wide
    /// [`ThreadPool::global`] pool.
    pool: Option<Arc<ThreadPool>>,
}

impl WallClockExecutor {
    /// Runs `Init()` over `source` (one labelling traversal) and returns
    /// an executor ready to serve batches. `prefetch` is announced the
    /// upcoming loading order during shared threaded batches.
    pub fn new(
        source: Arc<dyn PartitionSource>,
        cfg: WallClockConfig,
        prefetch: Option<PrefetchHook>,
    ) -> WallClockExecutor {
        let mut gm_cfg = GraphMConfig::new(cfg.profile);
        gm_cfg.policy = cfg.policy;
        gm_cfg.chunk_bytes_override = cfg.chunk_bytes_override;
        let gm = Arc::new(GraphM::init(source.as_ref(), cfg.state_bytes_per_vertex, gm_cfg));
        WallClockExecutor { source, gm, cfg, prefetch, pool: None }
    }

    /// Overrides the chunk fan-out pool (the global pool otherwise).
    /// Tests use an explicit multi-lane pool so fan-out is exercised even
    /// on single-core machines.
    pub fn with_pool(mut self, pool: Arc<ThreadPool>) -> WallClockExecutor {
        self.pool = Some(pool);
        self
    }

    /// The Formula-1 chunk size the executor preprocessed with.
    pub fn chunk_bytes(&self) -> usize {
        self.gm.chunk_bytes
    }

    /// The preprocessed GraphM instance (chunk tables).
    pub fn graphm(&self) -> &GraphM {
        &self.gm
    }

    fn active_pids(&self, job: &dyn GraphJob) -> Vec<usize> {
        self.source
            .order()
            .into_iter()
            .filter(|&pid| self.gm.partition_active(pid, job.active()))
            .collect()
    }

    /// Runs `jobs` to convergence on one OS thread per job, sharing
    /// partition loads through the [`SharingRuntime`].
    pub fn run_batch(&self, jobs: Vec<Box<dyn GraphJob>>) -> WallRunReport {
        let start = Instant::now();
        if jobs.is_empty() {
            return WallRunReport::default();
        }
        let rt = SharingRuntime::new(Arc::clone(&self.source), self.cfg.policy, self.cfg.window);
        if let Some(hook) = &self.prefetch {
            rt.set_prefetch(Arc::clone(hook), self.cfg.max_prefetch_lookahead);
        }
        // Register everyone before the first thread starts so the whole
        // batch shares from sweep one.
        for (id, job) in jobs.iter().enumerate() {
            let pids = self.active_pids(job.as_ref());
            rt.register_job(id, &pids);
        }
        let names: Vec<String> = jobs.iter().map(|j| j.name().to_string()).collect();
        let mut handles = Vec::with_capacity(jobs.len());
        for (id, job) in jobs.into_iter().enumerate() {
            let rt = Arc::clone(&rt);
            let gm = Arc::clone(&self.gm);
            let source = Arc::clone(&self.source);
            let max_iterations = self.cfg.max_iterations;
            let fanout = self.cfg.chunk_fanout;
            let pool = self.pool.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("graphm-wall-{id}"))
                    .spawn(move || {
                        let pool: Option<&ThreadPool> = if fanout {
                            Some(match pool.as_deref() {
                                Some(p) => p,
                                None => ThreadPool::global(),
                            })
                        } else {
                            None
                        };
                        run_job_thread(
                            id,
                            job,
                            &rt,
                            &gm,
                            source.as_ref(),
                            max_iterations,
                            start,
                            pool,
                        )
                    })
                    .expect("spawn job thread"),
            );
        }
        // `run_job_thread` catches kernel panics itself, so a join error
        // means the thread died without unwinding (e.g. a panic-in-panic
        // abort path). Belt-and-braces: abandon the job so peers keep
        // progressing and synthesize a failed report — never kill the
        // batch for one job.
        let jobs: Vec<WallJobReport> = handles
            .into_iter()
            .enumerate()
            .map(|(id, h)| match h.join() {
                Ok(report) => report,
                Err(_) => {
                    rt.abandon(id);
                    WallJobReport {
                        id,
                        name: names[id].clone(),
                        iterations: 0,
                        edges_processed: 0,
                        values: Vec::new(),
                        busy_ms: 0.0,
                        finish_ms: start.elapsed().as_secs_f64() * 1e3,
                        error: Some("job thread died unexpectedly".to_string()),
                    }
                }
            })
            .collect();
        WallRunReport {
            jobs,
            total_ms: start.elapsed().as_secs_f64() * 1e3,
            partition_loads: rt.loads(),
        }
    }

    /// Runs `jobs` through the same shared sweep loop on the calling
    /// thread only. Identical per-job partition/chunk order to
    /// [`WallClockExecutor::run_batch`], hence identical results — this
    /// is the single-core baseline the speedup bench compares against.
    pub fn run_batch_single_thread(&self, jobs: Vec<Box<dyn GraphJob>>) -> WallRunReport {
        let start = Instant::now();
        if jobs.is_empty() {
            return WallRunReport::default();
        }
        struct SingleState {
            job: Box<dyn GraphJob>,
            iterations_guard: usize,
            edges_processed: u64,
            finished: bool,
            finish_ms: f64,
        }
        let global = GlobalTable::new(self.source.num_partitions());
        let mut states: Vec<SingleState> = jobs
            .into_iter()
            .map(|job| SingleState {
                job,
                iterations_guard: 0,
                edges_processed: 0,
                finished: false,
                finish_ms: 0.0,
            })
            .collect();
        for (id, st) in states.iter_mut().enumerate() {
            let pids = self.active_pids(st.job.as_ref());
            global.set_active_partitions(id, &pids);
        }
        let mut partition_loads = 0u64;
        loop {
            let alive: Vec<JobId> =
                states.iter().enumerate().filter(|(_, s)| !s.finished).map(|(i, _)| i).collect();
            if alive.is_empty() {
                break;
            }
            // One sweep, same order the threaded runtime would use.
            let order = loading_order(&global, self.cfg.policy);
            for pid in order {
                let interested = global.jobs_for(pid);
                let needing: Vec<JobId> =
                    alive.iter().copied().filter(|i| interested.contains(i)).collect();
                if needing.is_empty() {
                    continue;
                }
                let edges = self.source.load(pid);
                partition_loads += 1;
                for &i in &needing {
                    let st = &mut states[i];
                    for chunk in &self.gm.tables[pid].chunks {
                        if st.job.skips_inactive() && !chunk.any_active(st.job.active()) {
                            continue;
                        }
                        let skips = st.job.skips_inactive();
                        for e in &edges[chunk.edges.clone()] {
                            if !skips || st.job.active().get(e.src as usize) {
                                st.job.process_edge(e);
                                st.edges_processed += 1;
                            }
                        }
                    }
                }
            }
            for &i in &alive {
                let st = &mut states[i];
                st.iterations_guard += 1;
                let converged =
                    st.job.end_iteration() || st.iterations_guard >= self.cfg.max_iterations;
                let pids = if converged { Vec::new() } else { self.active_pids(st.job.as_ref()) };
                if pids.is_empty() {
                    st.finished = true;
                    st.finish_ms = start.elapsed().as_secs_f64() * 1e3;
                    global.remove_job(i);
                } else {
                    global.set_active_partitions(i, &pids);
                }
            }
        }
        let jobs = states
            .into_iter()
            .enumerate()
            .map(|(id, st)| WallJobReport {
                id,
                name: st.job.name().to_string(),
                iterations: st.job.iterations(),
                edges_processed: st.edges_processed,
                values: st.job.vertex_values(),
                busy_ms: st.finish_ms,
                finish_ms: st.finish_ms,
                error: None,
            })
            .collect();
        WallRunReport { jobs, total_ms: start.elapsed().as_secs_f64() * 1e3, partition_loads }
    }

    /// Runs `jobs` on one thread each with *private* loading — every job
    /// streams every active partition itself, in the engine's native
    /// order, materializing its own copy (the `-C` baseline's cost
    /// model). No sharing, no pacing.
    pub fn run_batch_exclusive(&self, jobs: Vec<Box<dyn GraphJob>>) -> WallRunReport {
        let start = Instant::now();
        if jobs.is_empty() {
            return WallRunReport::default();
        }
        let names: Vec<String> = jobs.iter().map(|j| j.name().to_string()).collect();
        let mut handles = Vec::with_capacity(jobs.len());
        for (id, mut job) in jobs.into_iter().enumerate() {
            let source = Arc::clone(&self.source);
            let gm = Arc::clone(&self.gm);
            let max_iterations = self.cfg.max_iterations;
            handles.push(
                std::thread::Builder::new()
                    .name(format!("graphm-excl-{id}"))
                    .spawn(move || {
                        let mut loads = 0u64;
                        let mut edges_processed = 0u64;
                        let mut iters = 0usize;
                        loop {
                            let pids: Vec<usize> = source
                                .order()
                                .into_iter()
                                .filter(|&pid| gm.partition_active(pid, job.active()))
                                .collect();
                            if pids.is_empty() {
                                break;
                            }
                            let skips = job.skips_inactive();
                            for pid in pids {
                                // The private copy an independent engine
                                // process would hold.
                                let private: Vec<graphm_graph::Edge> =
                                    source.load(pid).as_ref().clone();
                                loads += 1;
                                for e in &private {
                                    if !skips || job.active().get(e.src as usize) {
                                        job.process_edge(e);
                                        edges_processed += 1;
                                    }
                                }
                            }
                            iters += 1;
                            if job.end_iteration() || iters >= max_iterations {
                                break;
                            }
                        }
                        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                        (
                            WallJobReport {
                                id,
                                name: job.name().to_string(),
                                iterations: job.iterations(),
                                edges_processed,
                                values: job.vertex_values(),
                                busy_ms: elapsed_ms,
                                finish_ms: elapsed_ms,
                                error: None,
                            },
                            loads,
                        )
                    })
                    .expect("spawn job thread"),
            );
        }
        let mut jobs = Vec::with_capacity(handles.len());
        let mut partition_loads = 0u64;
        for (id, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok((report, loads)) => {
                    jobs.push(report);
                    partition_loads += loads;
                }
                // Private loads, no shared runtime: a panicking job only
                // owes its own failed report.
                Err(payload) => jobs.push(WallJobReport {
                    id,
                    name: names[id].clone(),
                    iterations: 0,
                    edges_processed: 0,
                    values: Vec::new(),
                    busy_ms: 0.0,
                    finish_ms: start.elapsed().as_secs_f64() * 1e3,
                    error: Some(format!("job panicked: {}", panic_message(payload.as_ref()))),
                }),
            }
        }
        WallRunReport { jobs, total_ms: start.elapsed().as_secs_f64() * 1e3, partition_loads }
    }
}

/// Renders a panic payload for a failed [`WallJobReport`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

/// One job's thread: `Sharing()` loads, chunk pacing, barriers, iteration
/// turnover — Table 1's programming interface verbatim. With `pool` set,
/// the per-partition chunk loop fans out (see the module docs); results
/// are bit-identical either way.
///
/// Failure isolation: a shared-load error retires the job through the
/// normal protocol (barrier, then end), and a panicking kernel is caught
/// here and removed via [`SharingRuntime::abandon`]. Either way the job
/// returns a report with [`WallJobReport::error`] set and its co-batched
/// peers keep sweeping.
#[allow(clippy::too_many_arguments)]
fn run_job_thread(
    id: JobId,
    mut job: Box<dyn GraphJob>,
    rt: &SharingRuntime,
    gm: &GraphM,
    source: &dyn PartitionSource,
    max_iterations: usize,
    batch_start: Instant,
    pool: Option<&ThreadPool>,
) -> WallJobReport {
    let thread_start = Instant::now();
    let name = job.name().to_string();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_job_protocol(id, job.as_mut(), rt, gm, source, max_iterations, pool)
    }));
    let (edges_processed, error) = match outcome {
        Ok(Ok(edges)) => (edges, None),
        Ok(Err((edges, msg))) => (edges, Some(msg)),
        Err(payload) => {
            // The job can no longer follow the sharing protocol; pull it
            // out so peers waiting on its barrier/end keep progressing.
            rt.abandon(id);
            (0, Some(format!("job panicked: {}", panic_message(payload.as_ref()))))
        }
    };
    WallJobReport {
        id,
        name,
        iterations: job.iterations(),
        edges_processed,
        values: job.vertex_values(),
        busy_ms: thread_start.elapsed().as_secs_f64() * 1e3,
        finish_ms: batch_start.elapsed().as_secs_f64() * 1e3,
        error,
    }
}

/// The protocol loop of [`run_job_thread`]. Returns the edges processed,
/// or `Err((edges_so_far, message))` when the job retired on a shared
/// load error.
fn run_job_protocol(
    id: JobId,
    job: &mut dyn GraphJob,
    rt: &SharingRuntime,
    gm: &GraphM,
    source: &dyn PartitionSource,
    max_iterations: usize,
    pool: Option<&ThreadPool>,
) -> Result<u64, (u64, String)> {
    let mut edges_processed = 0u64;
    let mut iters = 0usize;
    // Fan out only where worker lanes exist; a one-lane pool would just
    // run every task on this thread with extra bookkeeping.
    let pool = pool.filter(|p| p.num_threads() > 1);
    loop {
        // Kernel extraction and the frontier snapshot are per-iteration:
        // both capture iteration-stable state (the kernel is dropped
        // before `end_iteration` mutates it; the frontier copy matches
        // `job.active()` for the whole iteration by the trait contract).
        let kernel = match pool {
            Some(_) if !job.skips_inactive() => job.gather_kernel(),
            _ => None,
        };
        let frontier = match pool {
            Some(_) if job.skips_inactive() => Some(job.active().clone()),
            _ => None,
        };
        while let Some(sp) = rt.sharing(id) {
            if let Some(msg) = &sp.error {
                // The shared load failed: honor the barrier (peers must
                // advance) and retire through the normal protocol, then
                // report this job — and only this job — as failed.
                let msg = msg.clone();
                rt.barrier(id, sp.pid);
                drop(kernel);
                rt.end_iteration(id, None);
                return Err((edges_processed, msg));
            }
            let table = &gm.tables[sp.pid];
            match (pool, &kernel, &frontier) {
                (Some(pool), Some(kernel), _) if table.chunks.len() > 1 => {
                    edges_processed += stream_partition_gather(
                        pool,
                        rt,
                        id,
                        &mut *job,
                        kernel.as_ref(),
                        table,
                        &sp,
                    );
                }
                // The filter path stores edge indices as u32; a partition
                // at or past that bound (unreachable with realistic grid
                // sizing) streams serially instead of truncating.
                (Some(pool), None, Some(frontier))
                    if table.chunks.len() > 1 && sp.edges.len() < u32::MAX as usize =>
                {
                    edges_processed +=
                        stream_partition_filter(pool, rt, id, &mut *job, frontier, table, &sp);
                }
                _ => {
                    let skips = job.skips_inactive();
                    for (ci, chunk) in table.chunks.iter().enumerate() {
                        rt.pace_chunk(id, ci);
                        if skips && !chunk.any_active(job.active()) {
                            continue;
                        }
                        for e in &sp.edges[chunk.edges.clone()] {
                            if !skips || job.active().get(e.src as usize) {
                                job.process_edge(e);
                                edges_processed += 1;
                            }
                        }
                    }
                }
            }
            rt.barrier(id, sp.pid);
        }
        drop(kernel);
        iters += 1;
        let converged = job.end_iteration() || iters >= max_iterations;
        if converged {
            rt.end_iteration(id, None);
            break;
        }
        let pids: Vec<usize> = source
            .order()
            .into_iter()
            .filter(|&pid| gm.partition_active(pid, job.active()))
            .collect();
        if pids.is_empty() {
            rt.end_iteration(id, None);
            break;
        }
        rt.end_iteration(id, Some(&pids));
    }
    Ok(edges_processed)
}

/// Per-chunk hand-off between gather/filter workers and the serially
/// applying job thread: workers `put` their chunk's output as it
/// completes, the job thread takes chunks strictly in order —
/// opportunistically while still pacing/spawning, blocking only for the
/// tail — so the serial apply overlaps the in-flight gathers instead of
/// waiting for the whole partition.
struct SlotBoard<T> {
    slots: Mutex<Vec<Option<T>>>,
    cv: parking_lot::Condvar,
}

impl<T> SlotBoard<T> {
    fn new(n: usize) -> SlotBoard<T> {
        SlotBoard {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            cv: parking_lot::Condvar::new(),
        }
    }

    fn put(&self, i: usize, value: T) {
        let mut slots = self.slots.lock();
        debug_assert!(slots[i].is_none(), "chunk slot filled twice");
        slots[i] = Some(value);
        drop(slots);
        self.cv.notify_all();
    }

    fn try_take(&self, i: usize) -> Option<T> {
        self.slots.lock()[i].take()
    }

    fn take_blocking(&self, i: usize) -> T {
        let mut slots = self.slots.lock();
        loop {
            if let Some(v) = slots[i].take() {
                return v;
            }
            self.cv.wait(&mut slots);
        }
    }
}

/// Cap on completed-but-unapplied chunks per partition fan-out. Without
/// a bound, a fast worker pool could buffer nearly a whole partition's
/// gathered outputs ahead of the serial apply — a transient memory spike
/// that would undercut the out-of-core budget this PR models. 64 chunks
/// of slack is ample pipeline depth at a few MB worst case.
const MAX_INFLIGHT_CHUNKS: usize = 64;

/// Shared fan-out orchestration over one partition's chunks: paces chunk
/// indices in ascending order (the §4 barrier stays per index), spawns a
/// `produce` task per non-skipped chunk, and applies completed chunks
/// strictly in order on the calling thread — opportunistically while
/// still pacing/spawning, blocking only for the tail — so the serial
/// apply overlaps the in-flight producers. At most
/// [`MAX_INFLIGHT_CHUNKS`] completed chunks are ever buffered. Returns
/// the summed `apply` results (edges processed).
fn fanout_chunks<T: Send + Default>(
    pool: &ThreadPool,
    rt: &SharingRuntime,
    id: JobId,
    nchunks: usize,
    skip: impl Fn(usize) -> bool + Sync,
    produce: impl Fn(usize) -> T + Sync,
    mut apply: impl FnMut(usize, T) -> u64,
) -> u64 {
    let board: SlotBoard<T> = SlotBoard::new(nchunks);
    let mut edges_processed = 0u64;
    let mut next_apply = 0usize;
    pool.scope(|s| {
        for ci in 0..nchunks {
            // Bound the buffered pipeline before admitting another chunk.
            while ci - next_apply >= MAX_INFLIGHT_CHUNKS {
                let out = board.take_blocking(next_apply);
                edges_processed += apply(next_apply, out);
                next_apply += 1;
            }
            // The pacing barrier stays per chunk index: a chunk enters
            // flight only once its index is admitted to the window.
            rt.pace_chunk(id, ci);
            if skip(ci) {
                // Same chunk-level skip the serial loop performs.
                board.put(ci, T::default());
            } else {
                let board = &board;
                let produce = &produce;
                s.spawn(move || {
                    // A panicking producer must still fill its slot —
                    // otherwise the applier would block on it forever and
                    // the panic could never propagate. The placeholder is
                    // never trusted: re-raising here records the panic in
                    // the scope, which resurfaces it on the job thread as
                    // soon as the partition drains.
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| produce(ci)));
                    match result {
                        Ok(out) => board.put(ci, out),
                        Err(payload) => {
                            board.put(ci, T::default());
                            std::panic::resume_unwind(payload);
                        }
                    }
                });
            }
            // Apply whatever is already done, in order, while later
            // chunks produce.
            while next_apply < ci {
                match board.try_take(next_apply) {
                    Some(out) => {
                        edges_processed += apply(next_apply, out);
                        next_apply += 1;
                    }
                    None => break,
                }
            }
        }
        while next_apply < nchunks {
            let out = board.take_blocking(next_apply);
            edges_processed += apply(next_apply, out);
            next_apply += 1;
        }
    });
    edges_processed
}

/// Gather-kernel fan-out over one partition: workers gather per-chunk
/// contribution vectors concurrently, while the job's thread applies
/// completed chunks serially in edge order — the exact mutation sequence
/// of the serial loop, pipelined behind the gathers. Returns the edges
/// processed.
fn stream_partition_gather(
    pool: &ThreadPool,
    rt: &SharingRuntime,
    id: JobId,
    job: &mut dyn GraphJob,
    kernel: &dyn GatherKernel,
    table: &crate::chunk::ChunkTable,
    sp: &SharedPartition,
) -> u64 {
    fanout_chunks(
        pool,
        rt,
        id,
        table.chunks.len(),
        |_ci| false,
        |ci| {
            let edges = &sp.edges[table.chunks[ci].edges.clone()];
            let mut out = Vec::with_capacity(edges.len());
            kernel.gather(edges, &mut out);
            out
        },
        |ci, gathered: Vec<f64>| {
            let chunk = &table.chunks[ci];
            debug_assert_eq!(gathered.len(), chunk.edges.len(), "kernel must gather every edge");
            job.apply_gathered_chunk(&sp.edges[chunk.edges.clone()], &gathered)
        },
    )
}

/// Active-filter fan-out over one partition (jobs that skip inactive
/// sources): workers scan chunks concurrently against `frontier` — the
/// job thread's per-iteration snapshot of [`GraphJob::active`], which the
/// trait guarantees is stable for the whole iteration — collecting the
/// indices of edges whose source is active, while the job's thread runs
/// `process_edge` over exactly those edges in the serial order, pipelined
/// behind the scans. The caller guarantees the partition holds fewer than
/// `u32::MAX` edges (indices are stored compactly). Returns the edges
/// processed.
fn stream_partition_filter(
    pool: &ThreadPool,
    rt: &SharingRuntime,
    id: JobId,
    job: &mut dyn GraphJob,
    frontier: &AtomicBitmap,
    table: &crate::chunk::ChunkTable,
    sp: &SharedPartition,
) -> u64 {
    debug_assert!(sp.edges.len() <= u32::MAX as usize, "guarded at the call site");
    fanout_chunks(
        pool,
        rt,
        id,
        table.chunks.len(),
        |ci| !table.chunks[ci].any_active(frontier),
        |ci| {
            let chunk = &table.chunks[ci];
            let base = chunk.edges.start;
            let mut idxs = Vec::new();
            for (i, e) in sp.edges[chunk.edges.clone()].iter().enumerate() {
                if frontier.get(e.src as usize) {
                    idxs.push((base + i) as u32);
                }
            }
            idxs
        },
        |_ci, idxs: Vec<u32>| {
            let mut n = 0u64;
            for i in idxs {
                job.process_edge(&sp.edges[i as usize]);
                n += 1;
            }
            n
        },
    )
}

/// Convenience one-shot: preprocess `source` and run one threaded shared
/// batch (see [`WallClockExecutor`]; daemons should hold an executor and
/// amortize the preprocessing instead).
pub fn run_shared_wallclock(
    source: Arc<dyn PartitionSource>,
    jobs: Vec<Box<dyn GraphJob>>,
    cfg: &WallClockConfig,
    prefetch: Option<PrefetchHook>,
) -> WallRunReport {
    WallClockExecutor::new(source, cfg.clone(), prefetch).run_batch(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CountingJob, EdgeOutcome};
    use crate::source::VecSource;
    use graphm_graph::{generators, Edge};

    fn source(parts: usize) -> Arc<VecSource> {
        let g = generators::rmat(256, 4096, generators::RmatParams::GRAPH500, 17);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let per = edges.len().div_ceil(parts);
        Arc::new(VecSource::new(256, edges.chunks(per).map(<[_]>::to_vec).collect()))
    }

    fn counting_jobs(n: usize, iters: usize) -> Vec<Box<dyn GraphJob>> {
        (0..n).map(|_| Box::new(CountingJob::new(256, iters)) as Box<dyn GraphJob>).collect()
    }

    fn executor(parts: usize) -> WallClockExecutor {
        let cfg = WallClockConfig::new(MemoryProfile::TEST);
        WallClockExecutor::new(source(parts), cfg, None)
    }

    /// A BFS-like frontier job (no gather kernel, skips inactive sources)
    /// exercising the parallel active-filter path.
    struct FrontierJob {
        levels: Vec<f64>,
        active: AtomicBitmap,
        next_active: AtomicBitmap,
        discovered: bool,
        iters: usize,
    }

    impl FrontierJob {
        fn new(n: usize, root: usize) -> FrontierJob {
            let mut levels = vec![f64::INFINITY; n];
            levels[root] = 0.0;
            let active = AtomicBitmap::new(n);
            active.set(root);
            FrontierJob {
                levels,
                active,
                next_active: AtomicBitmap::new(n),
                discovered: false,
                iters: 0,
            }
        }
    }

    impl GraphJob for FrontierJob {
        fn name(&self) -> &str {
            "Frontier"
        }
        fn state_bytes_per_vertex(&self) -> usize {
            8
        }
        fn active(&self) -> &AtomicBitmap {
            &self.active
        }
        fn process_edge(&mut self, e: &Edge) -> EdgeOutcome {
            if self.levels[e.dst as usize].is_infinite() {
                self.levels[e.dst as usize] = self.levels[e.src as usize] + 1.0;
                self.next_active.set(e.dst as usize);
                self.discovered = true;
                return EdgeOutcome { activated_dst: true };
            }
            EdgeOutcome { activated_dst: false }
        }
        fn end_iteration(&mut self) -> bool {
            self.iters += 1;
            self.active.copy_from(&self.next_active);
            self.next_active.clear_all();
            let converged = !self.discovered;
            self.discovered = false;
            converged
        }
        fn iterations(&self) -> usize {
            self.iters
        }
        fn vertex_values(&self) -> Vec<f64> {
            self.levels.clone()
        }
    }

    fn assert_same_reports(a: &WallRunReport, b: &WallRunReport) {
        assert_eq!(a.jobs.len(), b.jobs.len());
        assert_eq!(a.partition_loads, b.partition_loads, "shared load count must not change");
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.name, y.name);
            assert_eq!(x.iterations, y.iterations, "job {}", x.id);
            assert_eq!(x.edges_processed, y.edges_processed, "job {}", x.id);
            assert_eq!(x.values.len(), y.values.len());
            for (va, vb) in x.values.iter().zip(&y.values) {
                assert_eq!(va.to_bits(), vb.to_bits(), "job {}", x.id);
            }
        }
    }

    /// The gather-kernel fan-out (CountingJob) on an explicit multi-lane
    /// pool produces bit-identical reports to both the no-fanout threaded
    /// path and the single-thread baseline.
    #[test]
    fn gather_fanout_matches_serial_bit_for_bit() {
        let src = source(4);
        let mut cfg = WallClockConfig::new(MemoryProfile::TEST);
        cfg.chunk_bytes_override = Some(1152); // many chunks per partition
        let fan = WallClockExecutor::new(src.clone(), cfg.clone(), None)
            .with_pool(Arc::new(ThreadPool::new(4)));
        cfg.chunk_fanout = false;
        let serial = WallClockExecutor::new(src, cfg, None);
        let a = fan.run_batch(counting_jobs(3, 3));
        let b = serial.run_batch(counting_jobs(3, 3));
        let c = fan.run_batch_single_thread(counting_jobs(3, 3));
        assert_same_reports(&a, &b);
        assert_same_reports(&a, &c);
    }

    /// The active-filter fan-out (FrontierJob skips inactive sources)
    /// produces bit-identical reports to the no-fanout path, including
    /// iteration counts driven by frontier convergence.
    #[test]
    fn filter_fanout_matches_serial_bit_for_bit() {
        let src = source(4);
        let mut cfg = WallClockConfig::new(MemoryProfile::TEST);
        cfg.chunk_bytes_override = Some(1152);
        let mk = |roots: &[usize]| {
            roots
                .iter()
                .map(|&r| Box::new(FrontierJob::new(256, r)) as Box<dyn GraphJob>)
                .collect::<Vec<_>>()
        };
        let fan = WallClockExecutor::new(src.clone(), cfg.clone(), None)
            .with_pool(Arc::new(ThreadPool::new(4)));
        cfg.chunk_fanout = false;
        let serial = WallClockExecutor::new(src, cfg, None);
        let roots = [0usize, 17, 3];
        let a = fan.run_batch(mk(&roots));
        let b = serial.run_batch(mk(&roots));
        assert_same_reports(&a, &b);
        assert!(a.jobs[0].iterations > 1, "frontier job must actually traverse");
    }

    /// A producer panic must surface on the job thread — never wedge the
    /// applier waiting on an unfilled slot — and convert to a *failed
    /// report* for that job alone: co-batched jobs finish with results
    /// bit-identical to a batch that never contained the saboteur.
    #[test]
    fn panicking_kernel_becomes_failed_report_without_poisoning_batch() {
        struct BoomKernel;
        impl crate::job::GatherKernel for BoomKernel {
            fn gather(&self, _edges: &[Edge], _out: &mut Vec<f64>) {
                panic!("kernel boom");
            }
        }
        struct BoomJob(CountingJob);
        impl GraphJob for BoomJob {
            fn name(&self) -> &str {
                "Boom"
            }
            fn state_bytes_per_vertex(&self) -> usize {
                8
            }
            fn skips_inactive(&self) -> bool {
                false
            }
            fn active(&self) -> &AtomicBitmap {
                self.0.active()
            }
            fn process_edge(&mut self, e: &Edge) -> EdgeOutcome {
                self.0.process_edge(e)
            }
            fn gather_kernel(&self) -> Option<Arc<dyn crate::job::GatherKernel>> {
                Some(Arc::new(BoomKernel))
            }
            fn end_iteration(&mut self) -> bool {
                self.0.end_iteration()
            }
            fn iterations(&self) -> usize {
                self.0.iterations()
            }
            fn vertex_values(&self) -> Vec<f64> {
                self.0.vertex_values()
            }
        }
        let mut cfg = WallClockConfig::new(MemoryProfile::TEST);
        cfg.chunk_bytes_override = Some(1152);
        let exec =
            WallClockExecutor::new(source(2), cfg, None).with_pool(Arc::new(ThreadPool::new(3)));
        // Reference: the survivors without the saboteur.
        let reference = exec.run_batch(counting_jobs(2, 2));
        let mut jobs = counting_jobs(2, 2);
        jobs.push(Box::new(BoomJob(CountingJob::new(256, 2))) as Box<dyn GraphJob>);
        let mixed = exec.run_batch(jobs);
        assert_eq!(mixed.jobs.len(), 3);
        let boom = &mixed.jobs[2];
        let err = boom.error.as_deref().expect("the panicking job must report an error");
        assert!(err.contains("kernel boom"), "error carries the panic message: {err}");
        for (r, m) in reference.jobs.iter().zip(&mixed.jobs[..2]) {
            assert!(m.error.is_none(), "survivor {} must not fail", m.id);
            assert_eq!(r.iterations, m.iterations, "survivor {}", m.id);
            assert_eq!(r.edges_processed, m.edges_processed, "survivor {}", m.id);
            for (a, b) in r.values.iter().zip(&m.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "survivor {}", m.id);
            }
        }
    }

    /// Stress satellite: intra-job chunk fan-out under mid-sweep
    /// registration (the PR 3 stress harness combined with the parallel
    /// chunk loop). Pins that with workers fanning chunks out while jobs
    /// keep joining mid-sweep, per-job results still match solo serial
    /// runs and the Formula-5 shared load count stays one per
    /// `(sweep, partition)` with interested jobs (not per job).
    #[test]
    fn stress_fanout_mid_sweep_registration_keeps_results_and_loads() {
        let parts = 4usize;
        let src = source(parts);
        let mut gm_cfg = GraphMConfig::new(MemoryProfile::TEST);
        gm_cfg.chunk_bytes_override = Some(1152);
        let gm = Arc::new(GraphM::init(src.as_ref(), 8, gm_cfg));
        let rt = SharingRuntime::new(
            Arc::clone(&src) as Arc<dyn PartitionSource>,
            SchedulingPolicy::Prioritized,
            2,
        );
        let pool = Arc::new(ThreadPool::new(4));
        let batch_start = Instant::now();

        // Reference outcomes: each job type run alone, serially.
        let solo = |job: Box<dyn GraphJob>| {
            let mut cfg = WallClockConfig::new(MemoryProfile::TEST);
            cfg.chunk_bytes_override = Some(1152);
            cfg.chunk_fanout = false;
            let exec = WallClockExecutor::new(src.clone(), cfg, None);
            let r = exec.run_batch_single_thread(vec![job]);
            r.jobs.into_iter().next().unwrap()
        };
        let counting_ref = solo(Box::new(CountingJob::new(256, 6)));
        let frontier_ref = solo(Box::new(FrontierJob::new(256, 0)));

        let spawn_job = |id: JobId, job: Box<dyn GraphJob>| {
            let rt = Arc::clone(&rt);
            let gm = Arc::clone(&gm);
            let src = Arc::clone(&src);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                run_job_thread(id, job, &rt, &gm, src.as_ref(), 500, batch_start, Some(&pool))
            })
        };

        // Four residents start together...
        let mut handles = Vec::new();
        for id in 0..4usize {
            let pids: Vec<usize> = (0..parts).collect();
            rt.register_job(id, &pids);
        }
        for id in 0..4usize {
            let job: Box<dyn GraphJob> = if id % 2 == 0 {
                Box::new(CountingJob::new(256, 6))
            } else {
                Box::new(FrontierJob::new(256, 0))
            };
            handles.push(spawn_job(id, job));
        }
        // ...and six more join while sweeps are in flight.
        for id in 4..10usize {
            std::thread::sleep(std::time::Duration::from_millis(1 + (id as u64 % 3)));
            let job: Box<dyn GraphJob> = if id % 2 == 0 {
                Box::new(CountingJob::new(256, 6))
            } else {
                Box::new(FrontierJob::new(256, 0))
            };
            let pids: Vec<usize> = if id % 2 == 0 {
                (0..parts).collect()
            } else {
                // Frontier jobs start with only the root's partitions
                // active — same derivation run_batch would use.
                let f = FrontierJob::new(256, 0);
                src.order()
                    .into_iter()
                    .filter(|&pid| gm.partition_active(pid, f.active()))
                    .collect()
            };
            rt.register_job(id, &pids);
            handles.push(spawn_job(id, job));
        }
        let reports: Vec<WallJobReport> =
            handles.into_iter().map(|h| h.join().expect("job thread panicked")).collect();
        for r in &reports {
            let reference = if r.name == "Counting" { &counting_ref } else { &frontier_ref };
            assert_eq!(r.iterations, reference.iterations, "job {}", r.id);
            assert_eq!(r.edges_processed, reference.edges_processed, "job {}", r.id);
            for (a, b) in r.values.iter().zip(&reference.values) {
                assert_eq!(a.to_bits(), b.to_bits(), "job {} ({})", r.id, r.name);
            }
        }
        // Formula-5 sharing: far fewer loads than per-job exclusive
        // streaming would pay, and at least one full sweep's worth.
        let per_job: u64 = reports.iter().map(|r| r.iterations as u64 * parts as u64).sum();
        assert!(rt.loads() < per_job, "{} loads vs {} per-job", rt.loads(), per_job);
        assert!(rt.loads() >= parts as u64);
    }

    #[test]
    fn threaded_and_single_thread_agree_bit_for_bit() {
        let exec = executor(4);
        let threaded = exec.run_batch(counting_jobs(4, 3));
        let single = exec.run_batch_single_thread(counting_jobs(4, 3));
        assert_eq!(threaded.jobs.len(), 4);
        assert_eq!(threaded.partition_loads, single.partition_loads, "same shared loads");
        for (t, s) in threaded.jobs.iter().zip(&single.jobs) {
            assert_eq!(t.id, s.id);
            assert_eq!(t.name, s.name);
            assert_eq!(t.iterations, s.iterations);
            assert_eq!(t.edges_processed, s.edges_processed);
            assert_eq!(t.values, s.values, "job {}", t.id);
        }
        // 4 partitions x 3 sweeps, loaded once each.
        assert_eq!(threaded.partition_loads, 12);
        assert!(threaded.total_ms > 0.0);
        assert!(threaded.jobs_per_sec() > 0.0);
    }

    #[test]
    fn exclusive_pays_per_job_loads() {
        let exec = executor(4);
        let shared = exec.run_batch(counting_jobs(3, 2));
        let exclusive = exec.run_batch_exclusive(counting_jobs(3, 2));
        // Same answers...
        for (a, b) in shared.jobs.iter().zip(&exclusive.jobs) {
            assert_eq!(a.values, b.values);
            assert_eq!(a.iterations, b.iterations);
        }
        // ...but the exclusive path loads jobs x partitions x sweeps.
        assert_eq!(exclusive.partition_loads, 3 * 4 * 2);
        assert_eq!(shared.partition_loads, 4 * 2);
    }

    #[test]
    fn empty_batch_is_empty() {
        let exec = executor(2);
        let r = exec.run_batch(Vec::new());
        assert!(r.jobs.is_empty());
        assert_eq!(r.partition_loads, 0);
        assert_eq!(exec.run_batch_single_thread(Vec::new()).jobs.len(), 0);
        assert_eq!(exec.run_batch_exclusive(Vec::new()).jobs.len(), 0);
    }

    #[test]
    fn one_shot_wrapper_runs() {
        let cfg = WallClockConfig::new(MemoryProfile::TEST);
        let r = run_shared_wallclock(source(3), counting_jobs(2, 2), &cfg, None);
        assert_eq!(r.jobs.len(), 2);
        for j in &r.jobs {
            let total: f64 = j.values.iter().sum();
            assert_eq!(total as u64, 2 * 4096, "two sweeps count every edge");
        }
    }
}
