//! Deterministic multi-job scheme runners.
//!
//! The paper compares three execution schemes of each host engine (§5.1):
//!
//! * **`-S`** (sequential) — jobs run one after another, each alone;
//! * **`-C`** (concurrent) — jobs run at once, each with a *private* copy
//!   of the graph, interleaved by the OS scheduler;
//! * **`-M`** (GraphM) — jobs run at once against *one shared* copy,
//!   chunk-synchronized by the Share-Synchronize runtime.
//!
//! All three replay through the same [`StreamContext`] (same simulated LLC,
//! memory, cost model); they differ only in the address streams and load
//! orders they generate — which is precisely the paper's claim about where
//! the throughput gap comes from.
//!
//! Virtual makespan model: disk transfers serialize on one device while CPU
//! work spreads over `N` cores, so elapsed time is
//! `max(io_ns, cpu_ns / N) + sync_ns`, applied per job for `-S` (jobs are
//! sequential) and globally for `-C`/`-M` (jobs overlap).

use crate::exec::{StreamContext, StreamRun};
use crate::job::{GraphJob, JobId};
use crate::scheduler::SchedulingPolicy;
use crate::source::PartitionSource;
use graphm_cachesim::{keys, Metrics, VirtualClock};
use graphm_graph::{MemoryProfile, EDGE_BYTES};
use std::collections::HashMap;
use std::sync::Arc;

/// Which execution scheme to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// One job at a time (`GridGraph-S` et al.).
    Sequential,
    /// Concurrent private copies (`GridGraph-C` et al.).
    Concurrent,
    /// Concurrent with GraphM sharing (`GridGraph-M` et al.).
    Shared,
}

impl Scheme {
    /// Paper-style suffix ("S", "C", "M").
    pub fn suffix(self) -> &'static str {
        match self {
            Scheme::Sequential => "S",
            Scheme::Concurrent => "C",
            Scheme::Shared => "M",
        }
    }
}

/// A job plus its submission time (Poisson arrivals in §5.1).
pub struct Submission {
    /// The job to run.
    pub job: Box<dyn GraphJob>,
    /// Virtual submission timestamp in nanoseconds.
    pub submit_ns: f64,
}

impl Submission {
    /// Submits `job` at time zero.
    pub fn immediate(job: Box<dyn GraphJob>) -> Submission {
        Submission { job, submit_ns: 0.0 }
    }

    /// Submits `job` at `submit_ns`.
    pub fn at(job: Box<dyn GraphJob>, submit_ns: f64) -> Submission {
        Submission { job, submit_ns }
    }
}

/// Runner configuration shared by the three schemes.
#[derive(Clone, Copy, Debug)]
pub struct RunnerConfig {
    /// Simulated hierarchy (cores, LLC, memory).
    pub profile: MemoryProfile,
    /// §4 loading-order policy (Shared scheme only).
    pub policy: SchedulingPolicy,
    /// Edge quantum for the Concurrent scheme's OS-style interleaving.
    pub quantum_edges: usize,
    /// Fine-grained chunk synchronization (Shared scheme; ablation toggle).
    pub fine_sync: bool,
    /// Chunk-size override for ablations.
    pub chunk_bytes_override: Option<usize>,
    /// Graph larger than memory (affects labelling cost accounting).
    pub out_of_core: bool,
    /// Safety bound on iterations per job.
    pub max_iterations: usize,
    /// How many cores one streaming job can use productively. Edge
    /// streaming is memory-bound, so a single job saturates well below the
    /// machine's core count; `k` concurrent jobs fill
    /// `min(cores, k × single_job_parallelism)` cores. This is why the
    /// paper's `-M` and `-C` schemes outperform `-S` even in memory
    /// (Figure 20's core-scaling behaviour).
    pub single_job_parallelism: f64,
}

impl RunnerConfig {
    /// Defaults over the given profile.
    pub fn new(profile: MemoryProfile) -> RunnerConfig {
        RunnerConfig {
            profile,
            policy: SchedulingPolicy::Prioritized,
            quantum_edges: 512,
            fine_sync: true,
            chunk_bytes_override: None,
            out_of_core: false,
            max_iterations: 500,
            single_job_parallelism: 4.0,
        }
    }

    /// Effective parallel speedup available to `k` concurrently running
    /// jobs on this profile.
    pub fn effective_parallelism(&self, k: usize) -> f64 {
        (self.profile.cores as f64).min(k as f64 * self.single_job_parallelism).max(1.0)
    }
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig::new(MemoryProfile::DEFAULT)
    }
}

/// Per-job outcome.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Submission-order id.
    pub id: JobId,
    /// Algorithm name.
    pub name: String,
    /// Iterations completed.
    pub iterations: usize,
    /// Virtual time breakdown.
    pub clock: VirtualClock,
    /// Abstract instructions executed.
    pub instructions: u64,
    /// Edges processed (active-source edges).
    pub edges_processed: u64,
    /// Submission timestamp.
    pub submit_ns: f64,
    /// Completion timestamp on the shared virtual clock.
    pub finish_ns: f64,
    /// Final per-vertex values (oracle comparison).
    pub values: Vec<f64>,
    /// Why the job failed, if it did not run to convergence (injected or
    /// real I/O errors on the shared read path, or a panicking kernel).
    /// Failed jobs report the iterations/values they reached; `None`
    /// means the job completed normally.
    pub error: Option<String>,
}

impl JobReport {
    /// Job latency as observed by its submitter.
    pub fn turnaround_ns(&self) -> f64 {
        self.finish_ns - self.submit_ns
    }
}

/// Whole-run outcome.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scheme executed.
    pub scheme: Scheme,
    /// Aggregate counters (see [`graphm_cachesim::keys`]).
    pub metrics: Metrics,
    /// Per-job outcomes, submission order.
    pub jobs: Vec<JobReport>,
    /// Virtual makespan in nanoseconds.
    pub makespan_ns: f64,
}

impl RunReport {
    /// Mean job turnaround (Figure 3(d)'s "average execution time").
    pub fn avg_job_turnaround_ns(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.jobs.iter().map(JobReport::turnaround_ns).sum::<f64>() / self.jobs.len() as f64
        }
    }
}

/// Runs `subs` against `source` under `scheme`.
pub fn run_scheme(
    scheme: Scheme,
    subs: Vec<Submission>,
    source: &dyn PartitionSource,
    cfg: &RunnerConfig,
) -> RunReport {
    match scheme {
        Scheme::Sequential => run_sequential(subs, source, cfg),
        Scheme::Concurrent => run_concurrent(subs, source, cfg),
        Scheme::Shared => run_shared(subs, source, cfg),
    }
}

// ---------------------------------------------------------------------------
// Region/address helpers.
// ---------------------------------------------------------------------------

const KIND_STATE: u64 = 1 << 56;
const KIND_SHARED_GRAPH: u64 = 2 << 56;
pub(crate) const KIND_META: u64 = 4 << 56;
const KIND_STREAM_BUF: u64 = 5 << 56;

pub(crate) fn state_region(job: JobId) -> u64 {
    KIND_STATE | job as u64
}

/// Graph partitions live in the OS page cache, shared by every scheme:
/// GridGraph memory-maps its grid files, so even independent `-C`
/// processes share the physical pages (§5.3 — "this graph is cached in
/// the memory via memory mapping and only needs to be read from disks
/// once"). What `-C` does NOT share is *timing*: uncoordinated traversal
/// phases drag different partitions through the LLC at once, which is the
/// interference GraphM's regularized streaming removes.
pub(crate) fn shared_graph_region(pid: usize) -> u64 {
    KIND_SHARED_GRAPH | pid as u64
}

/// Each `-C` job (an independent engine process) additionally pins a
/// private streaming read buffer of one partition.
fn stream_buf_region(job: JobId) -> u64 {
    KIND_STREAM_BUF | job as u64
}

/// Stable synthetic addresses per region (reloads land at the same place,
/// like a re-established mmap of the same file).
pub(crate) struct AddrMap {
    map: HashMap<u64, u64>,
}

impl AddrMap {
    pub(crate) fn new() -> AddrMap {
        AddrMap { map: HashMap::new() }
    }

    pub(crate) fn addr_of(&mut self, ctx: &StreamContext, region: u64, bytes: usize) -> u64 {
        *self.map.entry(region).or_insert_with(|| ctx.addr.alloc(bytes))
    }
}

// ---------------------------------------------------------------------------
// Shared bookkeeping.
// ---------------------------------------------------------------------------

pub(crate) struct JobState {
    pub(crate) id: JobId,
    pub(crate) job: Box<dyn GraphJob>,
    pub(crate) submit_ns: f64,
    pub(crate) state_addr: u64,
    pub(crate) state_bytes: usize,
    pub(crate) clock: VirtualClock,
    pub(crate) instructions: u64,
    pub(crate) edges_processed: u64,
    pub(crate) iterations_guard: usize,
    pub(crate) admitted: bool,
    pub(crate) finished: bool,
    pub(crate) finish_ns: f64,
    pub(crate) error: Option<String>,
}

impl JobState {
    pub(crate) fn new(id: JobId, sub: Submission, num_vertices: u32) -> JobState {
        let state_bytes = num_vertices as usize * sub.job.state_bytes_per_vertex();
        JobState {
            id,
            job: sub.job,
            submit_ns: sub.submit_ns,
            state_addr: 0,
            state_bytes,
            clock: VirtualClock::default(),
            instructions: 0,
            edges_processed: 0,
            iterations_guard: 0,
            admitted: false,
            finished: false,
            finish_ns: 0.0,
            error: None,
        }
    }

    pub(crate) fn absorb(&mut self, run: &StreamRun) {
        self.clock.merge(&run.clock);
        self.instructions += run.instructions;
        self.edges_processed += run.edges_processed;
    }

    fn cpu_ns(&self) -> f64 {
        self.clock.compute_ns + self.clock.mem_access_ns
    }

    pub(crate) fn into_report(self) -> JobReport {
        JobReport {
            id: self.id,
            name: self.job.name().to_string(),
            iterations: self.job.iterations(),
            clock: self.clock,
            instructions: self.instructions,
            edges_processed: self.edges_processed,
            submit_ns: self.submit_ns,
            finish_ns: self.finish_ns,
            values: self.job.vertex_values(),
            error: self.error,
        }
    }
}

fn active_pids(source: &dyn PartitionSource, job: &dyn GraphJob) -> Vec<usize> {
    source.order().into_iter().filter(|&pid| source.partition_active(pid, job.active())).collect()
}

fn finish_report(
    scheme: Scheme,
    ctx: &StreamContext,
    jobs: Vec<JobState>,
    makespan_ns: f64,
    partition_loads: u64,
    sync_total_ns: f64,
) -> RunReport {
    let mut metrics = Metrics::new();
    metrics.set(keys::TOTAL_NS, makespan_ns);
    metrics.set(keys::JOBS, jobs.len() as f64);
    metrics.set(keys::PARTITION_LOADS, partition_loads as f64);
    metrics.set(keys::SYNC_NS, sync_total_ns);
    metrics.set(keys::LLC_ACCESSES, ctx.llc.stats.accesses as f64);
    metrics.set(keys::LLC_MISSES, ctx.llc.stats.misses as f64);
    metrics.set(keys::LLC_FILL_BYTES, ctx.llc.stats.fill_bytes as f64);
    metrics.set(keys::DISK_READ_BYTES, ctx.mem.stats.disk_read_bytes as f64);
    metrics.set(keys::DISK_WRITE_BYTES, ctx.mem.stats.disk_write_bytes as f64);
    metrics.set(keys::PEAK_MEMORY_BYTES, ctx.mem.stats.peak_resident_bytes as f64);
    let mut compute = 0.0;
    let mut data_access = 0.0;
    let mut instructions = 0u64;
    let mut iterations = 0usize;
    let reports: Vec<JobReport> = jobs
        .into_iter()
        .map(|j| {
            let r = j.into_report();
            compute += r.clock.compute_ns;
            data_access += r.clock.data_access_ns();
            instructions += r.instructions;
            iterations += r.iterations;
            r
        })
        .collect();
    metrics.set(keys::COMPUTE_NS, compute);
    metrics.set(keys::DATA_ACCESS_NS, data_access);
    metrics.set(keys::INSTRUCTIONS, instructions as f64);
    metrics.set(keys::ITERATIONS, iterations as f64);
    RunReport { scheme, metrics, jobs: reports, makespan_ns }
}

// ---------------------------------------------------------------------------
// Scheme S: sequential.
// ---------------------------------------------------------------------------

fn run_sequential(
    subs: Vec<Submission>,
    source: &dyn PartitionSource,
    cfg: &RunnerConfig,
) -> RunReport {
    let mut ctx = StreamContext::new(cfg.profile);
    let mut addrs = AddrMap::new();
    let n = source.num_vertices();
    let eff = cfg.effective_parallelism(1);
    let mut partition_loads = 0u64;
    let mut now = 0.0f64;
    let mut done: Vec<JobState> = Vec::new();

    for (id, sub) in subs.into_iter().enumerate() {
        let mut js = JobState::new(id, sub, n);
        now = now.max(js.submit_ns);
        js.admitted = true;
        js.state_addr = addrs.addr_of(&ctx, state_region(id), js.state_bytes);
        ctx.mem.touch_dirty(state_region(id), js.state_bytes, true);
        loop {
            let pids = active_pids(source, js.job.as_ref());
            if pids.is_empty() {
                break;
            }
            for pid in pids {
                let edges = source.load(pid);
                let bytes = source.partition_bytes(pid);
                // One job at a time: the graph region is shared across
                // successive jobs like an OS page cache over the same file.
                js.clock.disk_ns += ctx.touch_buffer(shared_graph_region(pid), bytes, false);
                partition_loads += 1;
                let addr = addrs.addr_of(&ctx, shared_graph_region(pid), bytes);
                let run = ctx.stream_edges_for_job(js.job.as_mut(), &edges, addr, js.state_addr);
                js.absorb(&run);
            }
            js.iterations_guard += 1;
            if js.job.end_iteration() || js.iterations_guard >= cfg.max_iterations {
                break;
            }
        }
        ctx.mem.release(state_region(id));
        now += js.clock.disk_ns.max(js.cpu_ns() / eff);
        js.finished = true;
        js.finish_ns = now;
        done.push(js);
    }
    finish_report(Scheme::Sequential, &ctx, done, now, partition_loads, 0.0)
}

// ---------------------------------------------------------------------------
// Scheme C: concurrent private copies, quantum-interleaved.
// ---------------------------------------------------------------------------

struct ConcurrentCursor {
    pids: Vec<usize>,
    pid_idx: usize,
    edges: Option<Arc<Vec<graphm_graph::Edge>>>,
    cur_addr: u64,
    offset: usize,
    /// Scheduling steps taken (seeds the quantum jitter).
    steps: u64,
}

/// Deterministic quantum jitter for the Concurrent scheme. Uncoordinated
/// processes never stay phase-aligned: scheduler jitter, page faults and
/// convergence differences make their traversal positions drift apart, so
/// a fair fixed-size round-robin would wrongly let identical jobs share
/// the LLC "by accident". Each quantum is scaled by a pseudo-random factor
/// in [0.5, 1.5) derived from (job, step).
fn jittered_quantum(base: usize, job: JobId, step: u64) -> usize {
    let mut x = (job as u64) << 32 | step;
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    let frac = (x % 1024) as f64 / 1024.0;
    ((base as f64 * (0.5 + frac)) as usize).max(1)
}

fn run_concurrent(
    subs: Vec<Submission>,
    source: &dyn PartitionSource,
    cfg: &RunnerConfig,
) -> RunReport {
    let mut ctx = StreamContext::new(cfg.profile);
    let mut addrs = AddrMap::new();
    let n = source.num_vertices();
    let quantum = cfg.quantum_edges.max(1);
    let mut partition_loads = 0u64;
    let mut io_acc = 0.0f64;
    // CPU time already divided by the parallelism in effect when the work
    // ran, so it accumulates in wall-clock units.
    let mut cpu_acc = 0.0f64;
    let mut vnow = 0.0f64;

    let mut jobs: Vec<JobState> =
        subs.into_iter().enumerate().map(|(id, s)| JobState::new(id, s, n)).collect();
    let mut cursors: Vec<ConcurrentCursor> = jobs
        .iter()
        .map(|_| ConcurrentCursor {
            pids: Vec::new(),
            pid_idx: 0,
            edges: None,
            cur_addr: 0,
            offset: 0,
            steps: 0,
        })
        .collect();

    loop {
        // Admit arrivals whose submit time has passed.
        for (js, cur) in jobs.iter_mut().zip(cursors.iter_mut()) {
            if !js.admitted && js.submit_ns <= vnow {
                js.admitted = true;
                js.state_addr = addrs.addr_of(&ctx, state_region(js.id), js.state_bytes);
                ctx.mem.touch_dirty(state_region(js.id), js.state_bytes, true);
                cur.pids = active_pids(source, js.job.as_ref());
            }
        }
        let running: Vec<usize> = jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.admitted && !j.finished)
            .map(|(i, _)| i)
            .collect();
        if running.is_empty() {
            // Idle: either everything is done, or we wait for an arrival.
            match jobs
                .iter()
                .filter(|j| !j.admitted)
                .map(|j| j.submit_ns)
                .min_by(|a, b| a.partial_cmp(b).unwrap())
            {
                Some(next) => {
                    vnow = vnow.max(next);
                    continue;
                }
                None => break,
            }
        }
        // One quantum per running job, round-robin: the OS time-slice
        // interleaving that drags every job's current partition through
        // the LLC at once.
        let eff = cfg.effective_parallelism(running.len());
        for i in running {
            let js = &mut jobs[i];
            let cur = &mut cursors[i];
            if cur.edges.is_none() {
                if cur.pid_idx >= cur.pids.len() {
                    js.iterations_guard += 1;
                    let converged =
                        js.job.end_iteration() || js.iterations_guard >= cfg.max_iterations;
                    if converged {
                        js.finished = true;
                        js.finish_ns = vnow;
                        ctx.mem.release(state_region(js.id));
                        ctx.mem.release(stream_buf_region(js.id));
                        continue;
                    }
                    cur.pids = active_pids(source, js.job.as_ref());
                    cur.pid_idx = 0;
                    if cur.pids.is_empty() {
                        js.finished = true;
                        js.finish_ns = vnow;
                        ctx.mem.release(state_region(js.id));
                        ctx.mem.release(stream_buf_region(js.id));
                        continue;
                    }
                }
                let pid = cur.pids[cur.pid_idx];
                let bytes = source.partition_bytes(pid);
                // Page-cache load, shared with every other job...
                let disk = ctx.touch_buffer(shared_graph_region(pid), bytes, false);
                js.clock.disk_ns += disk;
                io_acc += disk;
                partition_loads += 1;
                // ...plus this process's own pinned stream buffer (an
                // anonymous allocation filled from the cache — capacity
                // pressure, not disk traffic).
                ctx.mem.release(stream_buf_region(js.id));
                ctx.mem.reserve(stream_buf_region(js.id), bytes, true);
                cur.cur_addr = addrs.addr_of(&ctx, shared_graph_region(pid), bytes);
                cur.edges = Some(source.load(pid));
                cur.offset = 0;
            }
            let edges = cur.edges.as_ref().expect("partition loaded").clone();
            let q = jittered_quantum(quantum, js.id, cur.steps);
            cur.steps += 1;
            let end = (cur.offset + q).min(edges.len());
            let run = ctx.stream_edges_for_job(
                js.job.as_mut(),
                &edges[cur.offset..end],
                cur.cur_addr + (cur.offset * EDGE_BYTES) as u64,
                js.state_addr,
            );
            cpu_acc += (run.clock.compute_ns + run.clock.mem_access_ns) / eff;
            js.absorb(&run);
            cur.offset = end;
            if cur.offset >= edges.len() {
                cur.edges = None;
                cur.pid_idx += 1;
            }
            vnow = vnow.max(io_acc.max(cpu_acc));
        }
    }
    finish_report(Scheme::Concurrent, &ctx, jobs, vnow, partition_loads, 0.0)
}

// ---------------------------------------------------------------------------
// Scheme M: GraphM sharing + fine-grained synchronization.
// ---------------------------------------------------------------------------

/// Measures the average per-edge data-access time `T(E)` by replaying the
/// first non-empty partition's record stream through a scratch LLC.
pub(crate) fn calibrate_te(cfg: &RunnerConfig, source: &dyn PartitionSource) -> Option<f64> {
    use graphm_cachesim::{CostParams, Llc, LlcConfig};
    let pid = (0..source.num_partitions()).find(|&p| source.partition_bytes(p) > 0)?;
    let edges = source.load(pid);
    if edges.is_empty() {
        return None;
    }
    let mut llc = Llc::new(LlcConfig {
        capacity_bytes: cfg.profile.llc_bytes,
        ways: cfg.profile.llc_ways,
        line_bytes: cfg.profile.line_bytes,
    });
    for i in 0..edges.len() {
        llc.access_range((i * EDGE_BYTES) as u64, EDGE_BYTES);
    }
    let cost = CostParams::DEFAULT;
    let ns = llc.stats.hits as f64 * cost.llc_hit_ns + llc.stats.misses as f64 * cost.llc_miss_ns;
    Some(ns / edges.len() as f64)
}

fn run_shared(
    subs: Vec<Submission>,
    source: &dyn PartitionSource,
    cfg: &RunnerConfig,
) -> RunReport {
    let state_bytes_per_vertex =
        subs.iter().map(|s| s.job.state_bytes_per_vertex()).max().unwrap_or(8);
    let mut svc = crate::service::SharingService::new(source, *cfg, state_bytes_per_vertex);
    for sub in subs {
        svc.enqueue(sub);
    }
    svc.run_until_idle();
    svc.into_run_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::CountingJob;
    use crate::source::VecSource;
    use graphm_graph::generators;

    fn make_source(n: u32, parts: usize) -> VecSource {
        make_big_source(n, (n as usize) * 8, parts)
    }

    fn make_big_source(n: u32, m: usize, parts: usize) -> VecSource {
        let g = generators::rmat(n, m, generators::RmatParams::GRAPH500, 33);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let per = edges.len().div_ceil(parts);
        let partitions: Vec<Vec<graphm_graph::Edge>> =
            edges.chunks(per).map(|c| c.to_vec()).collect();
        VecSource::new(n, partitions)
    }

    fn counting_subs(n: u32, jobs: usize, iters: usize) -> Vec<Submission> {
        (0..jobs).map(|_| Submission::immediate(Box::new(CountingJob::new(n, iters)))).collect()
    }

    fn cfg() -> RunnerConfig {
        RunnerConfig::new(MemoryProfile::TEST)
    }

    #[test]
    fn all_schemes_produce_identical_results() {
        let source = make_source(128, 3);
        for scheme in [Scheme::Sequential, Scheme::Concurrent, Scheme::Shared] {
            let report = run_scheme(scheme, counting_subs(128, 3, 2), &source, &cfg());
            assert_eq!(report.jobs.len(), 3, "{scheme:?}");
            for j in &report.jobs {
                assert_eq!(j.iterations, 2, "{scheme:?}");
                // Counting over 2 iterations = 2 * in-degree.
                let total: f64 = j.values.iter().sum();
                assert_eq!(total as u64, 2 * 128 * 8, "{scheme:?}");
            }
            assert!(report.makespan_ns > 0.0);
            assert_eq!(report.metrics.get(keys::JOBS), 3.0);
        }
    }

    #[test]
    fn shared_reads_less_disk_than_concurrent() {
        // Out-of-core regime (graph 360 KB > TEST memory 256 KB): the
        // paper's Figure 12 shows the I/O gap only there — in-memory
        // graphs are "cached in the memory via memory mapping and only
        // need to be read from disks once" under every scheme.
        let source = make_big_source(256, 30_000, 6);
        let m = run_scheme(Scheme::Shared, counting_subs(256, 4, 3), &source, &cfg());
        let c = run_scheme(Scheme::Concurrent, counting_subs(256, 4, 3), &source, &cfg());
        assert!(
            m.metrics.get(keys::DISK_READ_BYTES) < c.metrics.get(keys::DISK_READ_BYTES),
            "M {} vs C {}",
            m.metrics.get(keys::DISK_READ_BYTES),
            c.metrics.get(keys::DISK_READ_BYTES)
        );
    }

    #[test]
    fn shared_beats_concurrent_on_llc_for_multi_job() {
        let source = make_source(256, 2);
        let m = run_scheme(Scheme::Shared, counting_subs(256, 4, 2), &source, &cfg());
        let c = run_scheme(Scheme::Concurrent, counting_subs(256, 4, 2), &source, &cfg());
        let m_rate = m.metrics.get(keys::LLC_MISSES) / m.metrics.get(keys::LLC_ACCESSES);
        let c_rate = c.metrics.get(keys::LLC_MISSES) / c.metrics.get(keys::LLC_ACCESSES);
        assert!(m_rate < c_rate, "M miss rate {m_rate} vs C {c_rate}");
    }

    #[test]
    fn shared_faster_than_sequential_for_multiple_jobs() {
        // Enough iterations that compute/cache time dominates the one-time
        // partition loads (the in-memory regime of Figure 9, where the
        // paper reports 2.6x vs scheme S), on an 8-core profile: one
        // streaming job cannot fill eight cores, concurrent shared jobs
        // can, and GraphM adds LLC reuse on top (Figure 20's regime).
        let mut profile = MemoryProfile::TEST;
        profile.cores = 8;
        let mut cfg8 = cfg();
        cfg8.profile = profile;
        // Formula 1 on the deliberately tiny TEST LLC with 8 cores yields
        // degenerate 64-edge chunks; pin a realistic chunk:LLC ratio (the
        // DEFAULT profile yields ~27 KB chunks for a 256 KB LLC).
        cfg8.chunk_bytes_override = Some(4096);
        let source = make_big_source(256, 8192, 4);
        let m = run_scheme(Scheme::Shared, counting_subs(256, 4, 30), &source, &cfg8);
        let s = run_scheme(Scheme::Sequential, counting_subs(256, 4, 30), &source, &cfg8);
        assert!(m.makespan_ns < s.makespan_ns, "M {} vs S {}", m.makespan_ns, s.makespan_ns);
    }

    #[test]
    fn single_job_schemes_agree_roughly() {
        // With one job there is nothing to share; M only adds bounded sync
        // overhead (§5.6: "the fine-grained synchronization operation of
        // GraphM does not occur when there is only one job").
        let source = make_source(128, 2);
        let s = run_scheme(Scheme::Sequential, counting_subs(128, 1, 3), &source, &cfg());
        let m = run_scheme(Scheme::Shared, counting_subs(128, 1, 3), &source, &cfg());
        assert!(m.makespan_ns <= s.makespan_ns * 1.5);
    }

    #[test]
    fn arrivals_respected() {
        let source = make_source(128, 2);
        let mut subs = counting_subs(128, 1, 2);
        subs.push(Submission::at(Box::new(CountingJob::new(128, 2)), 1e12));
        let r = run_scheme(Scheme::Concurrent, subs, &source, &cfg());
        assert!(r.jobs[1].finish_ns >= 1e12, "late job finishes after its arrival");
        assert!(r.jobs[0].finish_ns < 1e12, "early job does not wait for it");
    }

    #[test]
    fn empty_submission_list() {
        let source = make_source(64, 2);
        for scheme in [Scheme::Sequential, Scheme::Concurrent, Scheme::Shared] {
            let r = run_scheme(scheme, Vec::new(), &source, &cfg());
            assert_eq!(r.jobs.len(), 0);
            assert_eq!(r.makespan_ns, 0.0);
        }
    }

    #[test]
    fn fine_sync_ablation_runs_and_matches_results() {
        let source = make_source(256, 2);
        let mut no_sync = cfg();
        no_sync.fine_sync = false;
        let a = run_scheme(Scheme::Shared, counting_subs(256, 3, 2), &source, &cfg());
        let b = run_scheme(Scheme::Shared, counting_subs(256, 3, 2), &source, &no_sync);
        for (x, y) in a.jobs.iter().zip(&b.jobs) {
            assert_eq!(x.values, y.values, "ablation must not change results");
        }
        // Chunk-regular streaming cannot be worse on LLC misses.
        assert!(a.metrics.get(keys::LLC_MISSES) <= b.metrics.get(keys::LLC_MISSES));
    }

    #[test]
    fn profiler_predictions_reported() {
        let source = make_source(256, 4);
        let r = run_scheme(Scheme::Shared, counting_subs(256, 2, 4), &source, &cfg());
        assert!(r.metrics.contains("profile_mae_ns"), "profiling phase must engage");
    }
}
