//! The partition source abstraction — how GraphM talks to a host engine's
//! storage format.
//!
//! §3.1: "the operations of the concurrent jobs are still performed on the
//! specific graph representation of the related system". GraphM never owns
//! the format; it asks the engine for partitions (grid blocks, shards, edge
//! ranges) through this trait, labels them into chunks, and orders their
//! loads. One implementation per host engine lives in the engine crates.

use graphm_graph::{AtomicBitmap, Edge, VertexId, EDGE_BYTES};
use std::sync::Arc;

/// A graph, as a host engine stores it: an ordered collection of
/// partitions of edges.
pub trait PartitionSource: Send + Sync {
    /// Number of partitions.
    fn num_partitions(&self) -> usize;

    /// Total vertex count.
    fn num_vertices(&self) -> VertexId;

    /// The edges of partition `pid`, in the engine's streaming order.
    fn load(&self, pid: usize) -> Arc<Vec<Edge>>;

    /// Fallible variant of [`PartitionSource::load`]: disk-backed sources
    /// surface I/O failures (real or injected through
    /// `graphm_graph::failpoint`) here instead of aborting the process,
    /// so the runtimes can degrade to per-job failures. In-memory sources
    /// cannot fail and keep the default.
    fn try_load(&self, pid: usize) -> graphm_graph::Result<Arc<Vec<Edge>>> {
        Ok(self.load(pid))
    }

    /// Bytes charged when partition `pid` is loaded from secondary storage
    /// (may exceed the edge payload — GraphChi also loads sliding windows).
    fn partition_bytes(&self, pid: usize) -> usize;

    /// Total structure bytes (`S_G` in Formula 1).
    fn graph_bytes(&self) -> usize;

    /// The engine's native partition traversal order (GridGraph streams
    /// column-major; GraphChi walks intervals in order).
    fn order(&self) -> Vec<usize> {
        (0..self.num_partitions()).collect()
    }

    /// Whether partition `pid` contains any work for a job with the given
    /// active-vertex bitmap (the engine's `should_access_shard`).
    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool;

    /// Takes a generation pin: rotating sources (the disk delta store)
    /// keep serving their current data generation until the matching
    /// [`PartitionSource::sweep_end`]. The runtimes
    /// ([`crate::SharingRuntime`], [`crate::SharingService`]) hold one
    /// pin for their whole busy period — first sweep through last job
    /// retirement — so no in-flight job ever observes a generation flip,
    /// even when another runtime sharing the handle triggers a refresh.
    /// Static sources need not override (no-op); jobs never call this.
    fn sweep_begin(&self) {}

    /// Releases the pin taken by [`PartitionSource::sweep_begin`] (a
    /// rotation published meanwhile is adopted at the last unpin).
    fn sweep_end(&self) {}
}

/// The simplest source: pre-split in-memory partitions with contiguous
/// source ranges. Used by core tests and as the Chaos-style raw edge-list
/// backend.
pub struct VecSource {
    partitions: Vec<Arc<Vec<Edge>>>,
    /// Source-vertex bounds per partition, for activity checks; `None`
    /// means "sources arbitrary, check by scan".
    src_bounds: Vec<Option<(VertexId, VertexId)>>,
    num_vertices: VertexId,
}

impl VecSource {
    /// Builds a source from explicit partitions, computing each partition's
    /// source-vertex bounds.
    pub fn new(num_vertices: VertexId, partitions: Vec<Vec<Edge>>) -> VecSource {
        let src_bounds = partitions
            .iter()
            .map(|p| {
                if p.is_empty() {
                    Some((0, 0))
                } else {
                    let lo = p.iter().map(|e| e.src).min().unwrap();
                    let hi = p.iter().map(|e| e.src).max().unwrap() + 1;
                    Some((lo, hi))
                }
            })
            .collect();
        VecSource {
            partitions: partitions.into_iter().map(Arc::new).collect(),
            src_bounds,
            num_vertices,
        }
    }
}

impl PartitionSource for VecSource {
    fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    fn num_vertices(&self) -> VertexId {
        self.num_vertices
    }

    fn load(&self, pid: usize) -> Arc<Vec<Edge>> {
        Arc::clone(&self.partitions[pid])
    }

    fn partition_bytes(&self, pid: usize) -> usize {
        self.partitions[pid].len() * EDGE_BYTES
    }

    fn graph_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.len() * EDGE_BYTES).sum()
    }

    fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        match self.src_bounds[pid] {
            Some((lo, hi)) if lo < hi => active.any_in_range(lo as usize, hi as usize),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::generators;

    #[test]
    fn vec_source_basics() {
        let g = generators::path(10);
        let s = VecSource::new(10, vec![g.edges[..4].to_vec(), g.edges[4..].to_vec()]);
        assert_eq!(s.num_partitions(), 2);
        assert_eq!(s.num_vertices(), 10);
        assert_eq!(s.load(0).len(), 4);
        assert_eq!(s.partition_bytes(1), 5 * EDGE_BYTES);
        assert_eq!(s.graph_bytes(), 9 * EDGE_BYTES);
        assert_eq!(s.order(), vec![0, 1]);
    }

    #[test]
    fn activity_by_source_bounds() {
        let g = generators::path(10);
        let s = VecSource::new(10, vec![g.edges[..4].to_vec(), g.edges[4..].to_vec()]);
        let active = AtomicBitmap::new(10);
        active.set(2);
        assert!(s.partition_active(0, &active), "sources 0..4 cover vertex 2");
        assert!(!s.partition_active(1, &active));
        active.set(7);
        assert!(s.partition_active(1, &active));
    }

    #[test]
    fn empty_partition_never_active() {
        let s = VecSource::new(4, vec![vec![], vec![Edge::new(0, 1)]]);
        let active = AtomicBitmap::new(4);
        active.set_all();
        assert!(!s.partition_active(0, &active));
        assert!(s.partition_active(1, &active));
    }
}
