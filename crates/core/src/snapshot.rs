//! Consistent snapshots for concurrent jobs (§3.3.2, Figure 7).
//!
//! The shared graph is read-mostly, but jobs may *mutate* it (private
//! what-if edits) and the platform may *update* it (evolving graph). The
//! rules the paper sets:
//!
//! * a **mutation** copies the affected chunks and is visible only to the
//!   mutating job; the copies are released when that job finishes;
//! * an **update** installs a new version of the affected chunks that is
//!   visible only to jobs submitted *after* the update; earlier jobs keep
//!   reading the pre-update copies, which are released once all of them
//!   finish.
//!
//! Copy-on-write is chunk-granular: "GraphM first copies the corresponding
//! chunks of the graph data that need to be modified to other shared memory
//! space" — the shared structure itself is never written in place.

use crate::job::JobId;
use graphm_graph::Edge;
use std::collections::HashMap;
use std::sync::Arc;

/// A version number; jobs submitted at version `v` see all updates with
/// version ≤ `v`.
pub type Version = u64;

/// A job's private chunk overlays, keyed by `(partition, chunk)`.
type MutationMap = HashMap<(usize, usize), Arc<Vec<Edge>>>;

#[derive(Clone, Debug)]
struct UpdateRecord {
    version: Version,
    data: Arc<Vec<Edge>>,
}

#[derive(Clone, Debug, Default)]
struct ChunkVersions {
    /// Updates in ascending version order.
    updates: Vec<UpdateRecord>,
}

/// Chunk-granular copy-on-write store for one shared graph.
pub struct SnapshotStore {
    /// `base[pid][chunk]` — the version-0 chunk payloads.
    base: Vec<Vec<Arc<Vec<Edge>>>>,
    /// Installed updates per (pid, chunk).
    updates: HashMap<(usize, usize), ChunkVersions>,
    /// Private overlays per job per (pid, chunk).
    mutations: HashMap<JobId, MutationMap>,
    /// Snapshot version each live job reads.
    job_versions: HashMap<JobId, Version>,
    next_version: Version,
}

impl SnapshotStore {
    /// Builds a store from pre-chunked partitions:
    /// `partitions[pid]` is that partition's list of chunk payloads.
    pub fn new(partitions: Vec<Vec<Vec<Edge>>>) -> SnapshotStore {
        SnapshotStore {
            base: partitions
                .into_iter()
                .map(|chunks| chunks.into_iter().map(Arc::new).collect())
                .collect(),
            updates: HashMap::new(),
            mutations: HashMap::new(),
            job_versions: HashMap::new(),
            next_version: 0,
        }
    }

    /// Splits flat partitions into `chunk_edges`-sized chunks and builds
    /// the store.
    pub fn from_partitions(partitions: &[Vec<Edge>], chunk_edges: usize) -> SnapshotStore {
        let chunked = partitions
            .iter()
            .map(|p| p.chunks(chunk_edges.max(1)).map(|c| c.to_vec()).collect::<Vec<_>>())
            .collect();
        SnapshotStore::new(chunked)
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.base.len()
    }

    /// Number of chunks in partition `pid`.
    pub fn num_chunks(&self, pid: usize) -> usize {
        self.base[pid].len()
    }

    /// Registers a newly submitted job; it will observe the graph as of
    /// now (all updates installed so far).
    pub fn register_job(&mut self, job: JobId) -> Version {
        let v = self.next_version;
        self.job_versions.insert(job, v);
        v
    }

    /// Resolves the chunk `job` must read: its private mutation if any,
    /// else the newest update with version ≤ the job's snapshot version,
    /// else the base chunk.
    pub fn chunk_view(&self, job: JobId, pid: usize, chunk: usize) -> Arc<Vec<Edge>> {
        if let Some(overlays) = self.mutations.get(&job) {
            if let Some(data) = overlays.get(&(pid, chunk)) {
                return Arc::clone(data);
            }
        }
        let jv = self.job_versions.get(&job).copied().unwrap_or(self.next_version);
        if let Some(cv) = self.updates.get(&(pid, chunk)) {
            if let Some(rec) = cv.updates.iter().rev().find(|r| r.version <= jv) {
                return Arc::clone(&rec.data);
            }
        }
        Arc::clone(&self.base[pid][chunk])
    }

    /// Full partition view for a job (chunk views in order).
    pub fn partition_view(&self, job: JobId, pid: usize) -> Vec<Arc<Vec<Edge>>> {
        (0..self.num_chunks(pid)).map(|c| self.chunk_view(job, pid, c)).collect()
    }

    /// Applies a *mutation*: a private copy visible only to `job`
    /// ("mutation 2" in Figure 7). The closure edits a copy of the chunk
    /// the job currently sees.
    pub fn mutate<F>(&mut self, job: JobId, pid: usize, chunk: usize, edit: F)
    where
        F: FnOnce(&mut Vec<Edge>),
    {
        let mut copy: Vec<Edge> = self.chunk_view(job, pid, chunk).as_ref().clone();
        edit(&mut copy);
        self.mutations.entry(job).or_default().insert((pid, chunk), Arc::new(copy));
    }

    /// Applies an *update*: a new shared version visible to jobs submitted
    /// afterwards ("update 3" in Figure 7). Returns the new version.
    pub fn update<F>(&mut self, pid: usize, chunk: usize, edit: F) -> Version
    where
        F: FnOnce(&mut Vec<Edge>),
    {
        // Updates build on the newest installed state of the chunk.
        let latest = self
            .updates
            .get(&(pid, chunk))
            .and_then(|cv| cv.updates.last())
            .map(|r| Arc::clone(&r.data))
            .unwrap_or_else(|| Arc::clone(&self.base[pid][chunk]));
        let mut copy: Vec<Edge> = latest.as_ref().clone();
        edit(&mut copy);
        self.next_version += 1;
        let v = self.next_version;
        self.updates
            .entry((pid, chunk))
            .or_default()
            .updates
            .push(UpdateRecord { version: v, data: Arc::new(copy) });
        v
    }

    /// Retires a finished job: drops its private copies ("the copied
    /// chunks will be released when the corresponding job is finished")
    /// and garbage-collects update versions no live job can still read.
    pub fn finish_job(&mut self, job: JobId) {
        self.mutations.remove(&job);
        self.job_versions.remove(&job);
        self.gc();
    }

    /// Drops superseded update records: for every chunk, keep records newer
    /// than the oldest live snapshot plus the newest record at or below it.
    fn gc(&mut self) {
        let min_live = self.job_versions.values().copied().min().unwrap_or(self.next_version);
        for cv in self.updates.values_mut() {
            // Index of the newest record with version <= min_live.
            let keep_from = cv.updates.iter().rposition(|r| r.version <= min_live).unwrap_or(0);
            if keep_from > 0 {
                cv.updates.drain(..keep_from);
            }
        }
    }

    /// Number of retained update records (test/diagnostic hook).
    pub fn retained_updates(&self) -> usize {
        self.updates.values().map(|c| c.updates.len()).sum()
    }

    /// Number of retained private mutation copies.
    pub fn retained_mutations(&self) -> usize {
        self.mutations.values().map(|m| m.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphm_graph::Edge;

    fn store() -> SnapshotStore {
        // One partition, two chunks of two edges each.
        SnapshotStore::from_partitions(
            &[vec![Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3), Edge::new(3, 0)]],
            2,
        )
    }

    #[test]
    fn base_views() {
        let mut s = store();
        s.register_job(1);
        assert_eq!(s.num_partitions(), 1);
        assert_eq!(s.num_chunks(0), 2);
        assert_eq!(s.chunk_view(1, 0, 0).len(), 2);
        assert_eq!(s.chunk_view(1, 0, 0)[0].dst, 1);
    }

    #[test]
    fn mutation_private_to_job() {
        let mut s = store();
        s.register_job(1);
        s.register_job(2);
        s.mutate(2, 0, 0, |edges| edges.push(Edge::new(0, 3)));
        assert_eq!(s.chunk_view(2, 0, 0).len(), 3, "mutating job sees the edit");
        assert_eq!(s.chunk_view(1, 0, 0).len(), 2, "other jobs do not");
        assert_eq!(s.retained_mutations(), 1);
        s.finish_job(2);
        assert_eq!(s.retained_mutations(), 0, "copies released on finish");
    }

    #[test]
    fn update_visible_to_later_jobs_only() {
        let mut s = store();
        s.register_job(1); // sees version 0
        s.update(0, 1, |edges| edges.clear());
        s.register_job(2); // sees version 1
        assert_eq!(s.chunk_view(1, 0, 1).len(), 2, "old job reads pre-update data");
        assert_eq!(s.chunk_view(2, 0, 1).len(), 0, "new job reads the update");
    }

    #[test]
    fn figure7_scenario() {
        // Job 1 submitted; update arrives; job 2 submitted; job 2 mutates.
        let mut s = store();
        s.register_job(1);
        s.update(0, 0, |e| e[0] = Edge::new(9, 9));
        s.register_job(2);
        s.mutate(2, 0, 1, |e| e.push(Edge::new(7, 7)));
        // Job 1: original chunk 0, original chunk 1.
        assert_eq!(s.chunk_view(1, 0, 0)[0].src, 0);
        assert_eq!(s.chunk_view(1, 0, 1).len(), 2);
        // Job 2: updated chunk 0, privately mutated chunk 1.
        assert_eq!(s.chunk_view(2, 0, 0)[0].src, 9);
        assert_eq!(s.chunk_view(2, 0, 1).len(), 3);
    }

    #[test]
    fn mutation_on_top_of_update() {
        let mut s = store();
        s.update(0, 0, |e| e.clear());
        s.register_job(5);
        s.mutate(5, 0, 0, |e| e.push(Edge::new(1, 1)));
        assert_eq!(s.chunk_view(5, 0, 0).len(), 1, "mutation builds on the job's view");
    }

    #[test]
    fn stacked_updates_resolve_by_version() {
        let mut s = store();
        s.register_job(1); // v0
        s.update(0, 0, |e| e.truncate(1)); // v1
        s.register_job(2); // v1
        s.update(0, 0, |e| e.clear()); // v2
        s.register_job(3); // v2
        assert_eq!(s.chunk_view(1, 0, 0).len(), 2);
        assert_eq!(s.chunk_view(2, 0, 0).len(), 1);
        assert_eq!(s.chunk_view(3, 0, 0).len(), 0);
    }

    #[test]
    fn gc_releases_unreachable_versions() {
        let mut s = store();
        s.register_job(1); // v0
        s.update(0, 0, |e| e.truncate(1)); // v1
        s.update(0, 0, |e| e.clear()); // v2
        s.register_job(2); // v2
        assert_eq!(s.retained_updates(), 2);
        // While job 1 lives, v1 could still be read by... nobody: job 1 is
        // at v0 (reads base), job 2 at v2. But v1 must stay only if some
        // live job is between v1 and v2; none is, so finishing job 1 keeps
        // just the newest.
        s.finish_job(1);
        assert_eq!(s.retained_updates(), 1, "superseded update dropped");
        assert_eq!(s.chunk_view(2, 0, 0).len(), 0);
    }

    #[test]
    fn partition_view_matches_chunk_views() {
        let mut s = store();
        s.register_job(1);
        let v = s.partition_view(1, 0);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].len(), 2);
    }

    #[test]
    fn unregistered_job_sees_latest() {
        let mut s = store();
        s.update(0, 0, |e| e.clear());
        // A job id never registered defaults to the newest snapshot (it
        // will be registered at submission in the runtime).
        assert_eq!(s.chunk_view(99, 0, 0).len(), 0);
    }
}
