//! The §4 scheduling strategy for out-of-core graph analysis.
//!
//! Loading order is free (streaming results don't depend on it), so GraphM
//! orders partition loads to maximize how many jobs each loaded partition
//! serves. Formula 5:
//!
//! ```text
//! Pri(P^i) = MAX_{j ∈ J^i} (1 / N_j(P)) × N(J^i)
//! ```
//!
//! * partitions of jobs with *few* active partitions come first (those jobs
//!   finish their iteration quickly and activate more partitions);
//! * partitions wanted by *many* jobs come first (amortize one load across
//!   all of them).

use crate::global_table::GlobalTable;
use crate::job::JobId;
use std::collections::HashMap;

/// Which loading order the runtime uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedulingPolicy {
    /// Ascending partition id — the host engine's native order
    /// (GridGraph-M-without in Figure 18).
    Default,
    /// Formula 5 priority order (GridGraph-M in Figure 18).
    #[default]
    Prioritized,
}

/// Computes `Pri(P^i)` for one partition given the jobs that need it and
/// each job's active-partition count. Returns 0 for unwanted partitions.
pub fn priority(jobs_for_partition: &[JobId], active_counts: &HashMap<JobId, usize>) -> f64 {
    if jobs_for_partition.is_empty() {
        return 0.0;
    }
    let n_ji = jobs_for_partition.len() as f64;
    let max_inv = jobs_for_partition
        .iter()
        .map(|j| {
            let nj = active_counts.get(j).copied().unwrap_or(1).max(1);
            1.0 / nj as f64
        })
        .fold(0.0f64, f64::max);
    max_inv * n_ji
}

/// Produces the loading order for the coming traversal.
///
/// "The priority is calculated before each complete traversal over all the
/// partitions. After that, the entries in the global table are sorted
/// according to the priority of their corresponding partitions."
///
/// Ties break on ascending partition id so the order is deterministic.
pub fn loading_order(table: &GlobalTable, policy: SchedulingPolicy) -> Vec<usize> {
    let active = table.active_partition_ids();
    match policy {
        SchedulingPolicy::Default => active,
        SchedulingPolicy::Prioritized => {
            // Gather Nj(P) once per job.
            let mut counts: HashMap<JobId, usize> = HashMap::new();
            for &pid in &active {
                for j in table.jobs_for(pid) {
                    *counts.entry(j).or_insert(0) += 0; // ensure key
                }
            }
            for j in counts.keys().copied().collect::<Vec<_>>() {
                counts.insert(j, table.active_partitions_of(j));
            }
            let mut scored: Vec<(usize, f64)> =
                active.iter().map(|&pid| (pid, priority(&table.jobs_for(pid), &counts))).collect();
            scored.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
            });
            scored.into_iter().map(|(pid, _)| pid).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(pairs: &[(JobId, usize)]) -> HashMap<JobId, usize> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn priority_formula() {
        // Job 0 has 1 active partition, job 1 has 4.
        let c = counts(&[(0, 1), (1, 4)]);
        // Partition wanted by both: max(1/1, 1/4) * 2 = 2.
        assert!((priority(&[0, 1], &c) - 2.0).abs() < 1e-12);
        // Partition wanted only by job 1: (1/4) * 1 = 0.25.
        assert!((priority(&[1], &c) - 0.25).abs() < 1e-12);
        assert_eq!(priority(&[], &c), 0.0);
    }

    #[test]
    fn figure8_scenario() {
        // Figure 8: job 1 actives = {2,3} at iteration x (partition 1
        // activates next iteration); job 2 actives = {1,2,3,4}. Partition
        // priorities: Pri(2) = Pri(3) = max(1/2, 1/4) * 2 = 1;
        // Pri(1) = Pri(4) = (1/4) * 1 = 0.25. So partitions 2 and 3 load
        // before 1 and 4 and job 1 finishes its iteration early.
        let t = GlobalTable::new(5);
        t.set_active_partitions(1, &[2, 3]);
        t.set_active_partitions(2, &[1, 2, 3, 4]);
        let order = loading_order(&t, SchedulingPolicy::Prioritized);
        assert_eq!(order, vec![2, 3, 1, 4]);
        let default = loading_order(&t, SchedulingPolicy::Default);
        assert_eq!(default, vec![1, 2, 3, 4]);
    }

    #[test]
    fn most_shared_wins_at_equal_job_breadth() {
        let t = GlobalTable::new(3);
        // All jobs have 2 active partitions; partition 1 is shared by 3
        // jobs, partition 0 by 1, partition 2 by 2.
        t.set_active_partitions(0, &[0, 1]);
        t.set_active_partitions(1, &[1, 2]);
        t.set_active_partitions(2, &[1, 0]);
        // Nj = 2 for all jobs. Pri(0) = 1, Pri(1) = 1.5, Pri(2) = 1.
        let order = loading_order(&t, SchedulingPolicy::Prioritized);
        assert_eq!(order[0], 1);
    }

    #[test]
    fn deterministic_tie_break() {
        let t = GlobalTable::new(4);
        t.set_active_partitions(0, &[3, 1]);
        let order = loading_order(&t, SchedulingPolicy::Prioritized);
        assert_eq!(order, vec![1, 3], "equal priorities break by pid");
    }

    #[test]
    fn empty_table_empty_order() {
        let t = GlobalTable::new(4);
        assert!(loading_order(&t, SchedulingPolicy::Prioritized).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The prioritized order is a permutation of the default order, and
        /// priorities along it are non-increasing.
        #[test]
        fn order_is_priority_sorted_permutation(
            assignments in proptest::collection::vec(
                (0usize..8, proptest::collection::btree_set(0usize..6, 0..5)), 1..12)
        ) {
            let t = GlobalTable::new(8);
            for (job, (pid, _)) in assignments.iter().enumerate() {
                // each tuple assigns one job to a few partitions
                let pids: Vec<usize> = assignments[job].1.iter().copied().map(|p| p.min(7)).collect();
                let _ = pid;
                t.set_active_partitions(job, &pids);
            }
            let default = loading_order(&t, SchedulingPolicy::Default);
            let pri = loading_order(&t, SchedulingPolicy::Prioritized);
            let mut a = default.clone();
            let mut b = pri.clone();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b, "same set of partitions");
            // Recompute scores and check monotone.
            let mut counts = HashMap::new();
            for pid in &default {
                for j in t.jobs_for(*pid) {
                    counts.insert(j, t.active_partitions_of(j));
                }
            }
            let scores: Vec<f64> = pri.iter().map(|&p| priority(&t.jobs_for(p), &counts)).collect();
            for w in scores.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }
}
