//! The GraphM instance: preprocessing and the Table-1 programming API.
//!
//! `Init()` computes the Formula-1 chunk size, runs Algorithm 1 over every
//! partition of the host engine's format, and retains the resulting
//! `chunk_table`s — the only state GraphM adds to the engine. The labels
//! are logical: the engine's own representation is never modified (§3.1).

use crate::chunk::{chunk_size_bytes, label_partition, ChunkTable};
use crate::scheduler::SchedulingPolicy;
use crate::source::PartitionSource;
use graphm_cachesim::CostParams;
use graphm_graph::{AtomicBitmap, MemoryProfile};

/// Configuration for a GraphM instance.
#[derive(Clone, Copy, Debug)]
pub struct GraphMConfig {
    /// Simulated memory-hierarchy profile (supplies Formula 1's `N`,
    /// `C_LLC`, `r`).
    pub profile: MemoryProfile,
    /// Partition loading-order policy (§4).
    pub policy: SchedulingPolicy,
    /// Override the Formula-1 chunk size (ablation studies only).
    pub chunk_bytes_override: Option<usize>,
    /// Enable chunk-level fine-grained synchronization (§3.4.2). Disabling
    /// it keeps memory-level sharing but lets jobs stream partitions
    /// independently — the `ablate_sync` configuration.
    pub fine_sync: bool,
    /// Whether the graph is larger than memory, forcing the labelling pass
    /// to re-read it from disk (Table 3's 16.1% vs 4% preprocessing cost).
    pub out_of_core: bool,
}

impl GraphMConfig {
    /// Defaults: `MemoryProfile::DEFAULT`, prioritized scheduling,
    /// Formula-1 chunking, fine-grained sync on.
    pub fn new(profile: MemoryProfile) -> GraphMConfig {
        GraphMConfig {
            profile,
            policy: SchedulingPolicy::Prioritized,
            chunk_bytes_override: None,
            fine_sync: true,
            out_of_core: false,
        }
    }
}

impl Default for GraphMConfig {
    fn default() -> Self {
        GraphMConfig::new(MemoryProfile::DEFAULT)
    }
}

/// A preprocessed GraphM instance for one graph under one engine format.
pub struct GraphM {
    /// Configuration used at init.
    pub config: GraphMConfig,
    /// The Formula-1 chunk size in bytes.
    pub chunk_bytes: usize,
    /// One `Set_c` per partition (Algorithm 1 output).
    pub tables: Vec<ChunkTable>,
    /// Virtual preprocessing cost of the labelling pass.
    pub preprocess_ns: f64,
}

impl GraphM {
    /// `Init()` — preprocesses the graph: sizes chunks via Formula 1 and
    /// labels every partition via Algorithm 1 by traversing the graph once.
    ///
    /// `state_bytes_per_vertex` is the expected job-state footprint `U_v`
    /// (the paper sizes it for the job mix; 8 bytes covers PageRank ranks /
    /// WCC labels / SSSP distances).
    pub fn init(
        source: &dyn PartitionSource,
        state_bytes_per_vertex: usize,
        config: GraphMConfig,
    ) -> GraphM {
        let graph_bytes = source.graph_bytes();
        let chunk_bytes = config.chunk_bytes_override.unwrap_or_else(|| {
            chunk_size_bytes(
                &config.profile,
                graph_bytes,
                source.num_vertices(),
                state_bytes_per_vertex,
            )
        });
        let mut tables = Vec::with_capacity(source.num_partitions());
        let mut labelled_edges = 0u64;
        for pid in 0..source.num_partitions() {
            let edges = source.load(pid);
            tables.push(label_partition(&edges, chunk_bytes));
            labelled_edges += edges.len() as u64;
        }
        // Labelling walks the graph once; when the graph exceeds memory it
        // must be re-read from disk (§5.2: preprocessing +16.1% out-of-core
        // vs +4% in-memory).
        let cost = CostParams::DEFAULT;
        let mut preprocess_ns = labelled_edges as f64 * cost.skip_edge_ns * 2.0;
        if config.out_of_core {
            preprocess_ns += cost.disk_seek_ns + graph_bytes as f64 * cost.disk_byte_ns;
        }
        GraphM { config, chunk_bytes, tables, preprocess_ns }
    }

    /// Number of partitions labelled.
    pub fn num_partitions(&self) -> usize {
        self.tables.len()
    }

    /// Extra storage the labels consume (the 5.5%–19.2% of §5.2).
    pub fn overhead_bytes(&self) -> usize {
        self.tables.iter().map(ChunkTable::overhead_bytes).sum()
    }

    /// Overhead as a fraction of the structure data.
    pub fn overhead_ratio(&self, graph_bytes: usize) -> f64 {
        if graph_bytes == 0 {
            0.0
        } else {
            self.overhead_bytes() as f64 / graph_bytes as f64
        }
    }

    /// `GetActiveVertices()` companion: whether partition `pid` holds any
    /// work for the given frontier (resolved chunk-by-chunk from the
    /// labels, without touching the edges).
    pub fn partition_active(&self, pid: usize, active: &AtomicBitmap) -> bool {
        self.tables[pid].chunks.iter().any(|c| c.any_active(active))
    }

    /// Indices of chunks of `pid` holding active work (the §3.4.1
    /// similarity mining: active chunks per job).
    pub fn active_chunks(&self, pid: usize, active: &AtomicBitmap) -> Vec<usize> {
        self.tables[pid]
            .chunks
            .iter()
            .enumerate()
            .filter(|(_, c)| c.any_active(active))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use graphm_graph::generators;

    fn source() -> VecSource {
        let g = generators::rmat(256, 4000, generators::RmatParams::GRAPH500, 21);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let mid = edges.len() / 2;
        VecSource::new(256, vec![edges[..mid].to_vec(), edges[mid..].to_vec()])
    }

    #[test]
    fn init_labels_everything() {
        let s = source();
        let gm = GraphM::init(&s, 8, GraphMConfig::new(MemoryProfile::TEST));
        assert_eq!(gm.num_partitions(), 2);
        let total: usize = gm.tables.iter().map(|t| t.num_edges()).sum();
        assert_eq!(total, 4000);
        assert!(gm.chunk_bytes >= crate::chunk::CHUNK_ALIGN_BYTES);
        assert!(gm.overhead_bytes() > 0);
        assert!(gm.overhead_ratio(s.graph_bytes()) > 0.0);
    }

    #[test]
    fn chunk_override_respected() {
        let s = source();
        let mut cfg = GraphMConfig::new(MemoryProfile::TEST);
        cfg.chunk_bytes_override = Some(1200);
        let gm = GraphM::init(&s, 8, cfg);
        assert_eq!(gm.chunk_bytes, 1200);
        // 1200 B = 100 edges per chunk.
        assert!(gm.tables[0].chunks[0].num_edges() <= 100);
    }

    #[test]
    fn out_of_core_preprocessing_costs_more() {
        let s = source();
        let mut in_core = GraphMConfig::new(MemoryProfile::TEST);
        in_core.out_of_core = false;
        let mut ooc = in_core;
        ooc.out_of_core = true;
        let a = GraphM::init(&s, 8, in_core);
        let b = GraphM::init(&s, 8, ooc);
        assert!(b.preprocess_ns > a.preprocess_ns);
    }

    #[test]
    fn activity_through_labels() {
        let s = source();
        let gm = GraphM::init(&s, 8, GraphMConfig::new(MemoryProfile::TEST));
        let active = AtomicBitmap::new(256);
        assert!(!gm.partition_active(0, &active));
        assert!(gm.active_chunks(0, &active).is_empty());
        active.set_all();
        assert!(gm.partition_active(0, &active));
        assert_eq!(gm.active_chunks(0, &active).len(), gm.tables[0].chunks.len());
    }
}
