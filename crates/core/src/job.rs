//! The iterative-job abstraction GraphM manages.
//!
//! §3.1: "the data needed by an iterative graph processing job is composed
//! of the graph structure data [...] and job-specific data (e.g., ranking
//! scores for PageRank), marked as S. During the execution, each job needs
//! to update its S through traversing the graph structure data until the
//! calculated results converge."
//!
//! A [`GraphJob`] is exactly that `S` plus the per-edge update function.
//! The graph structure never lives inside a job — GraphM owns and shares
//! it — which is what lets N jobs run against one copy.

use graphm_graph::{AtomicBitmap, Edge, VertexId};

/// Job identifier, assigned by the runtime in submission order. Submission
/// order matters for snapshot visibility (§3.3.2).
pub type JobId = usize;

/// Outcome of one `process_edge` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeOutcome {
    /// The destination vertex's state changed (it must be processed next
    /// iteration — GraphM traces this to maintain active partitions).
    pub activated_dst: bool,
}

/// An iterative vertex/edge-centric graph job (the paper's benchmarks:
/// PageRank, WCC, BFS, SSSP, and variants).
///
/// Jobs are driven by a streaming engine: every iteration the engine calls
/// [`GraphJob::process_edge`] for each streamed edge whose source is active,
/// then [`GraphJob::end_iteration`]. Jobs own their active-vertex bitmaps
/// (the paper's per-job bitmap of §3.4.1).
pub trait GraphJob: Send {
    /// Human-readable algorithm name ("PageRank", "BFS", ...).
    fn name(&self) -> &str;

    /// Bytes of job-specific state per vertex (`U_v` in Formula 1).
    fn state_bytes_per_vertex(&self) -> usize;

    /// Ground-truth relative computational complexity of the edge function
    /// (`T(F_j)` up to the machine constant). The synchronization manager
    /// never reads this — it *profiles* `T(F_j)` from observed timings
    /// (§3.4.2) — but the virtual clock uses it to generate those timings.
    fn edge_cost_factor(&self) -> f64 {
        1.0
    }

    /// Whether this job skips inactive vertices (BFS/SSSP) or streams every
    /// edge each iteration (PageRank-style). §3.4.1: "If some jobs do not
    /// skip the useless streaming, all of their vertices are active by
    /// default."
    fn skips_inactive(&self) -> bool {
        true
    }

    /// Current-iteration active vertices.
    fn active(&self) -> &AtomicBitmap;

    /// Processes one streamed edge (the source is guaranteed active when
    /// the engine honours [`GraphJob::skips_inactive`]).
    fn process_edge(&mut self, edge: &Edge) -> EdgeOutcome;

    /// Ends the iteration: swap frontiers, test convergence. Returns `true`
    /// when the job has converged (it will be retired by the runtime).
    fn end_iteration(&mut self) -> bool;

    /// Number of iterations completed so far.
    fn iterations(&self) -> usize;

    /// Final (or current) per-vertex values, for oracle comparison:
    /// ranks for PageRank, component ids for WCC, levels for BFS,
    /// distances for SSSP.
    fn vertex_values(&self) -> Vec<f64>;
}

/// A submitted job paired with runtime bookkeeping.
pub struct JobHandle {
    /// Runtime-assigned id (also the snapshot version the job reads).
    pub id: JobId,
    /// The algorithm state.
    pub job: Box<dyn GraphJob>,
    /// Set once the job converges; retired jobs stop participating in
    /// sharing and synchronization.
    pub finished: bool,
    /// Virtual nanoseconds this job has consumed (per-category breakdown
    /// lives in the runner's clocks; this is the job-facing total).
    pub virtual_ns: f64,
    /// Virtual time at which the job was submitted (Poisson arrivals in
    /// §5.1 stagger these).
    pub submit_ns: f64,
    /// Virtual time at which the job finished.
    pub finish_ns: f64,
}

impl JobHandle {
    /// Wraps a job for submission at virtual time `submit_ns`.
    pub fn new(id: JobId, job: Box<dyn GraphJob>, submit_ns: f64) -> JobHandle {
        JobHandle { id, job, finished: false, virtual_ns: 0.0, submit_ns, finish_ns: 0.0 }
    }
}

/// A trivially simple job used by core unit tests: counts how many times
/// each vertex appears as a destination, converging after a fixed number
/// of iterations. All vertices stay active (PageRank-like streaming).
pub struct CountingJob {
    active: AtomicBitmap,
    counts: Vec<u64>,
    iters_done: usize,
    max_iters: usize,
}

impl CountingJob {
    /// A counting job over `n` vertices running `max_iters` iterations.
    pub fn new(n: VertexId, max_iters: usize) -> CountingJob {
        let active = AtomicBitmap::new(n as usize);
        active.set_all();
        CountingJob { active, counts: vec![0; n as usize], iters_done: 0, max_iters }
    }
}

impl GraphJob for CountingJob {
    fn name(&self) -> &str {
        "Counting"
    }

    fn state_bytes_per_vertex(&self) -> usize {
        8
    }

    fn skips_inactive(&self) -> bool {
        false
    }

    fn active(&self) -> &AtomicBitmap {
        &self.active
    }

    fn process_edge(&mut self, edge: &Edge) -> EdgeOutcome {
        self.counts[edge.dst as usize] += 1;
        EdgeOutcome { activated_dst: true }
    }

    fn end_iteration(&mut self) -> bool {
        self.iters_done += 1;
        self.iters_done >= self.max_iters
    }

    fn iterations(&self) -> usize {
        self.iters_done
    }

    fn vertex_values(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_job_counts() {
        let mut j = CountingJob::new(4, 2);
        assert_eq!(j.name(), "Counting");
        assert!(!j.skips_inactive());
        j.process_edge(&Edge::new(0, 1));
        j.process_edge(&Edge::new(2, 1));
        j.process_edge(&Edge::new(1, 3));
        assert!(!j.end_iteration(), "one of two iterations done");
        assert!(j.end_iteration(), "converged");
        assert_eq!(j.vertex_values(), vec![0.0, 2.0, 0.0, 1.0]);
        assert_eq!(j.iterations(), 2);
    }

    #[test]
    fn handle_bookkeeping() {
        let h = JobHandle::new(3, Box::new(CountingJob::new(2, 1)), 42.0);
        assert_eq!(h.id, 3);
        assert!(!h.finished);
        assert_eq!(h.submit_ns, 42.0);
    }
}
