//! The iterative-job abstraction GraphM manages.
//!
//! §3.1: "the data needed by an iterative graph processing job is composed
//! of the graph structure data [...] and job-specific data (e.g., ranking
//! scores for PageRank), marked as S. During the execution, each job needs
//! to update its S through traversing the graph structure data until the
//! calculated results converge."
//!
//! A [`GraphJob`] is exactly that `S` plus the per-edge update function.
//! The graph structure never lives inside a job — GraphM owns and shares
//! it — which is what lets N jobs run against one copy.

use graphm_graph::{AtomicBitmap, Edge, VertexId};
use std::sync::Arc;

/// A thread-safe, iteration-stable slice of a job's edge function: the
/// *gather* half of a `process_edge` that factors into
///
/// ```text
/// process_edge(e)  ==  apply_gathered(e, gather(e))
/// ```
///
/// where `gather` reads only state that is **constant for the whole
/// iteration** (previous-iteration values, degrees, weights) and
/// `apply_gathered` performs the order-sensitive state mutation. Jobs
/// with this factorization (PageRank-family push updates are the
/// canonical case: `next[dst] += ranks[src]/deg[src]` gathers the
/// quotient and applies the add) let the wall-clock executor fan a
/// partition's chunks across worker threads: workers run `gather` over
/// whole chunks concurrently while the job's own thread replays
/// `apply_gathered` strictly in edge order — so the floating-point
/// additions happen in exactly the sequential order and the results stay
/// bit-identical to the serial path.
///
/// The kernel is re-extracted every iteration (it typically holds `Arc`
/// clones of the iteration's read-only arrays) and dropped before
/// `end_iteration` runs, so jobs may hand out shared references to state
/// they mutate only between iterations.
pub trait GatherKernel: Send + Sync {
    /// Computes the per-edge gathered contribution for every edge of
    /// `edges`, in order, appending exactly `edges.len()` values to
    /// `out`. Must be a pure function of the kernel's captured
    /// (iteration-stable) state.
    fn gather(&self, edges: &[Edge], out: &mut Vec<f64>);
}

/// Job identifier, assigned by the runtime in submission order. Submission
/// order matters for snapshot visibility (§3.3.2).
pub type JobId = usize;

/// Outcome of one `process_edge` call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeOutcome {
    /// The destination vertex's state changed (it must be processed next
    /// iteration — GraphM traces this to maintain active partitions).
    pub activated_dst: bool,
}

/// An iterative vertex/edge-centric graph job (the paper's benchmarks:
/// PageRank, WCC, BFS, SSSP, and variants).
///
/// Jobs are driven by a streaming engine: every iteration the engine calls
/// [`GraphJob::process_edge`] for each streamed edge whose source is active,
/// then [`GraphJob::end_iteration`]. Jobs own their active-vertex bitmaps
/// (the paper's per-job bitmap of §3.4.1).
pub trait GraphJob: Send {
    /// Human-readable algorithm name ("PageRank", "BFS", ...).
    fn name(&self) -> &str;

    /// Bytes of job-specific state per vertex (`U_v` in Formula 1).
    fn state_bytes_per_vertex(&self) -> usize;

    /// Ground-truth relative computational complexity of the edge function
    /// (`T(F_j)` up to the machine constant). The synchronization manager
    /// never reads this — it *profiles* `T(F_j)` from observed timings
    /// (§3.4.2) — but the virtual clock uses it to generate those timings.
    fn edge_cost_factor(&self) -> f64 {
        1.0
    }

    /// Whether this job skips inactive vertices (BFS/SSSP) or streams every
    /// edge each iteration (PageRank-style). §3.4.1: "If some jobs do not
    /// skip the useless streaming, all of their vertices are active by
    /// default."
    fn skips_inactive(&self) -> bool {
        true
    }

    /// Current-iteration active vertices. Must stay **stable for the
    /// whole iteration** (jobs mark next-iteration activity in a separate
    /// frontier and swap in `end_iteration`): engines precompute
    /// partition/chunk activity from this bitmap mid-sweep, and the
    /// wall-clock executor's parallel active-filter reads it from worker
    /// threads.
    fn active(&self) -> &AtomicBitmap;

    /// Processes one streamed edge (the source is guaranteed active when
    /// the engine honours [`GraphJob::skips_inactive`]).
    fn process_edge(&mut self, edge: &Edge) -> EdgeOutcome;

    /// Extracts a [`GatherKernel`] when this job's `process_edge` factors
    /// into a pure gather plus an order-sensitive apply (see the trait
    /// docs). Called at the start of every iteration; the runtime drops
    /// the kernel before calling [`GraphJob::end_iteration`]. `None`
    /// (the default) keeps the job on the serial chunk loop.
    fn gather_kernel(&self) -> Option<Arc<dyn GatherKernel>> {
        None
    }

    /// Applies one edge whose contribution was precomputed by this job's
    /// [`GatherKernel`]. Must mutate state exactly as
    /// [`GraphJob::process_edge`] would for the same edge — the executor
    /// replays applies in the serial edge order, and bit-identical
    /// results rest on this equivalence. The default ignores the
    /// gathered value and calls `process_edge` (correct for any job, and
    /// all a job whose apply cannot reuse the gather needs).
    fn apply_gathered(&mut self, edge: &Edge, gathered: f64) -> EdgeOutcome {
        let _ = gathered;
        self.process_edge(edge)
    }

    /// Chunk-granular [`GraphJob::apply_gathered`]: applies a whole
    /// chunk's contributions in edge order and returns the number of
    /// edges processed. Jobs override this with a tight loop to shed the
    /// per-edge virtual dispatch on the executor's serial apply stage;
    /// the override must be behaviourally identical to the default.
    fn apply_gathered_chunk(&mut self, edges: &[Edge], gathered: &[f64]) -> u64 {
        debug_assert_eq!(edges.len(), gathered.len());
        for (e, &g) in edges.iter().zip(gathered) {
            self.apply_gathered(e, g);
        }
        edges.len() as u64
    }

    /// Ends the iteration: swap frontiers, test convergence. Returns `true`
    /// when the job has converged (it will be retired by the runtime).
    fn end_iteration(&mut self) -> bool;

    /// Number of iterations completed so far.
    fn iterations(&self) -> usize;

    /// Final (or current) per-vertex values, for oracle comparison:
    /// ranks for PageRank, component ids for WCC, levels for BFS,
    /// distances for SSSP.
    fn vertex_values(&self) -> Vec<f64>;
}

/// A submitted job paired with runtime bookkeeping.
pub struct JobHandle {
    /// Runtime-assigned id (also the snapshot version the job reads).
    pub id: JobId,
    /// The algorithm state.
    pub job: Box<dyn GraphJob>,
    /// Set once the job converges; retired jobs stop participating in
    /// sharing and synchronization.
    pub finished: bool,
    /// Virtual nanoseconds this job has consumed (per-category breakdown
    /// lives in the runner's clocks; this is the job-facing total).
    pub virtual_ns: f64,
    /// Virtual time at which the job was submitted (Poisson arrivals in
    /// §5.1 stagger these).
    pub submit_ns: f64,
    /// Virtual time at which the job finished.
    pub finish_ns: f64,
}

impl JobHandle {
    /// Wraps a job for submission at virtual time `submit_ns`.
    pub fn new(id: JobId, job: Box<dyn GraphJob>, submit_ns: f64) -> JobHandle {
        JobHandle { id, job, finished: false, virtual_ns: 0.0, submit_ns, finish_ns: 0.0 }
    }
}

/// A trivially simple job used by core unit tests: counts how many times
/// each vertex appears as a destination, converging after a fixed number
/// of iterations. All vertices stay active (PageRank-like streaming).
pub struct CountingJob {
    active: AtomicBitmap,
    counts: Vec<u64>,
    iters_done: usize,
    max_iters: usize,
}

impl CountingJob {
    /// A counting job over `n` vertices running `max_iters` iterations.
    pub fn new(n: VertexId, max_iters: usize) -> CountingJob {
        let active = AtomicBitmap::new(n as usize);
        active.set_all();
        CountingJob { active, counts: vec![0; n as usize], iters_done: 0, max_iters }
    }
}

/// The (trivial) gather kernel of [`CountingJob`]: every edge contributes
/// one. Exists so core tests exercise the executor's parallel gather path
/// without pulling in a real algorithm.
struct CountingKernel;

impl GatherKernel for CountingKernel {
    fn gather(&self, edges: &[Edge], out: &mut Vec<f64>) {
        out.extend(std::iter::repeat_n(1.0, edges.len()));
    }
}

impl GraphJob for CountingJob {
    fn name(&self) -> &str {
        "Counting"
    }

    fn gather_kernel(&self) -> Option<Arc<dyn GatherKernel>> {
        Some(Arc::new(CountingKernel))
    }

    fn state_bytes_per_vertex(&self) -> usize {
        8
    }

    fn skips_inactive(&self) -> bool {
        false
    }

    fn active(&self) -> &AtomicBitmap {
        &self.active
    }

    fn process_edge(&mut self, edge: &Edge) -> EdgeOutcome {
        self.counts[edge.dst as usize] += 1;
        EdgeOutcome { activated_dst: true }
    }

    fn end_iteration(&mut self) -> bool {
        self.iters_done += 1;
        self.iters_done >= self.max_iters
    }

    fn iterations(&self) -> usize {
        self.iters_done
    }

    fn vertex_values(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_job_counts() {
        let mut j = CountingJob::new(4, 2);
        assert_eq!(j.name(), "Counting");
        assert!(!j.skips_inactive());
        j.process_edge(&Edge::new(0, 1));
        j.process_edge(&Edge::new(2, 1));
        j.process_edge(&Edge::new(1, 3));
        assert!(!j.end_iteration(), "one of two iterations done");
        assert!(j.end_iteration(), "converged");
        assert_eq!(j.vertex_values(), vec![0.0, 2.0, 0.0, 1.0]);
        assert_eq!(j.iterations(), 2);
    }

    #[test]
    fn handle_bookkeeping() {
        let h = JobHandle::new(3, Box::new(CountingJob::new(2, 1)), 42.0);
        assert_eq!(h.id, 3);
        assert!(!h.finished);
        assert_eq!(h.submit_ns, 42.0);
    }
}
