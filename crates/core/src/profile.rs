//! The profiling phase of the fine-grained synchronization manager
//! (§3.4.2, Formulas 2–4).
//!
//! For each job `j`, the time to process a partition `P^i` decomposes as
//!
//! ```text
//! T(F_j) * Σ_k Σ_{v ∈ V_k ∩ A_j} N+_k(v)   (compute on active edges)
//!  + T(E) * Σ_k Σ_{v ∈ V_k}       N+_k(v)   (data access on all edges)
//!  = T^i_j                                   (Formula 2)
//! ```
//!
//! After the job's first two active partitions, the two unknowns `T(F_j)`
//! and `T(E)` are solvable; `T(E)` is a property of the graph/machine and
//! is profiled only once — later jobs recover `T(F_j)` from a single
//! partition. The syncing phase then predicts per-chunk loads (Formula 3)
//! and first-toucher times (Formula 4) to apportion CPU unevenly.

use crate::chunk::Chunk;
use crate::job::JobId;
use graphm_graph::AtomicBitmap;
use std::collections::HashMap;

/// One observed partition execution: the two Formula-2 coefficients and
/// the measured time.
#[derive(Clone, Copy, Debug)]
pub struct ProfileSample {
    /// `Σ_k Σ_{v ∈ V_k ∩ A_j} N+_k(v)` — active out-edges processed.
    pub active_edges: f64,
    /// `Σ_k Σ_{v ∈ V_k} N+_k(v)` — all out-edges streamed.
    pub total_edges: f64,
    /// Measured execution time `T^i_j` in (virtual) nanoseconds.
    pub time_ns: f64,
}

/// Per-job profiled state.
#[derive(Clone, Debug, Default)]
struct JobProfile {
    samples: Vec<ProfileSample>,
    t_f: Option<f64>,
}

/// Profiler for all concurrent jobs; owns the shared `T(E)` estimate.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    jobs: HashMap<JobId, JobProfile>,
    t_e: Option<f64>,
}

impl Profiler {
    /// Fresh profiler with no estimates.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// The shared per-edge access time `T(E)`, when known.
    pub fn t_e(&self) -> Option<f64> {
        self.t_e
    }

    /// Seeds `T(E)` from a one-off calibration pass. §3.4.2: "T(E) is a
    /// constant for the same graph and only needs to be profiled once for
    /// different jobs" — the runtime measures it by streaming one partition
    /// with no compute attached. This also keeps Formula 2 solvable for
    /// jobs that never skip edges (PageRank-style), whose samples alone are
    /// collinear (`active == total` in every partition).
    pub fn set_te(&mut self, te: f64) {
        self.t_e = Some(te.max(0.0));
    }

    /// The job's per-edge compute time `T(F_j)`, when known.
    pub fn t_f(&self, job: JobId) -> Option<f64> {
        self.jobs.get(&job).and_then(|p| p.t_f)
    }

    /// True once the job's load can be predicted (both constants known).
    pub fn is_profiled(&self, job: JobId) -> bool {
        self.t_e.is_some() && self.t_f(job).is_some()
    }

    /// Records one partition execution for `job` and refines estimates.
    pub fn observe(&mut self, job: JobId, sample: ProfileSample) {
        let profile = self.jobs.entry(job).or_default();
        profile.samples.push(sample);
        // With T(E) known, one sample with active work yields T(F_j).
        if let Some(te) = self.t_e {
            if profile.t_f.is_none() {
                if let Some(s) = profile.samples.iter().find(|s| s.active_edges > 0.0) {
                    let tf = (s.time_ns - te * s.total_edges) / s.active_edges;
                    profile.t_f = Some(tf.max(0.0));
                }
            }
            return;
        }
        // Otherwise solve the 2x2 system from two sufficiently different
        // samples (Formula 2 instantiated for two partitions).
        if profile.samples.len() >= 2 {
            for i in 0..profile.samples.len() {
                for k in (i + 1)..profile.samples.len() {
                    let (s1, s2) = (profile.samples[i], profile.samples[k]);
                    let det = s1.active_edges * s2.total_edges - s2.active_edges * s1.total_edges;
                    if det.abs() > 1e-9 {
                        let tf = (s1.time_ns * s2.total_edges - s2.time_ns * s1.total_edges) / det;
                        let te =
                            (s1.active_edges * s2.time_ns - s2.active_edges * s1.time_ns) / det;
                        profile.t_f = Some(tf.max(0.0));
                        self.t_e = Some(te.max(0.0));
                        return;
                    }
                }
            }
        }
    }

    /// Formula 3 — predicted computational load of `job` on chunk `k`:
    /// `L_kj = T(F_j) × Σ_{v ∈ V_k ∩ A_j} N+_k(v)`.
    ///
    /// Returns `None` until the job is profiled.
    pub fn chunk_load(&self, job: JobId, chunk: &Chunk, active: &AtomicBitmap) -> Option<f64> {
        let tf = self.t_f(job)?;
        Some(tf * chunk.active_edges(active) as f64)
    }

    /// Formula 4 — predicted time of the *first* thread to touch chunk `k`
    /// (it also pays the LLC fill): `F_kj = L_kj + T(E) × Σ_v N+_k(v)`.
    pub fn first_toucher_time(
        &self,
        job: JobId,
        chunk: &Chunk,
        active: &AtomicBitmap,
    ) -> Option<f64> {
        let load = self.chunk_load(job, chunk, active)?;
        let te = self.t_e?;
        Some(load + te * chunk.num_edges() as f64)
    }

    /// Drops a finished job's state.
    pub fn retire(&mut self, job: JobId) {
        self.jobs.remove(&job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::label_partition;
    use graphm_graph::{Edge, EDGE_BYTES};

    /// Builds samples from ground-truth constants and checks recovery.
    #[test]
    fn recovers_constants_from_two_partitions() {
        let (tf, te) = (3.0, 0.5);
        let mut p = Profiler::new();
        // Partition 1: 100 active of 400 edges; partition 2: 300 of 350.
        p.observe(
            0,
            ProfileSample {
                active_edges: 100.0,
                total_edges: 400.0,
                time_ns: tf * 100.0 + te * 400.0,
            },
        );
        assert!(!p.is_profiled(0), "one sample is not enough");
        p.observe(
            0,
            ProfileSample {
                active_edges: 300.0,
                total_edges: 350.0,
                time_ns: tf * 300.0 + te * 350.0,
            },
        );
        assert!(p.is_profiled(0));
        assert!((p.t_f(0).unwrap() - tf).abs() < 1e-6);
        assert!((p.t_e().unwrap() - te).abs() < 1e-6);
    }

    #[test]
    fn second_job_needs_one_partition() {
        let (tf1, tf2, te) = (3.0, 7.0, 0.5);
        let mut p = Profiler::new();
        p.observe(
            0,
            ProfileSample {
                active_edges: 100.0,
                total_edges: 400.0,
                time_ns: tf1 * 100.0 + te * 400.0,
            },
        );
        p.observe(
            0,
            ProfileSample {
                active_edges: 300.0,
                total_edges: 350.0,
                time_ns: tf1 * 300.0 + te * 350.0,
            },
        );
        assert!(p.t_e().is_some(), "T(E) profiled once for the graph");
        p.observe(
            1,
            ProfileSample {
                active_edges: 200.0,
                total_edges: 500.0,
                time_ns: tf2 * 200.0 + te * 500.0,
            },
        );
        assert!(p.is_profiled(1), "later jobs profile from a single partition");
        assert!((p.t_f(1).unwrap() - tf2).abs() < 1e-6);
    }

    #[test]
    fn degenerate_samples_dont_divide_by_zero() {
        let mut p = Profiler::new();
        // Proportional samples (det = 0) never produce estimates.
        p.observe(0, ProfileSample { active_edges: 10.0, total_edges: 100.0, time_ns: 50.0 });
        p.observe(0, ProfileSample { active_edges: 20.0, total_edges: 200.0, time_ns: 100.0 });
        assert!(!p.is_profiled(0));
        // A third, independent sample resolves it.
        p.observe(0, ProfileSample { active_edges: 100.0, total_edges: 100.0, time_ns: 140.0 });
        assert!(p.is_profiled(0));
    }

    #[test]
    fn formulas_3_and_4() {
        let edges: Vec<Edge> = (0..10u32).map(|i| Edge::new(i % 3, (i + 1) % 5)).collect();
        let ct = label_partition(&edges, 100 * EDGE_BYTES);
        let chunk = &ct.chunks[0];
        let active = AtomicBitmap::new(5);
        active.set(0); // vertex 0 has 4 out-edges in the chunk (i=0,3,6,9)
        let mut p = Profiler::new();
        p.observe(
            0,
            ProfileSample {
                active_edges: 10.0,
                total_edges: 40.0,
                time_ns: 10.0 * 2.0 + 40.0 * 1.0,
            },
        );
        p.observe(
            0,
            ProfileSample {
                active_edges: 40.0,
                total_edges: 40.0,
                time_ns: 40.0 * 2.0 + 40.0 * 1.0,
            },
        );
        let tf = p.t_f(0).unwrap();
        let te = p.t_e().unwrap();
        assert!((tf - 2.0).abs() < 1e-6 && (te - 1.0).abs() < 1e-6);
        let l = p.chunk_load(0, chunk, &active).unwrap();
        assert!((l - 2.0 * 4.0).abs() < 1e-6, "L = T(F) * active out-edges, got {l}");
        let f = p.first_toucher_time(0, chunk, &active).unwrap();
        assert!((f - (8.0 + 1.0 * 10.0)).abs() < 1e-6);
    }

    #[test]
    fn calibrated_te_resolves_collinear_jobs() {
        // A PageRank-style job processes every edge: a == b in every
        // sample, so the 2x2 system is singular. Calibration unblocks it.
        let mut p = Profiler::new();
        p.observe(0, ProfileSample { active_edges: 100.0, total_edges: 100.0, time_ns: 300.0 });
        p.observe(0, ProfileSample { active_edges: 50.0, total_edges: 50.0, time_ns: 150.0 });
        assert!(!p.is_profiled(0), "collinear samples stay unsolved");
        p.set_te(1.0);
        p.observe(0, ProfileSample { active_edges: 100.0, total_edges: 100.0, time_ns: 300.0 });
        assert!(p.is_profiled(0));
        assert!((p.t_f(0).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn retire_clears() {
        let mut p = Profiler::new();
        p.observe(0, ProfileSample { active_edges: 1.0, total_edges: 1.0, time_ns: 1.0 });
        p.retire(0);
        assert!(p.t_f(0).is_none());
    }
}
