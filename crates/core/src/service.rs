//! The incremental-arrival sharing runtime — the Shared scheme as a
//! long-lived service instead of a one-shot batch run.
//!
//! [`crate::runner::run_scheme`] takes every submission up front, which is
//! the right shape for figure harnesses but not for a daemon: a
//! multi-tenant server (`graphm-server`) receives jobs over sockets while
//! earlier jobs are still streaming. [`SharingService`] exposes the exact
//! Shared-scheme loop one *step* at a time:
//!
//! * [`SharingService::enqueue`]/[`SharingService::submit`] add a job at
//!   any moment — before the first sweep or while sweeps are running;
//! * [`SharingService::step`] performs admissions and then either one
//!   full sweep (one iteration for every live job, partitions loaded in
//!   the §4 priority order, one shared load per partition) or a virtual
//!   clock advance to the next pending arrival;
//! * finished jobs turn into [`JobReport`]s immediately, releasing their
//!   per-vertex state; the driver collects them with
//!   [`SharingService::take_finished`] or [`SharingService::take_report`].
//!
//! The `Init()` preprocessing (Formula-1 chunk sizing + Algorithm-1
//! labelling) and the `T(E)` calibration run **once**, at construction —
//! a daemon amortizes them over every job it will ever serve, which is
//! the paper's Table-3 story taken to its logical end.
//!
//! Determinism: driving a fresh service with a fixed batch (`enqueue` all,
//! then [`SharingService::run_until_idle`]) replays exactly what
//! `run_scheme(Scheme::Shared, ...)` does — bit-identical reports,
//! metrics, and makespan. `run_shared` is implemented as precisely that
//! delegation, and `service_batch_matches_run_scheme` in this module's
//! tests pins the equivalence.

use crate::exec::StreamContext;
use crate::global_table::GlobalTable;
use crate::graphm::{GraphM, GraphMConfig};
use crate::job::{GraphJob, JobId};
use crate::profile::{ProfileSample, Profiler};
use crate::runner::{
    calibrate_te, shared_graph_region, state_region, AddrMap, JobReport, JobState, RunReport,
    RunnerConfig, Scheme, Submission, KIND_META,
};
use crate::scheduler::loading_order;
use crate::source::PartitionSource;
use graphm_cachesim::{keys, Metrics};
use graphm_graph::EDGE_BYTES;
use std::collections::HashMap;

/// Where a submitted job currently lives.
enum Slot {
    /// Queued or running; owns the algorithm state.
    Active(JobState),
    /// Converged; the report waits for pickup, the state is freed.
    Finished(JobReport),
    /// Report handed out through `take_report`/`take_finished`.
    Claimed,
}

/// One job's externally visible lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, waiting for its first sweep.
    Queued,
    /// Participating in sweeps.
    Running,
    /// Converged; report available (or already claimed).
    Done,
}

/// The Shared execution scheme, driveable one step at a time with jobs
/// arriving between (or during) steps. See the module docs.
pub struct SharingService<'s> {
    source: &'s dyn PartitionSource,
    cfg: RunnerConfig,
    ctx: StreamContext,
    addrs: AddrMap,
    gm: GraphM,
    global: GlobalTable,
    profiler: Profiler,
    slots: Vec<Slot>,
    vnow: f64,
    io_acc: f64,
    cpu_acc: f64,
    sync_total: f64,
    partition_loads: u64,
    pred_abs_err: f64,
    pred_samples: u64,
    /// Whether the source holds this service's generation pin: taken at
    /// construction (the chunk tables and `T(E)` calibration read the
    /// source) and whenever jobs are in flight, released only while
    /// every submitted job — including future-dated arrivals — has
    /// finished. No job, and no preprocessing, ever straddles a
    /// generation rotation published through a shared handle.
    source_pinned: bool,
}

fn active_mut(slots: &mut [Slot], id: JobId) -> &mut JobState {
    match &mut slots[id] {
        Slot::Active(js) => js,
        _ => panic!("job {id} is not active"),
    }
}

impl<'s> SharingService<'s> {
    /// Preprocesses `source` (Formula-1 chunk sizing, Algorithm-1
    /// labelling, `T(E)` calibration) and returns an idle service.
    ///
    /// `state_bytes_per_vertex` is Formula 1's `U_v` — the per-vertex job
    /// state the chunk size budgets for. The batch runner derives it from
    /// the submissions it already holds; a service sizes it for the
    /// *expected* mix instead (8 bytes covers every shipped algorithm).
    pub fn new(
        source: &'s dyn PartitionSource,
        cfg: RunnerConfig,
        state_bytes_per_vertex: usize,
    ) -> SharingService<'s> {
        // Pin the source's generation before preprocessing reads it; the
        // pin drops at the first fully idle step (or on drop), so the
        // chunk tables always describe the generation jobs will stream.
        source.sweep_begin();
        let mut ctx = StreamContext::new(cfg.profile);
        let mut gm_cfg = GraphMConfig::new(cfg.profile);
        gm_cfg.policy = cfg.policy;
        gm_cfg.chunk_bytes_override = cfg.chunk_bytes_override;
        gm_cfg.fine_sync = cfg.fine_sync;
        gm_cfg.out_of_core = cfg.out_of_core;
        let gm = GraphM::init(source, state_bytes_per_vertex, gm_cfg);

        // The chunk tables live in memory for the whole service lifetime
        // (Figure 11: part of GraphM's extra footprint over scheme S).
        // Built during Init(), not read from disk.
        ctx.mem.reserve(KIND_META | 1, gm.overhead_bytes(), true);

        let global = GlobalTable::new(source.num_partitions());
        let mut profiler = Profiler::new();
        // Calibrate T(E) once per graph (§3.4.2: "T(E) is a constant for
        // the same graph and only needs to be profiled once for different
        // jobs"): stream one partition through a scratch cache with no
        // compute attached and average the per-edge access cost. Without
        // this, jobs that never skip edges (PageRank-style) produce
        // collinear Formula-2 samples.
        if let Some(te) = calibrate_te(&cfg, source) {
            profiler.set_te(te);
        }
        SharingService {
            source,
            cfg,
            ctx,
            addrs: AddrMap::new(),
            gm,
            global,
            profiler,
            slots: Vec::new(),
            vnow: 0.0,
            io_acc: 0.0,
            cpu_acc: 0.0,
            sync_total: 0.0,
            partition_loads: 0,
            pred_abs_err: 0.0,
            pred_samples: 0,
            source_pinned: true,
        }
    }

    fn unpin_source(&mut self) {
        if self.source_pinned {
            self.source_pinned = false;
            self.source.sweep_end();
        }
    }

    /// Releases the generation pin of a fully idle service so a
    /// caller-side rotation poll can adopt a newly published generation
    /// *now* instead of staging it behind this pin. Without this, a
    /// service that has never stepped (a freshly started daemon) keeps
    /// its construction-time pin, and the first round after a publish
    /// would silently serve the preprocessing-time generation. No-op
    /// while any job is unfinished — in-flight work must keep streaming
    /// the generation its chunk tables describe. The next
    /// [`SharingService::step`] re-pins whatever generation is then
    /// current.
    pub fn release_idle_pin(&mut self) {
        if self.jobs_unfinished() == 0 {
            self.unpin_source();
        }
    }

    /// Adds a submission (job + virtual arrival time). Jobs whose
    /// `submit_ns` has passed are admitted at the start of the next
    /// [`SharingService::step`]; future arrivals wait on the virtual
    /// clock. Returns the job's id (dense, submission-ordered).
    pub fn enqueue(&mut self, sub: Submission) -> JobId {
        let id = self.slots.len();
        self.slots.push(Slot::Active(JobState::new(id, sub, self.source.num_vertices())));
        id
    }

    /// Submits `job` *now* (at the current virtual time): the service-side
    /// equivalent of a client submission arriving over a socket. The job
    /// joins at the next sweep boundary.
    pub fn submit(&mut self, job: Box<dyn GraphJob>) -> JobId {
        self.enqueue(Submission::at(job, self.vnow))
    }

    /// Runs one scheduling step: admissions, then either one sweep over
    /// the loading order (if any admitted job is unfinished) or a virtual
    /// clock advance to the earliest pending arrival. Returns `false`
    /// when there is nothing left to do — every submitted job has
    /// finished. New submissions make it actionable again.
    pub fn step(&mut self) -> bool {
        // Admissions.
        for slot in &mut self.slots {
            if let Slot::Active(js) = slot {
                if !js.admitted && js.submit_ns <= self.vnow {
                    js.admitted = true;
                    js.state_addr =
                        self.addrs.addr_of(&self.ctx, state_region(js.id), js.state_bytes);
                    self.ctx.mem.touch_dirty(state_region(js.id), js.state_bytes, true);
                    let pids: Vec<usize> = self
                        .source
                        .order()
                        .into_iter()
                        .filter(|&pid| self.gm.partition_active(pid, js.job.active()))
                        .collect();
                    self.global.set_active_partitions(js.id, &pids);
                }
            }
        }
        let alive: Vec<JobId> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Slot::Active(js) if js.admitted))
            .map(|(i, _)| i)
            .collect();
        if alive.is_empty() {
            // Release the pin only when *no* submitted job remains —
            // future-dated arrivals still count: they were instantiated
            // (out-degrees!) against this generation and must run on it.
            if self.jobs_unfinished() == 0 {
                self.unpin_source();
            }
            return match self
                .slots
                .iter()
                .filter_map(|s| match s {
                    Slot::Active(js) if !js.admitted => Some(js.submit_ns),
                    _ => None,
                })
                .min_by(|a, b| a.partial_cmp(b).unwrap())
            {
                Some(next) => {
                    self.vnow = self.vnow.max(next);
                    true
                }
                None => false,
            };
        }
        if !self.source_pinned {
            self.source.sweep_begin();
            self.source_pinned = true;
        }
        self.sweep(&alive);
        true
    }

    /// Steps until idle (every submitted job finished).
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// One sweep = one iteration for every live job, partitions loaded in
    /// the §4 priority order. The sweep's elapsed time is assembled from
    /// its own I/O and CPU totals at the end.
    fn sweep(&mut self, alive: &[JobId]) {
        let mut sweep_io = 0.0f64;
        let mut sweep_cpu = 0.0f64;
        let mut sweep_sync = 0.0f64;
        let order = loading_order(&self.global, self.cfg.policy);
        for &pid in &order {
            let needing: Vec<JobId> =
                alive.iter().copied().filter(|&i| self.global.jobs_for(pid).contains(&i)).collect();
            if needing.is_empty() {
                continue;
            }
            let edges = match self.source.try_load(pid) {
                Ok(edges) => edges,
                Err(e) => {
                    // A failed shared load fails exactly the jobs that
                    // needed this partition — they retire with the error
                    // on their report — and the sweep continues for
                    // everyone else. The daemon above stays up.
                    let msg = e.to_string();
                    for &i in &needing {
                        active_mut(&mut self.slots, i).error = Some(msg.clone());
                        self.finish(i);
                    }
                    continue;
                }
            };
            let bytes = self.source.partition_bytes(pid);
            let disk = self.ctx.touch_buffer(shared_graph_region(pid), bytes, false);
            sweep_io += disk;
            self.partition_loads += 1;
            // Amortize the one shared load across its consumers (Figure 10
            // attribution; the makespan already counts it once).
            let share = disk / needing.len() as f64;
            for &i in &needing {
                active_mut(&mut self.slots, i).clock.disk_ns += share;
            }
            let base = self.addrs.addr_of(&self.ctx, shared_graph_region(pid), bytes);

            // Per-(job, partition) Formula-2 accumulators.
            let mut acc: HashMap<JobId, (f64, f64, f64)> = HashMap::new();
            let Self { gm, ctx, slots, profiler, pred_abs_err, pred_samples, .. } = self;
            if gm.config.fine_sync {
                for (ci, chunk) in gm.tables[pid].chunks.iter().enumerate() {
                    // Rotate the round-robin start so no job always pays
                    // the cold first touch (§3.2: "the jobs are triggered
                    // to handle the loaded data in a round-robin way").
                    for k in 0..needing.len() {
                        let i = needing[(k + ci) % needing.len()];
                        let js = active_mut(slots, i);
                        if js.job.skips_inactive() && !chunk.any_active(js.job.active()) {
                            continue;
                        }
                        // Syncing-phase prediction (Formula 3) vs measurement.
                        let predicted = profiler.chunk_load(js.id, chunk, js.job.active());
                        let run = ctx.stream_edges_for_job(
                            js.job.as_mut(),
                            &edges[chunk.edges.clone()],
                            base + (chunk.edges.start * EDGE_BYTES) as u64,
                            js.state_addr,
                        );
                        if let Some(p) = predicted {
                            *pred_abs_err += (p - run.clock.compute_ns).abs();
                            *pred_samples += 1;
                        }
                        sweep_cpu += run.clock.compute_ns + run.clock.mem_access_ns;
                        js.absorb(&run);
                        let e = acc.entry(js.id).or_insert((0.0, 0.0, 0.0));
                        e.0 += run.edges_processed as f64;
                        e.1 += run.edges_streamed as f64;
                        e.2 += run.clock.compute_ns + run.clock.mem_access_ns;
                        // Chunk barrier bookkeeping.
                        js.clock.sync_ns += ctx.cost.sync_event_ns;
                        sweep_sync += ctx.cost.sync_event_ns;
                    }
                }
            } else {
                // Ablation: memory-level sharing only; each job streams the
                // whole partition independently (no LLC-level regularity).
                for &i in &needing {
                    let js = active_mut(slots, i);
                    let run =
                        ctx.stream_edges_for_job(js.job.as_mut(), &edges, base, js.state_addr);
                    sweep_cpu += run.clock.compute_ns + run.clock.mem_access_ns;
                    js.absorb(&run);
                    let e = acc.entry(js.id).or_insert((0.0, 0.0, 0.0));
                    e.0 += run.edges_processed as f64;
                    e.1 += run.edges_streamed as f64;
                    e.2 += run.clock.compute_ns + run.clock.mem_access_ns;
                }
            }
            // Profiling phase: feed Formula 2 with this partition's totals.
            for (&job_id, &(a, b, t)) in &acc {
                self.profiler
                    .observe(job_id, ProfileSample { active_edges: a, total_edges: b, time_ns: t });
            }
            // Global-table maintenance cost.
            sweep_sync += self.ctx.cost.schedule_event_ns * needing.len() as f64;
        }

        // End of sweep: fold this sweep's work into the run accumulators.
        // Disk and CPU overlap across the whole run (as in the Concurrent
        // scheme's accumulation): elapsed time is max(io, cpu) + sync.
        let eff = self.cfg.effective_parallelism(alive.len());
        self.io_acc += sweep_io;
        self.cpu_acc += sweep_cpu / eff;
        self.sync_total += sweep_sync;
        self.vnow = self.vnow.max(self.io_acc.max(self.cpu_acc + self.sync_total));
        for &i in alive {
            if !matches!(self.slots[i], Slot::Active(_)) {
                continue; // Failed mid-sweep and already retired.
            }
            let js = active_mut(&mut self.slots, i);
            js.iterations_guard += 1;
            let converged =
                js.job.end_iteration() || js.iterations_guard >= self.cfg.max_iterations;
            if converged {
                self.finish(i);
            } else {
                let active = active_mut(&mut self.slots, i).job.active();
                let pids: Vec<usize> = self
                    .source
                    .order()
                    .into_iter()
                    .filter(|&pid| self.gm.partition_active(pid, active))
                    .collect();
                if pids.is_empty() {
                    self.finish(i);
                } else {
                    self.global.set_active_partitions(i, &pids);
                }
            }
        }
    }

    /// Retires job `i`: releases its state memory, drops it from the
    /// global table and profiler, and converts it into a report.
    fn finish(&mut self, i: JobId) {
        {
            let js = active_mut(&mut self.slots, i);
            js.finished = true;
            js.finish_ns = self.vnow;
        }
        self.ctx.mem.release(state_region(i));
        self.global.remove_job(i);
        self.profiler.retire(i);
        let slot = std::mem::replace(&mut self.slots[i], Slot::Claimed);
        match slot {
            Slot::Active(js) => self.slots[i] = Slot::Finished(js.into_report()),
            _ => unreachable!("finish() is only called on active jobs"),
        }
    }

    /// The phase job `id` is in, or `None` for unknown ids.
    pub fn phase(&self, id: JobId) -> Option<JobPhase> {
        match self.slots.get(id)? {
            Slot::Active(js) if !js.admitted => Some(JobPhase::Queued),
            Slot::Active(_) => Some(JobPhase::Running),
            Slot::Finished(_) | Slot::Claimed => Some(JobPhase::Done),
        }
    }

    /// Takes job `id`'s report, if it has finished and was not collected.
    pub fn take_report(&mut self, id: JobId) -> Option<JobReport> {
        match self.slots.get(id)? {
            Slot::Finished(_) => match std::mem::replace(&mut self.slots[id], Slot::Claimed) {
                Slot::Finished(r) => Some(r),
                _ => unreachable!(),
            },
            _ => None,
        }
    }

    /// Drains every uncollected finished report, id order.
    pub fn take_finished(&mut self) -> Vec<JobReport> {
        (0..self.slots.len()).filter_map(|id| self.take_report(id)).collect()
    }

    /// Jobs submitted over the service's lifetime.
    pub fn jobs_submitted(&self) -> usize {
        self.slots.len()
    }

    /// Jobs not yet finished (queued + running).
    pub fn jobs_unfinished(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, Slot::Active(_))).count()
    }

    /// Shared partition loads performed so far (one per `(sweep,
    /// partition)` with interested jobs — *not* per job; the gap to
    /// `jobs × partitions × iterations` is the sharing win).
    pub fn partition_loads(&self) -> u64 {
        self.partition_loads
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> f64 {
        self.vnow
    }

    /// The Formula-1 chunk size the service preprocessed with.
    pub fn chunk_bytes(&self) -> usize {
        self.gm.chunk_bytes
    }

    /// Number of partitions in the underlying source.
    pub fn num_partitions(&self) -> usize {
        self.source.num_partitions()
    }

    /// Assembles the whole-service [`RunReport`], consuming the service.
    ///
    /// (The generation pin, if still held because jobs were abandoned
    /// unfinished, is released by `Drop`.)
    /// Reports already claimed through [`SharingService::take_report`] are
    /// excluded from the per-job list and aggregates; drive the service to
    /// idle first for a complete report (the batch `run_scheme` path does).
    pub fn into_run_report(mut self) -> RunReport {
        let mut metrics = Metrics::new();
        metrics.set(keys::TOTAL_NS, self.vnow);
        metrics.set(keys::JOBS, self.slots.len() as f64);
        metrics.set(keys::PARTITION_LOADS, self.partition_loads as f64);
        metrics.set(keys::SYNC_NS, self.sync_total);
        metrics.set(keys::LLC_ACCESSES, self.ctx.llc.stats.accesses as f64);
        metrics.set(keys::LLC_MISSES, self.ctx.llc.stats.misses as f64);
        metrics.set(keys::LLC_FILL_BYTES, self.ctx.llc.stats.fill_bytes as f64);
        metrics.set(keys::DISK_READ_BYTES, self.ctx.mem.stats.disk_read_bytes as f64);
        metrics.set(keys::DISK_WRITE_BYTES, self.ctx.mem.stats.disk_write_bytes as f64);
        metrics.set(keys::PEAK_MEMORY_BYTES, self.ctx.mem.stats.peak_resident_bytes as f64);
        let mut compute = 0.0;
        let mut data_access = 0.0;
        let mut instructions = 0u64;
        let mut iterations = 0usize;
        let reports: Vec<JobReport> = std::mem::take(&mut self.slots)
            .into_iter()
            .filter_map(|slot| match slot {
                Slot::Finished(r) => Some(r),
                Slot::Claimed => None,
                Slot::Active(js) => Some(js.into_report()),
            })
            .inspect(|r| {
                compute += r.clock.compute_ns;
                data_access += r.clock.data_access_ns();
                instructions += r.instructions;
                iterations += r.iterations;
            })
            .collect();
        metrics.set(keys::COMPUTE_NS, compute);
        metrics.set(keys::DATA_ACCESS_NS, data_access);
        metrics.set(keys::INSTRUCTIONS, instructions as f64);
        metrics.set(keys::ITERATIONS, iterations as f64);
        metrics.set("chunk_bytes", self.gm.chunk_bytes as f64);
        let makespan_ns = self.vnow;
        metrics.set("chunk_table_bytes", self.gm.overhead_bytes() as f64);
        metrics.set("preprocess_ns", self.gm.preprocess_ns);
        if self.pred_samples > 0 {
            metrics.set("profile_mae_ns", self.pred_abs_err / self.pred_samples as f64);
        }
        RunReport { scheme: Scheme::Shared, metrics, jobs: reports, makespan_ns }
    }
}

impl Drop for SharingService<'_> {
    /// A service dropped mid-run (or consumed by `into_run_report` with
    /// jobs abandoned) must not leave its generation pin held — that
    /// would block a shared delta-store handle from ever adopting a
    /// published rotation.
    fn drop(&mut self) {
        self.unpin_source();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::CountingJob;
    use crate::runner::run_scheme;
    use crate::source::VecSource;
    use graphm_graph::{generators, MemoryProfile};

    fn make_source(n: u32, m: usize, parts: usize) -> VecSource {
        let g = generators::rmat(n, m, generators::RmatParams::GRAPH500, 33);
        let mut edges = g.edges.clone();
        edges.sort_by_key(|e| e.src);
        let per = edges.len().div_ceil(parts);
        VecSource::new(n, edges.chunks(per).map(<[_]>::to_vec).collect())
    }

    fn cfg() -> RunnerConfig {
        RunnerConfig::new(MemoryProfile::TEST)
    }

    fn counting_subs(n: u32, jobs: usize, iters: usize) -> Vec<Submission> {
        (0..jobs).map(|_| Submission::immediate(Box::new(CountingJob::new(n, iters)))).collect()
    }

    /// The pinned equivalence: a fresh service driven over a fixed batch
    /// reproduces `run_scheme(Scheme::Shared, ...)` bit for bit.
    #[test]
    fn service_batch_matches_run_scheme() {
        let source = make_source(256, 2048, 4);
        let batch = run_scheme(Scheme::Shared, counting_subs(256, 3, 3), &source, &cfg());

        let mut svc = SharingService::new(&source, cfg(), 8);
        for sub in counting_subs(256, 3, 3) {
            svc.enqueue(sub);
        }
        svc.run_until_idle();
        let served = svc.into_run_report();

        assert_eq!(batch.makespan_ns.to_bits(), served.makespan_ns.to_bits());
        assert_eq!(batch.jobs.len(), served.jobs.len());
        for (a, b) in batch.jobs.iter().zip(&served.jobs) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.iterations, b.iterations);
            assert_eq!(a.instructions, b.instructions);
            assert_eq!(a.edges_processed, b.edges_processed);
            assert_eq!(a.finish_ns.to_bits(), b.finish_ns.to_bits());
            assert_eq!(a.values, b.values);
        }
        for key in [
            graphm_cachesim::keys::PARTITION_LOADS,
            graphm_cachesim::keys::LLC_MISSES,
            graphm_cachesim::keys::DISK_READ_BYTES,
            "profile_mae_ns",
        ] {
            assert_eq!(
                batch.metrics.get(key).to_bits(),
                served.metrics.get(key).to_bits(),
                "{key}"
            );
        }
    }

    /// Jobs submitted while the service is mid-run join at the next sweep
    /// and still share loads with the residents.
    #[test]
    fn late_submissions_join_and_share() {
        let source = make_source(128, 1024, 4);
        let mut svc = SharingService::new(&source, cfg(), 8);
        let a = svc.submit(Box::new(CountingJob::new(128, 6)));
        assert_eq!(svc.phase(a), Some(JobPhase::Queued));
        assert!(svc.step(), "first sweep runs");
        assert_eq!(svc.phase(a), Some(JobPhase::Running));

        // Arrives mid-run: same virtual timeline, joins next sweep.
        let b = svc.submit(Box::new(CountingJob::new(128, 2)));
        let loads_before = svc.partition_loads();
        svc.run_until_idle();
        assert_eq!(svc.phase(a), Some(JobPhase::Done));
        assert_eq!(svc.phase(b), Some(JobPhase::Done));

        // While both were live, each sweep still loaded each partition
        // once: total loads stay strictly below per-job accounting.
        let loads = svc.partition_loads() - loads_before;
        assert!(loads < 2 * 4 * 6, "shared loads {loads}");

        let ra = svc.take_report(a).expect("report a");
        let rb = svc.take_report(b).expect("report b");
        assert!(svc.take_report(a).is_none(), "reports are take-once");
        assert_eq!(ra.iterations, 6);
        assert_eq!(rb.iterations, 2);
        // Results unaffected by co-residency.
        let total: f64 = rb.values.iter().sum();
        assert_eq!(total as u64, 2 * 1024);
        assert!(rb.submit_ns > 0.0, "late job carries its virtual arrival time");
        assert!(rb.finish_ns >= rb.submit_ns);
        assert!(ra.finish_ns >= rb.submit_ns, "job a was still running when b arrived");
    }

    /// An idle service wakes up for new work and goes idle again.
    #[test]
    fn idle_service_accepts_new_rounds() {
        let source = make_source(64, 512, 2);
        let mut svc = SharingService::new(&source, cfg(), 8);
        assert!(!svc.step(), "nothing to do");
        let a = svc.submit(Box::new(CountingJob::new(64, 2)));
        svc.run_until_idle();
        assert_eq!(svc.take_finished().len(), 1);
        assert!(!svc.step());

        let t_round1 = svc.now_ns();
        let b = svc.submit(Box::new(CountingJob::new(64, 2)));
        assert_ne!(a, b);
        svc.run_until_idle();
        let reports = svc.take_finished();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].id, b);
        // Virtual elapsed time is max(io, cpu + sync): round 2's compute
        // may hide entirely under round 1's I/O, so >= rather than >.
        assert!(reports[0].finish_ns >= t_round1, "round 2 stays on the virtual timeline");
        assert_eq!(svc.jobs_submitted(), 2);
        assert_eq!(svc.jobs_unfinished(), 0);
    }

    /// Future-dated arrivals advance the clock instead of deadlocking.
    #[test]
    fn future_arrivals_advance_clock() {
        let source = make_source(64, 512, 2);
        let mut svc = SharingService::new(&source, cfg(), 8);
        svc.enqueue(Submission::at(Box::new(CountingJob::new(64, 1)), 5e9));
        svc.run_until_idle();
        let r = &svc.take_finished()[0];
        assert!(r.finish_ns >= 5e9);
    }
}
